//! Lock-free metrics: counters, gauges, fixed-bucket histograms, and the
//! registry that names and renders them.
//!
//! Registration takes a short-lived lock on a name map and hands back an
//! `Arc` handle; every subsequent record on the handle is a relaxed atomic
//! op, so the hot path never contends. Histograms use power-of-two
//! buckets (`[0]`, `[1]`, `[2,3]`, `[4,7]`, …) — coarse at the top, exact
//! at the bottom — and additionally track the exact sum, count and
//! maximum, so single-mode distributions report exact maxima and quantile
//! estimates are clamped to observed values.

use crate::lock_unpoisoned;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fixed bucket count of every [`Histogram`]: one bucket per power of two
/// of `u64`, so any value indexes without range checks.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Bucket a value lands in: `0 → 0`, and `v ∈ [2^(k-1), 2^k) → k`,
/// saturating at the last bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of a bucket (the Prometheus `le` label).
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`. A no-op under `telemetry-off`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An atomic gauge: a value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value. A no-op under `telemetry-off`.
    #[inline]
    pub fn set(&self, value: u64) {
        if crate::enabled() {
            self.value.store(value, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `value` if it is higher (high-water marks).
    /// A no-op under `telemetry-off`.
    #[inline]
    pub fn observe_max(&self, value: u64) {
        if crate::enabled() {
            self.value.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket concurrent histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. A no-op under `telemetry-off`.
    #[inline]
    pub fn record(&self, value: u64) {
        if crate::enabled() {
            self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
            self.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the upper
    /// bound of the first bucket whose cumulative count reaches the rank,
    /// clamped to the exact observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return bucket_upper_bound(i).min(self.max());
            }
        }
        self.max()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A thread-private, non-atomic histogram shard.
///
/// Worker threads record into their own shard without any shared-memory
/// traffic, then [`merge_into`](HistogramShard::merge_into) a shared
/// [`Histogram`] once at the end (or periodically). Merging is exact and
/// order-independent: any partition of a sample stream across shards,
/// merged in any order, yields the same histogram as recording every
/// sample into one histogram directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramShard {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramShard {
    /// Creates an empty shard.
    pub fn new() -> Self {
        HistogramShard {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample. A no-op under `telemetry-off`.
    #[inline]
    pub fn record(&mut self, value: u64) {
        if crate::enabled() {
            self.buckets[bucket_index(value)] += 1;
            self.count += 1;
            // Wrapping, like `AtomicU64::fetch_add` in `Histogram`: the sum
            // is a monotonic counter and readers handle wrap, not a panic.
            self.sum = self.sum.wrapping_add(value);
            self.max = self.max.max(value);
        }
    }

    /// Samples recorded into this shard.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another shard into this one.
    pub fn absorb(&mut self, other: &HistogramShard) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Adds this shard's samples to a shared histogram.
    pub fn merge_into(&self, histogram: &Histogram) {
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                histogram.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        histogram.count.fetch_add(self.count, Ordering::Relaxed);
        histogram.sum.fetch_add(self.sum, Ordering::Relaxed);
        histogram.max.fetch_max(self.max, Ordering::Relaxed);
    }
}

impl Default for HistogramShard {
    fn default() -> Self {
        HistogramShard::new()
    }
}

/// Named metric handles plus a deterministic text exposition.
///
/// `counter`/`gauge`/`histogram` are get-or-register: the first call for a
/// name creates the metric, later calls return the same handle, so
/// instrument sites need no coordination. Names should follow the
/// `snake_case` scheme of DESIGN.md §10 (`<component>_<what>[_total]`).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock_unpoisoned(&self.counters);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge registered under `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock_unpoisoned(&self.gauges);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram registered under `name`, creating it if
    /// absent.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock_unpoisoned(&self.histograms);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Renders every metric as Prometheus-style text exposition.
    ///
    /// Families are sorted by name (counters, then gauges, then
    /// histograms), so the output is deterministic for a given state.
    /// Histograms emit cumulative `_bucket{le="…"}` lines for non-empty
    /// buckets, `_sum`, `_count`, and a non-standard `_max` line carrying
    /// the exact maximum.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, counter) in lock_unpoisoned(&self.counters).iter() {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", counter.get());
        }
        for (name, gauge) in lock_unpoisoned(&self.gauges).iter() {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", gauge.get());
        }
        for (name, histogram) in lock_unpoisoned(&self.histograms).iter() {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, n) in histogram.bucket_counts().iter().enumerate() {
                if *n > 0 {
                    cumulative += n;
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{le=\"{}\"}} {cumulative}",
                        bucket_upper_bound(i)
                    );
                }
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", histogram.count());
            let _ = writeln!(out, "{name}_sum {}", histogram.sum());
            let _ = writeln!(out, "{name}_count {}", histogram.count());
            let _ = writeln!(out, "{name}_max {}", histogram.max());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // Every value is ≤ its bucket's upper bound and > the previous
        // bucket's.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn counter_and_gauge_record() {
        let c = Counter::new();
        c.add(2);
        c.add(3);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(9);
        g.observe_max(4); // lower: no effect
        assert_eq!(g.get(), 9);
        g.observe_max(11);
        assert_eq!(g.get(), 11);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn histogram_tracks_exact_aggregates_and_bounded_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        // Quantile estimates are bucket upper bounds: never below the true
        // quantile, never above the observed max.
        let p50 = h.quantile(0.50);
        assert!((50..=100).contains(&p50), "{p50}");
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.quantile(0.0), h.quantile(1e-9));
        // A single sample is reported exactly at every quantile.
        let one = Histogram::new();
        one.record(40);
        assert_eq!(one.quantile(0.5), 40);
        assert_eq!(one.quantile(0.99), 40);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn shards_merge_exactly() {
        let mut a = HistogramShard::new();
        let mut b = HistogramShard::new();
        let direct = Histogram::new();
        for v in 0..1000u64 {
            if v % 3 == 0 {
                a.record(v * 17)
            } else {
                b.record(v * 17)
            }
            direct.record(v * 17);
        }
        let merged = Histogram::new();
        b.merge_into(&merged); // order must not matter
        a.merge_into(&merged);
        assert_eq!(merged.count(), direct.count());
        assert_eq!(merged.sum(), direct.sum());
        assert_eq!(merged.max(), direct.max());
        assert_eq!(merged.bucket_counts(), direct.bucket_counts());
        let mut folded = HistogramShard::new();
        folded.absorb(&a);
        folded.absorb(&b);
        assert_eq!(folded.count(), 1000);
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let r = Registry::new();
        let c1 = r.counter("x_total");
        let c2 = r.counter("x_total");
        assert!(Arc::ptr_eq(&c1, &c2));
        c1.add(1);
        assert_eq!(c2.get(), c1.get());
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn exposition_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b_total").add(2);
        r.counter("a_total").add(1);
        r.gauge("depth").set(5);
        r.histogram("lat_micros").record(3);
        let text = r.render_prometheus();
        let a = text.find("a_total 1").expect("a_total");
        let b = text.find("b_total 2").expect("b_total");
        assert!(a < b, "families must be name-sorted:\n{text}");
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("lat_micros_bucket{le=\"3\"} 1"));
        assert!(text.contains("lat_micros_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_micros_sum 3"));
        assert!(text.contains("lat_micros_count 1"));
        assert!(text.contains("lat_micros_max 3"));
    }

    #[cfg(feature = "telemetry-off")]
    #[test]
    fn disabled_build_records_nothing() {
        let c = Counter::new();
        c.add(5);
        assert_eq!(c.get(), 0);
        let h = Histogram::new();
        h.record(10);
        assert_eq!(h.count(), 0);
        let mut s = HistogramShard::new();
        s.record(10);
        assert_eq!(s.count(), 0);
    }
}
