//! Zero-cost observability for the Chason workspace.
//!
//! Three layers, all pure `std`:
//!
//! * [`metrics`] — a lock-free [`Registry`](metrics::Registry) of atomic
//!   [`Counter`](metrics::Counter)s, [`Gauge`](metrics::Gauge)s and
//!   fixed-bucket [`Histogram`](metrics::Histogram)s, with per-thread
//!   [`HistogramShard`](metrics::HistogramShard)s that merge losslessly,
//!   plus a Prometheus-style text exposition;
//! * [`trace`] — span tracing into a bounded ring-buffer
//!   [`FlightRecorder`](trace::FlightRecorder) with lossless JSONL export,
//!   deterministic under the [`Clock::fixed`](trace::Clock::fixed) source
//!   so traces can be committed as golden files;
//! * a process-wide [`Telemetry`] instance ([`global`]) so deep call sites
//!   (solver iterations, worker threads) can emit without plumbing.
//!
//! # The `telemetry-off` feature
//!
//! With `--features telemetry-off` every recording site compiles to a
//! no-op: [`enabled`] is a `const fn` returning `false`, and all record
//! paths branch on it, so the optimizer deletes them. Read paths (renders,
//! snapshots) still exist and report zeros; callers never need `cfg`
//! guards. The overhead guard in `chason-baselines` holds the disabled
//! instrumentation to ≤ 2% on the threaded SpMV hot path.
//!
//! # Example
//!
//! ```
//! use chason_telemetry::metrics::Registry;
//! use chason_telemetry::trace::{Clock, FlightRecorder, SpanEvent};
//!
//! let registry = Registry::new();
//! let served = registry.counter("chsp_requests_spmv_total");
//! served.add(1);
//!
//! let clock = Clock::fixed();
//! let recorder = FlightRecorder::new(16);
//! let start = clock.now();
//! // ... work ...
//! recorder.record(SpanEvent::new("spmv", start, clock.now()));
//! # if chason_telemetry::enabled() {
//! assert!(registry.render_prometheus().contains("chsp_requests_spmv_total 1"));
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// `true` unless the crate was built with the `telemetry-off` feature.
///
/// A `const fn`, so `if enabled() { ... }` folds away entirely in
/// disabled builds — use it to skip argument construction ahead of a
/// record call.
pub const fn enabled() -> bool {
    cfg!(not(feature = "telemetry-off"))
}

/// Locks a mutex, continuing through poisoning: these are observability
/// structures, and a panicking worker must not take telemetry down with
/// it.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A bundled registry + flight recorder + clock: one observability
/// surface an instrumented component hangs everything on.
#[derive(Debug)]
pub struct Telemetry {
    registry: metrics::Registry,
    recorder: trace::FlightRecorder,
    clock: trace::Clock,
}

impl Telemetry {
    /// Creates a telemetry surface with the given clock and flight-recorder
    /// capacity (spans kept before the oldest are dropped).
    pub fn new(clock: trace::Clock, recorder_capacity: usize) -> Self {
        Telemetry {
            registry: metrics::Registry::new(),
            recorder: trace::FlightRecorder::new(recorder_capacity),
            clock,
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &metrics::Registry {
        &self.registry
    }

    /// The span flight recorder.
    pub fn recorder(&self) -> &trace::FlightRecorder {
        &self.recorder
    }

    /// The clock timestamps are drawn from.
    pub fn clock(&self) -> &trace::Clock {
        &self.clock
    }
}

/// Spans the process-global recorder keeps before dropping the oldest.
pub const GLOBAL_RECORDER_CAPACITY: usize = 4096;

/// The process-wide telemetry instance (wall clock, bounded recorder).
///
/// Deep call sites — solver iteration loops, worker threads — emit here
/// rather than threading a `&Telemetry` through every signature.
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(|| Telemetry::new(trace::Clock::wall(), GLOBAL_RECORDER_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_a_singleton() {
        let a = global() as *const Telemetry;
        let b = global() as *const Telemetry;
        assert_eq!(a, b);
        assert_eq!(global().recorder().capacity(), GLOBAL_RECORDER_CAPACITY);
    }

    #[test]
    fn lock_unpoisoned_survives_a_panicked_holder() {
        let shared = std::sync::Arc::new(Mutex::new(7u32));
        let clone = shared.clone();
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*lock_unpoisoned(&shared), 7);
    }

    #[test]
    fn enabled_matches_the_feature() {
        assert_eq!(enabled(), cfg!(not(feature = "telemetry-off")));
    }
}
