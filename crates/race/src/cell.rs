//! [`RaceCell`]: a shared memory location the race detector watches.
//!
//! `RaceCell<T>` stands in for plain shared data (a field written without
//! synchronization, a buffer slot, a counter) in extracted models. It is
//! internally backed by a mutex so the *process* never has undefined
//! behavior, but the detector treats every access as an unsynchronized
//! read/write: two unordered conflicting accesses are reported as a data
//! race even though the interleaving that ran produced a well-defined value.
//! That is exactly the property a model wants: "would this be a race if the
//! backing store were a bare field?"

use crate::runtime::{self, LazyReg, ObjectKind, OpKind};
use std::sync::Mutex as StdMutex;

/// A shared cell whose accesses are checked for data races.
pub struct RaceCell<T> {
    reg: LazyReg,
    v: StdMutex<T>,
}

impl<T> RaceCell<T> {
    /// Create a cell with the given initial value.
    pub const fn new(v: T) -> RaceCell<T> {
        RaceCell {
            reg: LazyReg::new(),
            v: StdMutex::new(v),
        }
    }

    /// Create a cell whose name appears in traces and race reports.
    pub const fn labeled(label: &'static str, v: T) -> RaceCell<T> {
        RaceCell {
            reg: LazyReg::labeled(label),
            v: StdMutex::new(v),
        }
    }

    fn hook(&self, write: bool) {
        if let Some((ctrl, tid)) = runtime::current_ctx() {
            let obj = self.reg.ensure(&ctrl, ObjectKind::Cell);
            let op = if write {
                OpKind::CellWrite { obj }
            } else {
                OpKind::CellRead { obj }
            };
            if ctrl.yield_op(tid, op).is_err() {
                runtime::abort_unwind();
            }
        }
    }

    /// Read the value (a tracked read access).
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.hook(false);
        runtime::lenient_lock(&self.v).clone()
    }

    /// Overwrite the value (a tracked write access).
    pub fn set(&self, v: T) {
        self.hook(true);
        *runtime::lenient_lock(&self.v) = v;
    }

    /// Observe the value through a closure (a tracked read access).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.hook(false);
        f(&runtime::lenient_lock(&self.v))
    }

    /// Mutate the value through a closure (a tracked write access).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.hook(true);
        f(&mut runtime::lenient_lock(&self.v))
    }
}
