//! The deterministic scheduler: one OS thread runs at a time, every visible
//! operation yields to a central [`Controller`] that picks who goes next.
//!
//! ## Protocol
//!
//! Each instrumented primitive calls [`Controller::yield_op`] (or a blocking
//! variant) *before* performing the operation's data effect. The controller
//! applies the operation's **bookkeeping** (vector clocks, race checks, trace
//! line) at grant time, then lets exactly the chosen thread run; the thread
//! performs the data effect unobserved (it is the only one running) and
//! continues until its next yield point. Blocking is modeled through
//! *enabledness*: a pending `LockAcquire` on a held mutex, a parked condvar
//! waiter that has not been notified, or a `Join` on a live child simply
//! cannot be chosen.
//!
//! ## Abort
//!
//! When a violation is found (or the explorer prunes the execution) every
//! controlled thread must unwind promptly: parked threads wake up, observe
//! `aborting`, and receive `Err(Aborted)`; the primitive then switches the
//! thread into *abort-passthrough* mode (all further instrumented calls
//! degrade to plain std with poison forgiveness, so destructors running
//! during the unwind cannot double-panic) and raises an [`AbortSignal`]
//! panic that the thread wrapper catches.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::clock::VectorClock;
use crate::explorer::{Choice, ConflictKey, ForcedChoice, NodeRecord, Policy};
use crate::trace::ViolationKind;

/// Densely allocated id for a tracked object (mutex, condvar, atomic, cell).
pub(crate) type ObjId = usize;

/// Panic payload used to unwind controlled threads when an execution aborts.
/// The thread wrappers catch it; the quiet panic hook suppresses its output.
pub(crate) struct AbortSignal;

/// Error returned by controller calls once the execution is aborting.
pub(crate) struct Aborted;

/// Sanity cap on threads per execution (sleep sets are u64 bitmasks).
pub(crate) const MAX_THREADS: usize = 64;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ObjectKind {
    Mutex,
    Condvar,
    Atomic,
    Cell,
}

impl ObjectKind {
    fn tag(self) -> &'static str {
        match self {
            ObjectKind::Mutex => "mutex",
            ObjectKind::Condvar => "condvar",
            ObjectKind::Atomic => "atomic",
            ObjectKind::Cell => "cell",
        }
    }
}

/// One read or write access to a tracked cell, for two-access race reports.
#[derive(Clone, Debug)]
struct Access {
    tid: usize,
    /// The accessing thread's own epoch at access time.
    time: u32,
    /// Global step number (indexes the trace).
    step: usize,
    write: bool,
}

impl Access {
    fn describe(&self) -> String {
        let what = if self.write { "write" } else { "read" };
        format!("{what} by t{} at step {}", self.tid, self.step)
    }
}

struct ObjectState {
    label: String,
    /// Mutex: current holder.
    holder: Option<usize>,
    /// Mutex: clock of the last release. Atomic: join of all release-stores.
    clock: VectorClock,
    /// Condvar: parked waiters in FIFO order.
    waiters: Vec<usize>,
    /// Cell: last write, if any.
    last_write: Option<Access>,
    /// Cell: reads since the last write (at most one per thread).
    reads: Vec<Access>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Allocated by `spawn` but the `Spawn` op has not been granted yet.
    Embryo,
    Ready,
    Finished,
}

/// Why a condvar waiter was granted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WakeReason {
    Notified,
    Spurious,
    TimedOut,
}

/// Memory-ordering strength relevant to happens-before edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OrdKind {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
}

impl OrdKind {
    pub(crate) fn of(ord: std::sync::atomic::Ordering) -> OrdKind {
        use std::sync::atomic::Ordering::*;
        match ord {
            Relaxed => OrdKind::Relaxed,
            Acquire => OrdKind::Acquire,
            Release => OrdKind::Release,
            // SeqCst is at least AcqRel; modeling it as AcqRel is sound for
            // race detection (we never rely on the total SC order).
            AcqRel | SeqCst => OrdKind::AcqRel,
            _ => OrdKind::AcqRel,
        }
    }

    fn acquires(self) -> bool {
        matches!(self, OrdKind::Acquire | OrdKind::AcqRel)
    }

    fn releases(self) -> bool {
        matches!(self, OrdKind::Release | OrdKind::AcqRel)
    }

    fn name(self) -> &'static str {
        match self {
            OrdKind::Relaxed => "Relaxed",
            OrdKind::Acquire => "Acquire",
            OrdKind::Release => "Release",
            OrdKind::AcqRel => "AcqRel+",
        }
    }
}

/// A visible operation a thread is about to perform.
#[derive(Clone, Debug)]
pub(crate) enum OpKind {
    LockAcquire { obj: ObjId },
    Spawn { child: usize },
    Join { child: usize },
    CondNotifyOne { obj: ObjId },
    CondNotifyAll { obj: ObjId },
    AtomicLoad { obj: ObjId, ord: OrdKind },
    AtomicStore { obj: ObjId, ord: OrdKind },
    AtomicRmw { obj: ObjId, ord: OrdKind },
    CellRead { obj: ObjId },
    CellWrite { obj: ObjId },
}

/// What a non-running thread is waiting to do.
enum PendingOp {
    /// First slice of a freshly spawned thread (always enabled).
    Start,
    Op(OpKind),
    CondParked {
        cv: ObjId,
        lock: ObjId,
        can_timeout: bool,
        notified: bool,
    },
}

struct ThreadState {
    status: Status,
    pending: Option<PendingOp>,
    clock: VectorClock,
    /// Set at grant for a parked waiter; consumed by `cond_wait`.
    wake: Option<WakeReason>,
}

/// Grant stage: normal choice, or the deadlock-rescue stage that fires
/// `wait_timeout` waiters only when nothing else can run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Stage {
    Main,
    TimeoutRescue,
}

/// Per-execution knobs (a subset of `Options`, resolved by the explorer).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ExecOpts {
    pub max_steps: usize,
    pub spurious_wakeups: usize,
}

/// Everything the explorer needs back from one execution.
pub(crate) struct RunOutcome {
    pub violation: Option<ViolationKind>,
    pub nodes: Vec<NodeRecord>,
    pub trace: Vec<String>,
    pub pruned: bool,
    pub diverged: Option<String>,
}

struct SchedState {
    threads: Vec<ThreadState>,
    objects: Vec<ObjectState>,
    running: Option<usize>,
    prev_running: Option<usize>,
    policy: Policy,
    trace: Vec<String>,
    steps: usize,
    violation: Option<ViolationKind>,
    aborting: bool,
    done: bool,
    pruned: bool,
    diverged: Option<String>,
    spurious_left: usize,
    opts: ExecOpts,
}

/// The per-execution scheduler. One lives for exactly one execution; the
/// `serial` distinguishes executions so lazily registered objects re-register.
pub(crate) struct Controller {
    pub(crate) serial: u64,
    state: StdMutex<SchedState>,
    cv: StdCondvar,
}

/// Monotonic execution serial (process-wide; collisions are impossible).
static NEXT_SERIAL: AtomicU64 = AtomicU64::new(1);

// ---------------------------------------------------------------------------
// Thread-local context: which controller (if any) owns the current thread.
// ---------------------------------------------------------------------------

enum TlsState {
    /// Not a model thread: primitives pass through to plain std.
    Free,
    /// Model thread `tid` controlled by this controller.
    Controlled(Arc<Controller>, usize),
    /// Model thread unwinding after an abort: primitives pass through to std
    /// with poison forgiveness so destructors cannot double-panic.
    AbortPassthrough,
}

thread_local! {
    static CTX: RefCell<TlsState> = const { RefCell::new(TlsState::Free) };
}

/// The controller/tid pair for the current thread, if it is a live model
/// thread.
pub(crate) fn current_ctx() -> Option<(Arc<Controller>, usize)> {
    CTX.with(|c| match &*c.borrow() {
        TlsState::Controlled(ctrl, tid) => Some((Arc::clone(ctrl), *tid)),
        _ => None,
    })
}

/// True while the current thread is unwinding from an execution abort.
pub(crate) fn in_abort_passthrough() -> bool {
    CTX.with(|c| matches!(&*c.borrow(), TlsState::AbortPassthrough))
}

pub(crate) fn set_ctx(ctrl: Arc<Controller>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = TlsState::Controlled(ctrl, tid));
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = TlsState::Free);
}

/// Switch to abort-passthrough and unwind. Called by primitives when the
/// controller reports the execution is aborting.
pub(crate) fn abort_unwind() -> ! {
    CTX.with(|c| *c.borrow_mut() = TlsState::AbortPassthrough);
    std::panic::panic_any(AbortSignal)
}

/// Lock a mutex ignoring poison: used for checker-internal storage, where a
/// poisoned lock only means some model thread unwound while holding it.
pub(crate) fn lenient_lock<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---------------------------------------------------------------------------
// Quiet panic hook: suppress output from model threads (their panics are
// reported as violations) without touching panics anywhere else.
// ---------------------------------------------------------------------------

/// Name prefix given to every OS thread the checker spawns.
pub(crate) const THREAD_NAME_PREFIX: &str = "chason-race-";

static HOOK_ONCE: std::sync::Once = std::sync::Once::new();

pub(crate) fn install_quiet_hook() {
    HOOK_ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let suppress = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(THREAD_NAME_PREFIX));
            if !suppress {
                prev(info);
            }
        }));
    });
}

/// Render a panic payload for violation reports.
pub(crate) fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

impl Controller {
    pub(crate) fn new(
        opts: ExecOpts,
        forced: Vec<ForcedChoice>,
        seed: u64,
        preemption_bound: usize,
    ) -> Arc<Self> {
        let t0 = ThreadState {
            status: Status::Ready,
            pending: Some(PendingOp::Start),
            clock: {
                let mut c = VectorClock::new();
                c.bump(0);
                c
            },
            wake: None,
        };
        Arc::new(Controller {
            // relaxed: a unique-id counter; no data is published through it
            serial: NEXT_SERIAL.fetch_add(1, StdOrdering::Relaxed),
            state: StdMutex::new(SchedState {
                threads: vec![t0],
                objects: Vec::new(),
                running: None,
                prev_running: None,
                policy: Policy::new(forced, seed, preemption_bound),
                trace: Vec::new(),
                steps: 0,
                violation: None,
                aborting: false,
                done: false,
                pruned: false,
                diverged: None,
                spurious_left: opts.spurious_wakeups,
                opts,
            }),
            cv: StdCondvar::new(),
        })
    }

    fn guard(&self) -> StdMutexGuard<'_, SchedState> {
        lenient_lock(&self.state)
    }

    fn wait<'a>(&self, g: StdMutexGuard<'a, SchedState>) -> StdMutexGuard<'a, SchedState> {
        match self.cv.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Register a tracked object, returning its dense id for this execution.
    pub(crate) fn register_object(&self, kind: ObjectKind, label: Option<&str>) -> ObjId {
        let mut st = self.guard();
        let id = st.objects.len();
        let label = match label {
            Some(l) => format!("{}#{id} \"{l}\"", kind.tag()),
            None => format!("{}#{id}", kind.tag()),
        };
        st.objects.push(ObjectState {
            label,
            holder: None,
            clock: VectorClock::new(),
            waiters: Vec::new(),
            last_write: None,
            reads: Vec::new(),
        });
        id
    }

    /// Start scheduling: called once after the root thread is spawned.
    pub(crate) fn kickoff(&self) {
        let mut st = self.guard();
        if st.running.is_none() && !st.done && !st.aborting {
            Self::advance(&mut st);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Announce a visible op and park until granted. On `Ok` the op's
    /// bookkeeping has been applied and the thread owns the schedule slice.
    pub(crate) fn yield_op(&self, tid: usize, op: OpKind) -> Result<(), Aborted> {
        let mut st = self.guard();
        if st.aborting {
            return Err(Aborted);
        }
        st.threads[tid].pending = Some(PendingOp::Op(op));
        st.running = None;
        Self::advance(&mut st);
        self.cv.notify_all();
        loop {
            if st.aborting {
                return Err(Aborted);
            }
            if st.running == Some(tid) {
                return Ok(());
            }
            st = self.wait(st);
        }
    }

    /// Park a freshly spawned thread until its first grant.
    pub(crate) fn park_start(&self, tid: usize) -> Result<(), Aborted> {
        let mut st = self.guard();
        loop {
            if st.aborting {
                return Err(Aborted);
            }
            if st.running == Some(tid) {
                return Ok(());
            }
            st = self.wait(st);
        }
    }

    /// Allocate a child thread id; the parent's `Spawn` op is granted before
    /// this returns, so the caller can then really spawn the OS thread.
    pub(crate) fn spawn_child(&self, parent: usize) -> Result<usize, Aborted> {
        let child = {
            let mut st = self.guard();
            if st.aborting {
                return Err(Aborted);
            }
            assert!(
                st.threads.len() < MAX_THREADS,
                "model exceeds {MAX_THREADS} threads"
            );
            let child = st.threads.len();
            st.threads.push(ThreadState {
                status: Status::Embryo,
                pending: Some(PendingOp::Start),
                clock: VectorClock::new(),
                wake: None,
            });
            child
        };
        self.yield_op(parent, OpKind::Spawn { child })?;
        Ok(child)
    }

    /// Release a mutex: pure bookkeeping, never a choice point. The next
    /// yield of the releasing thread exposes the new enabledness.
    pub(crate) fn lock_release(&self, tid: usize, obj: ObjId) {
        let mut st = self.guard();
        if st.aborting {
            return;
        }
        Self::do_release(&mut st, tid, obj);
        drop(st);
        self.cv.notify_all();
    }

    /// Park on a condvar (the associated mutex must already be released by
    /// the caller, std guard dropped). Returns the wake reason; on return the
    /// thread has been granted the mutex again (bookkeeping-wise).
    pub(crate) fn cond_wait(
        &self,
        tid: usize,
        cv: ObjId,
        lock: ObjId,
        can_timeout: bool,
    ) -> Result<WakeReason, Aborted> {
        let mut st = self.guard();
        if st.aborting {
            return Err(Aborted);
        }
        Self::do_release(&mut st, tid, lock);
        st.objects[cv].waiters.push(tid);
        st.threads[tid].pending = Some(PendingOp::CondParked {
            cv,
            lock,
            can_timeout,
            notified: false,
        });
        st.running = None;
        Self::advance(&mut st);
        self.cv.notify_all();
        loop {
            if st.aborting {
                return Err(Aborted);
            }
            if st.running == Some(tid) {
                let reason = st.threads[tid].wake.take().unwrap_or(WakeReason::Spurious);
                return Ok(reason);
            }
            st = self.wait(st);
        }
    }

    /// Normal completion of a model thread.
    pub(crate) fn finish(&self, tid: usize) {
        let mut st = self.guard();
        if !st.aborting {
            let step = st.steps;
            st.trace.push(render(step, tid, "exit"));
        }
        st.threads[tid].status = Status::Finished;
        if st.aborting {
            Self::check_abort_done(&mut st);
        } else {
            st.running = None;
            Self::advance(&mut st);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Completion of a model thread that unwound from an `AbortSignal`.
    pub(crate) fn finish_abort(&self, tid: usize) {
        let mut st = self.guard();
        st.threads[tid].status = Status::Finished;
        Self::check_abort_done(&mut st);
        drop(st);
        self.cv.notify_all();
    }

    /// A model thread panicked for real: record the violation and abort.
    pub(crate) fn report_panic(&self, tid: usize, message: String) {
        let mut st = self.guard();
        if !st.aborting && st.violation.is_none() {
            let step = st.steps;
            st.trace
                .push(render(step, tid, &format!("panic: {message}")));
            st.violation = Some(ViolationKind::Panic { tid, message });
            Self::start_abort(&mut st);
        }
        st.threads[tid].status = Status::Finished;
        Self::check_abort_done(&mut st);
        drop(st);
        self.cv.notify_all();
    }

    /// Block until the execution completes, then hand back the outcome.
    pub(crate) fn wait_done(&self) -> RunOutcome {
        let mut st = self.guard();
        while !st.done {
            st = self.wait(st);
        }
        RunOutcome {
            violation: st.violation.take(),
            nodes: st.policy.take_nodes(),
            trace: std::mem::take(&mut st.trace),
            pruned: st.pruned,
            diverged: st.diverged.take(),
        }
    }

    // -- internal ----------------------------------------------------------

    fn do_release(st: &mut SchedState, tid: usize, obj: ObjId) {
        debug_assert_eq!(st.objects[obj].holder, Some(tid), "release by non-holder");
        st.objects[obj].holder = None;
        let thread_clock = st.threads[tid].clock.clone();
        st.objects[obj].clock = thread_clock;
        st.threads[tid].clock.bump(tid);
        st.steps += 1;
        let (step, label) = (st.steps, st.objects[obj].label.clone());
        st.trace
            .push(render(step, tid, &format!("release {label}")));
        let pendings = Self::pending_keys(st);
        st.policy.on_op(
            ConflictKey::Obj {
                obj,
                read_only: false,
            },
            &pendings,
        );
    }

    fn check_abort_done(st: &mut SchedState) {
        if st.threads.iter().all(|t| t.status == Status::Finished) {
            st.done = true;
        }
    }

    fn start_abort(st: &mut SchedState) {
        st.aborting = true;
        st.running = None;
        // Embryo threads have no OS thread yet (their Spawn op was never
        // granted, so the parent is unwinding instead of spawning them).
        for t in st.threads.iter_mut() {
            if t.status == Status::Embryo {
                t.status = Status::Finished;
            }
        }
        Self::check_abort_done(st);
    }

    fn pending_keys(st: &SchedState) -> Vec<(usize, ConflictKey)> {
        let mut out = Vec::new();
        for (tid, t) in st.threads.iter().enumerate() {
            if t.status == Status::Finished {
                continue;
            }
            let Some(p) = &t.pending else { continue };
            let key = match p {
                PendingOp::Start => ConflictKey::Global,
                PendingOp::CondParked { .. } => ConflictKey::Global,
                PendingOp::Op(op) => match op {
                    OpKind::LockAcquire { obj } => ConflictKey::Obj {
                        obj: *obj,
                        read_only: false,
                    },
                    OpKind::AtomicLoad { obj, .. } => ConflictKey::Obj {
                        obj: *obj,
                        read_only: true,
                    },
                    OpKind::AtomicStore { obj, .. } | OpKind::AtomicRmw { obj, .. } => {
                        ConflictKey::Obj {
                            obj: *obj,
                            read_only: false,
                        }
                    }
                    OpKind::CellRead { obj } => ConflictKey::Obj {
                        obj: *obj,
                        read_only: true,
                    },
                    OpKind::CellWrite { obj } => ConflictKey::Obj {
                        obj: *obj,
                        read_only: false,
                    },
                    OpKind::Spawn { .. } | OpKind::Join { .. } => ConflictKey::Global,
                    OpKind::CondNotifyOne { .. } | OpKind::CondNotifyAll { .. } => {
                        ConflictKey::Global
                    }
                },
            };
            out.push((tid, key));
        }
        out
    }

    fn enabled_set(st: &SchedState, stage: Stage) -> Vec<usize> {
        let mut out = Vec::new();
        for (tid, t) in st.threads.iter().enumerate() {
            if t.status != Status::Ready {
                continue;
            }
            let Some(p) = &t.pending else { continue };
            let enabled = match (stage, p) {
                (Stage::Main, PendingOp::Start) => true,
                (Stage::Main, PendingOp::Op(op)) => match op {
                    OpKind::LockAcquire { obj } => st.objects[*obj].holder.is_none(),
                    OpKind::Join { child } => st.threads[*child].status == Status::Finished,
                    _ => true,
                },
                (Stage::Main, PendingOp::CondParked { lock, notified, .. }) => {
                    (*notified || st.spurious_left > 0) && st.objects[*lock].holder.is_none()
                }
                (
                    Stage::TimeoutRescue,
                    PendingOp::CondParked {
                        lock,
                        notified,
                        can_timeout,
                        ..
                    },
                ) => *can_timeout && !*notified && st.objects[*lock].holder.is_none(),
                (Stage::TimeoutRescue, _) => false,
            };
            if enabled {
                out.push(tid);
            }
        }
        out
    }

    /// Pick and grant the next thread. Called with `running == None`.
    fn advance(st: &mut SchedState) {
        if st.aborting || st.done {
            return;
        }
        if st.threads.iter().all(|t| t.status == Status::Finished) {
            st.done = true;
            return;
        }
        let mut stage = Stage::Main;
        let mut enabled = Self::enabled_set(st, stage);
        if enabled.is_empty() {
            stage = Stage::TimeoutRescue;
            enabled = Self::enabled_set(st, stage);
        }
        if enabled.is_empty() {
            let waiting: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Finished)
                .map(|(tid, t)| format!("t{tid} {}", describe_stuck(st, t)))
                .collect();
            st.violation = Some(ViolationKind::Deadlock { waiting });
            Self::start_abort(st);
            return;
        }
        let pendings = Self::pending_keys(st);
        let chosen = match st.policy.choose(&enabled, &pendings, st.prev_running) {
            Choice::Pick(c) => c,
            Choice::Prune => {
                st.pruned = true;
                Self::start_abort(st);
                return;
            }
            Choice::Diverged(msg) => {
                st.diverged = Some(msg);
                Self::start_abort(st);
                return;
            }
        };
        Self::apply_op(st, chosen, stage);
        if st.aborting || st.done {
            return;
        }
        st.prev_running = Some(chosen);
        st.running = Some(chosen);
    }

    /// Apply the chosen thread's pending op: clocks, race checks, trace.
    fn apply_op(st: &mut SchedState, tid: usize, stage: Stage) {
        st.steps += 1;
        if st.steps > st.opts.max_steps {
            st.violation = Some(ViolationKind::StepLimit {
                limit: st.opts.max_steps,
            });
            Self::start_abort(st);
            return;
        }
        let step = st.steps;
        let Some(pending) = st.threads[tid].pending.take() else {
            debug_assert!(false, "granted thread has no pending op");
            return;
        };
        let mut executed_key = ConflictKey::Global;
        match pending {
            PendingOp::Start => {
                st.trace.push(render(step, tid, "start"));
            }
            PendingOp::CondParked {
                cv, lock, notified, ..
            } => {
                let reason = if notified {
                    WakeReason::Notified
                } else if stage == Stage::TimeoutRescue {
                    WakeReason::TimedOut
                } else {
                    st.spurious_left = st.spurious_left.saturating_sub(1);
                    WakeReason::Spurious
                };
                st.objects[cv].waiters.retain(|&w| w != tid);
                st.objects[lock].holder = Some(tid);
                let lock_clock = st.objects[lock].clock.clone();
                st.threads[tid].clock.join(&lock_clock);
                st.threads[tid].wake = Some(reason);
                let (cv_label, lock_label) =
                    (st.objects[cv].label.clone(), st.objects[lock].label.clone());
                let how = match reason {
                    WakeReason::Notified => "notified",
                    WakeReason::Spurious => "spurious wake",
                    WakeReason::TimedOut => "timed out",
                };
                st.trace.push(render(
                    step,
                    tid,
                    &format!("wake ({how}) on {cv_label}, reacquire {lock_label}"),
                ));
            }
            PendingOp::Op(op) => match op {
                OpKind::LockAcquire { obj } => {
                    debug_assert!(st.objects[obj].holder.is_none());
                    st.objects[obj].holder = Some(tid);
                    let lock_clock = st.objects[obj].clock.clone();
                    st.threads[tid].clock.join(&lock_clock);
                    let label = st.objects[obj].label.clone();
                    st.trace
                        .push(render(step, tid, &format!("acquire {label}")));
                    executed_key = ConflictKey::Obj {
                        obj,
                        read_only: false,
                    };
                }
                OpKind::Spawn { child } => {
                    st.threads[child].status = Status::Ready;
                    let mut child_clock = st.threads[tid].clock.clone();
                    child_clock.bump(child);
                    st.threads[child].clock = child_clock;
                    st.threads[tid].clock.bump(tid);
                    st.trace.push(render(step, tid, &format!("spawn t{child}")));
                }
                OpKind::Join { child } => {
                    debug_assert_eq!(st.threads[child].status, Status::Finished);
                    let child_clock = st.threads[child].clock.clone();
                    st.threads[tid].clock.join(&child_clock);
                    st.trace.push(render(step, tid, &format!("join t{child}")));
                }
                OpKind::CondNotifyOne { obj } => {
                    let target = st.objects[obj].waiters.iter().copied().find(|&w| {
                        matches!(
                            st.threads[w].pending,
                            Some(PendingOp::CondParked {
                                notified: false,
                                ..
                            })
                        )
                    });
                    if let Some(w) = target {
                        if let Some(PendingOp::CondParked { notified, .. }) =
                            &mut st.threads[w].pending
                        {
                            *notified = true;
                        }
                    }
                    let label = st.objects[obj].label.clone();
                    let who = target.map_or("no waiter".to_string(), |w| format!("t{w}"));
                    st.trace
                        .push(render(step, tid, &format!("notify_one {label} -> {who}")));
                }
                OpKind::CondNotifyAll { obj } => {
                    let waiters = st.objects[obj].waiters.clone();
                    for w in &waiters {
                        if let Some(PendingOp::CondParked { notified, .. }) =
                            &mut st.threads[*w].pending
                        {
                            *notified = true;
                        }
                    }
                    let label = st.objects[obj].label.clone();
                    st.trace.push(render(
                        step,
                        tid,
                        &format!("notify_all {label} ({} waiter(s))", waiters.len()),
                    ));
                }
                OpKind::AtomicLoad { obj, ord } => {
                    if ord.acquires() {
                        let obj_clock = st.objects[obj].clock.clone();
                        st.threads[tid].clock.join(&obj_clock);
                    }
                    let label = st.objects[obj].label.clone();
                    st.trace
                        .push(render(step, tid, &format!("load({}) {label}", ord.name())));
                    executed_key = ConflictKey::Obj {
                        obj,
                        read_only: true,
                    };
                }
                OpKind::AtomicStore { obj, ord } | OpKind::AtomicRmw { obj, ord } => {
                    let rmw = matches!(op, OpKind::AtomicRmw { .. });
                    if rmw && ord.acquires() {
                        let obj_clock = st.objects[obj].clock.clone();
                        st.threads[tid].clock.join(&obj_clock);
                    }
                    if ord.releases() {
                        let thread_clock = st.threads[tid].clock.clone();
                        st.objects[obj].clock.join(&thread_clock);
                        st.threads[tid].clock.bump(tid);
                    }
                    let label = st.objects[obj].label.clone();
                    let what = if rmw { "rmw" } else { "store" };
                    st.trace.push(render(
                        step,
                        tid,
                        &format!("{what}({}) {label}", ord.name()),
                    ));
                    executed_key = ConflictKey::Obj {
                        obj,
                        read_only: false,
                    };
                }
                OpKind::CellRead { obj } => {
                    Self::cell_access(st, tid, obj, false, step);
                    if st.aborting {
                        return;
                    }
                    executed_key = ConflictKey::Obj {
                        obj,
                        read_only: true,
                    };
                }
                OpKind::CellWrite { obj } => {
                    Self::cell_access(st, tid, obj, true, step);
                    if st.aborting {
                        return;
                    }
                    executed_key = ConflictKey::Obj {
                        obj,
                        read_only: false,
                    };
                }
            },
        }
        let pendings = Self::pending_keys(st);
        st.policy.on_op(executed_key, &pendings);
    }

    /// FastTrack-style epoch check for an unsynchronized shared cell.
    fn cell_access(st: &mut SchedState, tid: usize, obj: ObjId, write: bool, step: usize) {
        let me = Access {
            tid,
            time: st.threads[tid].clock.get(tid),
            step,
            write,
        };
        let label = st.objects[obj].label.clone();
        let what = if write { "write" } else { "read" };
        st.trace.push(render(step, tid, &format!("{what} {label}")));

        let clock = st.threads[tid].clock.clone();
        let mut racy: Option<Access> = None;
        if let Some(w) = &st.objects[obj].last_write {
            if w.tid != tid && !clock.observed(w.tid, w.time) {
                racy = Some(w.clone());
            }
        }
        if write && racy.is_none() {
            for r in &st.objects[obj].reads {
                if r.tid != tid && !clock.observed(r.tid, r.time) {
                    racy = Some(r.clone());
                    break;
                }
            }
        }
        if let Some(prior) = racy {
            st.violation = Some(ViolationKind::DataRace {
                object: label,
                first: prior.describe(),
                second: me.describe(),
            });
            Self::start_abort(st);
            return;
        }
        if write {
            st.objects[obj].last_write = Some(me);
            st.objects[obj].reads.clear();
        } else {
            st.objects[obj].reads.retain(|r| r.tid != tid);
            st.objects[obj].reads.push(me);
        }
    }
}

/// Lazily registers an object with the controller of the current execution.
/// Objects created outside any execution (e.g. in statics) re-register per
/// execution; the serial check makes stale registrations invisible.
pub(crate) struct LazyReg {
    slot: StdMutex<LazySlot>,
}

struct LazySlot {
    label: Option<&'static str>,
    reg: Option<(u64, ObjId)>,
}

impl LazyReg {
    pub(crate) const fn new() -> LazyReg {
        LazyReg {
            slot: StdMutex::new(LazySlot {
                label: None,
                reg: None,
            }),
        }
    }

    pub(crate) const fn labeled(label: &'static str) -> LazyReg {
        LazyReg {
            slot: StdMutex::new(LazySlot {
                label: Some(label),
                reg: None,
            }),
        }
    }

    pub(crate) fn ensure(&self, ctrl: &Controller, kind: ObjectKind) -> ObjId {
        let mut s = lenient_lock(&self.slot);
        match s.reg {
            Some((serial, id)) if serial == ctrl.serial => id,
            _ => {
                let id = ctrl.register_object(kind, s.label);
                s.reg = Some((ctrl.serial, id));
                id
            }
        }
    }
}

fn describe_stuck(st: &SchedState, t: &ThreadState) -> String {
    match &t.pending {
        Some(PendingOp::Start) => "not yet started".to_string(),
        Some(PendingOp::CondParked {
            cv, can_timeout, ..
        }) => {
            let tag = if *can_timeout { " (with timeout)" } else { "" };
            format!("waiting on {}{tag}", st.objects[*cv].label)
        }
        Some(PendingOp::Op(OpKind::LockAcquire { obj })) => {
            format!("waiting to acquire {}", st.objects[*obj].label)
        }
        Some(PendingOp::Op(OpKind::Join { child })) => format!("joining t{child}"),
        Some(PendingOp::Op(_)) => "pending op".to_string(),
        None => "running".to_string(),
    }
}

fn render(step: usize, tid: usize, desc: &str) -> String {
    format!("{step:>4}  t{tid}  {desc}")
}
