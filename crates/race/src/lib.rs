//! `chason-race` — deterministic concurrency checking for the workspace's
//! hand-rolled synchronization, in the spirit of loom.
//!
//! Every sync primitive in this workspace goes through `vendor/crossbeam`
//! and std wrappers we control, so a pure-std checker can own the schedule:
//!
//! 1. **Controllable scheduler** ([`sync`], [`atomic`], [`cell`],
//!    [`thread`]): instrumented primitives yield to a central controller
//!    before every visible operation; exactly one thread runs at a time.
//!    Outside a model execution the same types pass through to plain std.
//! 2. **Explorer** ([`explore`]): seeded depth-first search over thread
//!    interleavings with bounded preemption and sleep-set pruning, plus
//!    deadlock (including lost-wakeup) and spin-loop detection.
//! 3. **Race detector**: FastTrack-style vector clocks flag unordered
//!    conflicting accesses to [`cell::RaceCell`]s, honoring the declared
//!    memory orderings of [`atomic`] operations — a `Relaxed` store
//!    publishes no happens-before edge, so dropped fences become reported
//!    races. Violations carry a seed-replayable interleaving trace
//!    ([`replay`]).
//!
//! Model suites for the real hot structures live in `chason-race-models`;
//! run them via `cargo xtask race`. DESIGN.md §12 documents the scheduler
//! model and how to write a model.

pub mod atomic;
pub mod cell;
mod clock;
mod explorer;
mod runtime;
pub mod sync;
pub mod thread;
mod trace;

pub use explorer::{explore, replay, Options, Report};
pub use trace::{Schedule, Violation, ViolationKind};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::{AtomicUsize, Ordering};
    use crate::cell::RaceCell;
    use crate::sync::{Condvar, Mutex};
    use std::sync::Arc;

    fn opts(seed: u64) -> Options {
        Options {
            seed,
            max_executions: 2000,
            ..Options::default()
        }
    }

    #[test]
    fn unsynchronized_writes_race() {
        let report = explore(opts(1), || {
            let cell = Arc::new(RaceCell::labeled("shared", 0u32));
            let c2 = Arc::clone(&cell);
            let t = thread::spawn(move || c2.set(1));
            cell.set(2);
            let _ = t.join();
        });
        let v = report.violation.expect("two unordered writes must race");
        assert!(
            matches!(v.kind, ViolationKind::DataRace { .. }),
            "got {:?}",
            v.kind
        );
        assert!(v.trace.iter().any(|l| l.contains("shared")));
    }

    #[test]
    fn mutex_protected_writes_are_clean() {
        let report = explore(opts(2), || {
            let cell = Arc::new((Mutex::new(()), RaceCell::new(0u32)));
            let c2 = Arc::clone(&cell);
            let t = thread::spawn(move || {
                let _g = c2.0.lock();
                let v = c2.1.get();
                c2.1.set(v + 1);
            });
            {
                let _g = cell.0.lock();
                let v = cell.1.get();
                cell.1.set(v + 1);
            }
            let _ = t.join();
            assert_eq!(cell.1.get(), 2);
        });
        assert!(
            report.violation.is_none(),
            "violation: {:?}",
            report.violation
        );
        assert!(report.complete, "small model should be exhaustible");
        assert!(report.executions > 1, "must actually branch");
    }

    #[test]
    fn release_acquire_publication_is_clean_but_relaxed_races() {
        let run = |store_ord: Ordering, load_ord: Ordering| {
            explore(opts(3), move || {
                let shared = Arc::new((RaceCell::labeled("payload", 0u64), AtomicUsize::new(0)));
                let s2 = Arc::clone(&shared);
                let t = thread::spawn(move || {
                    s2.0.set(42);
                    s2.1.store(1, store_ord);
                });
                if shared.1.load(load_ord) == 1 {
                    assert_eq!(shared.0.get(), 42);
                }
                let _ = t.join();
            })
        };
        let clean = run(Ordering::Release, Ordering::Acquire);
        assert!(
            clean.violation.is_none(),
            "rel/acq publication must be clean: {:?}",
            clean.violation
        );
        let racy = run(Ordering::Relaxed, Ordering::Relaxed);
        let v = racy.violation.expect("relaxed publication must race");
        assert!(
            matches!(v.kind, ViolationKind::DataRace { .. }),
            "got {:?}",
            v.kind
        );
    }

    #[test]
    fn abba_deadlock_detected() {
        let report = explore(opts(4), || {
            let locks = Arc::new((Mutex::labeled("A", ()), Mutex::labeled("B", ())));
            let l2 = Arc::clone(&locks);
            let t = thread::spawn(move || {
                let _a = l2.0.lock();
                let _b = l2.1.lock();
            });
            let _b = locks.1.lock();
            let _a = locks.0.lock();
            drop((_a, _b));
            let _ = t.join();
        });
        let v = report
            .violation
            .expect("ABBA must deadlock under some schedule");
        assert!(
            matches!(v.kind, ViolationKind::Deadlock { .. }),
            "got {:?}",
            v.kind
        );
    }

    #[test]
    fn lost_wakeup_detected_as_deadlock() {
        // Classic bug: the waiter parks without a predicate, so a notify
        // that fires before the park is lost forever.
        let report = explore(opts(5), || {
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = thread::spawn(move || p2.1.notify_one());
            let g = match pair.0.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            let _ = pair.1.wait(g);
            let _ = t.join();
        });
        let v = report.violation.expect("lost wakeup must be found");
        assert!(
            matches!(v.kind, ViolationKind::Deadlock { .. }),
            "got {:?}",
            v.kind
        );
    }

    #[test]
    fn condvar_with_predicate_loop_is_clean() {
        let report = explore(opts(6), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                *match p2.0.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                } = true;
                p2.1.notify_one();
            });
            let mut g = match pair.0.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            while !*g {
                g = match pair.1.wait(g) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
            drop(g);
            let _ = t.join();
        });
        assert!(
            report.violation.is_none(),
            "violation: {:?}",
            report.violation
        );
        assert!(report.complete);
    }

    #[test]
    fn assertion_failures_become_panic_violations() {
        let report = explore(opts(7), || {
            let c = Arc::new(RaceCell::new(0u32));
            let c2 = Arc::clone(&c);
            // Write then join: no race, but the value check can fail when
            // the child observes the parent's write ordering... it cannot —
            // so instead assert something schedule-dependent via an atomic.
            let flag = Arc::new(AtomicUsize::new(0));
            let f2 = Arc::clone(&flag);
            let t = thread::spawn(move || {
                f2.store(1, Ordering::Release);
                c2.set(1);
            });
            let _ = t.join();
            assert_eq!(flag.load(Ordering::Acquire), 2, "seeded failure");
        });
        let v = report.violation.expect("assert must surface");
        match &v.kind {
            ViolationKind::Panic { message, .. } => assert!(message.contains("seeded failure")),
            other => panic!("expected Panic, got {other:?}"),
        }
    }

    #[test]
    fn exploration_is_deterministic_and_replayable() {
        let model = || {
            let cell = Arc::new(RaceCell::labeled("spot", 0u8));
            let c2 = Arc::clone(&cell);
            let t = thread::spawn(move || c2.set(1));
            cell.set(2);
            let _ = t.join();
        };
        let a = explore(opts(9), model);
        let b = explore(opts(9), model);
        let (va, vb) = match (a.violation, b.violation) {
            (Some(va), Some(vb)) => (va, vb),
            other => panic!("both runs must find the race: {other:?}"),
        };
        assert_eq!(a.executions, b.executions, "same seed, same exploration");
        assert_eq!(va.schedule, vb.schedule);
        assert_eq!(va.trace, vb.trace);

        let replayed = replay(opts(9), &va.schedule, model)
            .expect("replay must not diverge")
            .expect("replay must reproduce the violation");
        assert_eq!(format!("{:?}", replayed.kind), format!("{:?}", va.kind));
    }

    #[test]
    fn primitives_pass_through_outside_executions() {
        // This test itself is NOT a model: everything delegates to std.
        let m = Mutex::new(5);
        {
            let mut g = m.lock().expect("not poisoned");
            *g += 1;
        }
        assert_eq!(*m.lock().expect("not poisoned"), 6);

        let cv = Condvar::new();
        let g = m.lock().expect("not poisoned");
        let (g, r) = cv
            .wait_timeout(g, std::time::Duration::from_millis(1))
            .expect("not poisoned");
        assert!(r.timed_out());
        drop(g);

        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(a.load(Ordering::SeqCst), 3);

        let c = RaceCell::new(7u32);
        c.set(8);
        assert_eq!(c.get(), 8);

        let t = thread::spawn(|| 11u8);
        assert_eq!(t.join().map_err(|_| "panic"), Ok(11));
    }

    #[test]
    fn zero_preemption_bound_still_covers_orderings() {
        // With bound 0 only non-preemptive schedules run, but blocking
        // reschedules are free: the race between two unsynchronized writers
        // is still ordered two ways and found.
        let report = explore(
            Options {
                seed: 10,
                preemption_bound: 0,
                max_executions: 500,
                ..Options::default()
            },
            || {
                let cell = Arc::new(RaceCell::new(0u8));
                let c2 = Arc::clone(&cell);
                let t = thread::spawn(move || c2.set(1));
                cell.set(2);
                let _ = t.join();
            },
        );
        assert!(report.violation.is_some());
    }
}
