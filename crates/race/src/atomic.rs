//! Instrumented atomics with std-shaped APIs.
//!
//! Under an active model execution every operation is a scheduler yield
//! point, and the declared [`Ordering`] drives happens-before edges in the
//! vector-clock detector: `Release` stores publish the writer's clock into
//! the atomic, `Acquire` loads absorb it, `Relaxed` does neither (so a
//! dropped fence turns into a detectable race on whatever the atomic was
//! supposed to publish). Outside an execution they are plain std atomics.
//!
//! `SeqCst` is modeled as `AcqRel`: the detector never relies on the single
//! total order, which is sound (it can only miss orderings, i.e. report a
//! race that `SeqCst` reasoning would also flag as needing the HB edge).

pub use std::sync::atomic::Ordering;

use crate::runtime::{self, LazyReg, ObjectKind, OpKind, OrdKind};

macro_rules! instrumented_atomic {
    ($(#[$meta:meta])* $name:ident, $std:ty, $prim:ty) => {
        $(#[$meta])*
        pub struct $name {
            reg: LazyReg,
            v: $std,
        }

        impl $name {
            /// Create an atomic with the given initial value.
            pub const fn new(v: $prim) -> $name {
                $name { reg: LazyReg::new(), v: <$std>::new(v) }
            }

            /// Create an atomic whose name appears in traces.
            pub const fn labeled(label: &'static str, v: $prim) -> $name {
                $name { reg: LazyReg::labeled(label), v: <$std>::new(v) }
            }

            fn hook(&self, op: fn(usize, OrdKind) -> OpKind, ord: Ordering) {
                if let Some((ctrl, tid)) = runtime::current_ctx() {
                    let obj = self.reg.ensure(&ctrl, ObjectKind::Atomic);
                    if ctrl.yield_op(tid, op(obj, OrdKind::of(ord))).is_err() {
                        runtime::abort_unwind();
                    }
                }
            }

            /// Atomic load.
            pub fn load(&self, ord: Ordering) -> $prim {
                self.hook(|obj, ord| OpKind::AtomicLoad { obj, ord }, ord);
                self.v.load(ord)
            }

            /// Atomic store.
            pub fn store(&self, val: $prim, ord: Ordering) {
                self.hook(|obj, ord| OpKind::AtomicStore { obj, ord }, ord);
                self.v.store(val, ord)
            }

            /// Atomic swap, returning the previous value.
            pub fn swap(&self, val: $prim, ord: Ordering) -> $prim {
                self.hook(|obj, ord| OpKind::AtomicRmw { obj, ord }, ord);
                self.v.swap(val, ord)
            }

            /// Atomic compare-exchange, returning `Ok(previous)` on success.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                // Conservatively model with the success ordering; a failed
                // exchange absorbing extra happens-before only loses races,
                // and the schedule at the yield point is what matters.
                self.hook(|obj, ord| OpKind::AtomicRmw { obj, ord }, success);
                self.v.compare_exchange(current, new, success, failure)
            }
        }
    };
}

macro_rules! instrumented_atomic_int {
    ($name:ident, $prim:ty) => {
        impl $name {
            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, val: $prim, ord: Ordering) -> $prim {
                self.hook(|obj, ord| OpKind::AtomicRmw { obj, ord }, ord);
                self.v.fetch_add(val, ord)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, val: $prim, ord: Ordering) -> $prim {
                self.hook(|obj, ord| OpKind::AtomicRmw { obj, ord }, ord);
                self.v.fetch_sub(val, ord)
            }

            /// Atomic maximum, returning the previous value.
            pub fn fetch_max(&self, val: $prim, ord: Ordering) -> $prim {
                self.hook(|obj, ord| OpKind::AtomicRmw { obj, ord }, ord);
                self.v.fetch_max(val, ord)
            }
        }
    };
}

instrumented_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
instrumented_atomic_int!(AtomicUsize, usize);

instrumented_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
instrumented_atomic_int!(AtomicU64, u64);

instrumented_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicBool`].
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);

impl AtomicBool {
    /// Atomic OR, returning the previous value.
    pub fn fetch_or(&self, val: bool, ord: Ordering) -> bool {
        self.hook(|obj, ord| OpKind::AtomicRmw { obj, ord }, ord);
        self.v.fetch_or(val, ord)
    }

    /// Atomic AND, returning the previous value.
    pub fn fetch_and(&self, val: bool, ord: Ordering) -> bool {
        self.hook(|obj, ord| OpKind::AtomicRmw { obj, ord }, ord);
        self.v.fetch_and(val, ord)
    }
}
