//! Instrumented `Mutex`/`Condvar` with std-shaped APIs.
//!
//! On a thread owned by an active model execution, every acquire, release,
//! wait, and notify yields to the scheduler; outside one they delegate to
//! plain `std::sync`, so code written against these types behaves
//! identically in normal builds and binaries.
//!
//! One deliberate deviation: under the checker, lock poisoning is forgiven
//! (a model panic aborts the whole execution anyway, and a poisoned std
//! mutex must not leak into the next execution). Passthrough mode keeps
//! std's poisoning semantics exactly.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{
    Arc, Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard,
    PoisonError,
};
use std::time::Duration;

use crate::runtime::{self, Controller, LazyReg, ObjId, ObjectKind, OpKind, WakeReason};

/// A mutual-exclusion lock with the shape of [`std::sync::Mutex`], visible
/// to the model checker.
pub struct Mutex<T> {
    reg: LazyReg,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create an unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            reg: LazyReg::new(),
            inner: StdMutex::new(value),
        }
    }

    /// Create an unlocked mutex whose name appears in traces.
    pub const fn labeled(label: &'static str, value: T) -> Mutex<T> {
        Mutex {
            reg: LazyReg::labeled(label),
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock, blocking (in model time or real time) until free.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match runtime::current_ctx() {
            Some((ctrl, tid)) => {
                let obj = self.reg.ensure(&ctrl, ObjectKind::Mutex);
                if ctrl.yield_op(tid, OpKind::LockAcquire { obj }).is_err() {
                    runtime::abort_unwind();
                }
                // Granted: the scheduler guarantees no live holder, so this
                // std lock can only block momentarily (a guard mid-drop).
                let g = runtime::lenient_lock(&self.inner);
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    ctl: Some((ctrl, tid, obj)),
                })
            }
            None if runtime::in_abort_passthrough() => {
                let g = runtime::lenient_lock(&self.inner);
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    ctl: None,
                })
            }
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    ctl: None,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(poisoned.into_inner()),
                    ctl: None,
                })),
            },
        }
    }

    /// Consume the mutex, returning the inner value (poison forgiven).
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]; releasing it is a scheduler-visible event.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    ctl: Option<(Arc<Controller>, usize, ObjId)>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            // Invariant: `inner` is Some from construction until drop/wait.
            None => unreachable!("MutexGuard used after teardown"),
        }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("MutexGuard used after teardown"),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first; only then tell the scheduler. No
        // other model thread can observe the window (exactly one runs).
        drop(self.inner.take());
        if let Some((ctrl, tid, obj)) = self.ctl.take() {
            ctrl.lock_release(tid, obj);
        }
    }
}

/// Result of [`Condvar::wait_timeout`]. Mirrors
/// [`std::sync::WaitTimeoutResult`], which cannot be constructed outside
/// std — hence this type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with the shape of [`std::sync::Condvar`], visible to
/// the model checker.
///
/// Under the checker, a `wait_timeout` waiter "times out" only as deadlock
/// rescue — when no other thread can run. Model code should therefore pass
/// generous timeouts (the duration's real value is irrelevant in model time)
/// and rely on its own predicate re-checks, exactly like production code.
pub struct Condvar {
    reg: LazyReg,
    inner: StdCondvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            reg: LazyReg::new(),
            inner: StdCondvar::new(),
        }
    }

    /// Create a condition variable whose name appears in traces.
    pub const fn labeled(label: &'static str) -> Condvar {
        Condvar {
            reg: LazyReg::labeled(label),
            inner: StdCondvar::new(),
        }
    }

    /// Block until notified (or woken spuriously), releasing the guard while
    /// parked and reacquiring before returning.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.ctl.take() {
            Some((ctrl, tid, lock_obj)) => {
                let (g, _reason) = self.controlled_wait(guard, ctrl, tid, lock_obj, false);
                Ok(g)
            }
            None => {
                let lock_ref = guard.lock;
                let std_g = take_std_guard(&mut guard);
                drop(guard); // defused: both options are None
                match self.inner.wait(std_g) {
                    Ok(g) => Ok(MutexGuard {
                        lock: lock_ref,
                        inner: Some(g),
                        ctl: None,
                    }),
                    Err(poisoned) => Err(PoisonError::new(MutexGuard {
                        lock: lock_ref,
                        inner: Some(poisoned.into_inner()),
                        ctl: None,
                    })),
                }
            }
        }
    }

    /// Like [`Condvar::wait`] but also wakes once `dur` elapses (in model
    /// time: only when nothing else can make progress).
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match guard.ctl.take() {
            Some((ctrl, tid, lock_obj)) => {
                let (g, reason) = self.controlled_wait(guard, ctrl, tid, lock_obj, true);
                Ok((
                    g,
                    WaitTimeoutResult {
                        timed_out: reason == WakeReason::TimedOut,
                    },
                ))
            }
            None => {
                let lock_ref = guard.lock;
                let std_g = take_std_guard(&mut guard);
                drop(guard);
                match self.inner.wait_timeout(std_g, dur) {
                    Ok((g, r)) => Ok((
                        MutexGuard {
                            lock: lock_ref,
                            inner: Some(g),
                            ctl: None,
                        },
                        WaitTimeoutResult {
                            timed_out: r.timed_out(),
                        },
                    )),
                    Err(poisoned) => {
                        let (g, r) = poisoned.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                lock: lock_ref,
                                inner: Some(g),
                                ctl: None,
                            },
                            WaitTimeoutResult {
                                timed_out: r.timed_out(),
                            },
                        )))
                    }
                }
            }
        }
    }

    /// Wake one parked waiter (the longest-parked one, under the checker).
    pub fn notify_one(&self) {
        if let Some((ctrl, tid)) = runtime::current_ctx() {
            let obj = self.reg.ensure(&ctrl, ObjectKind::Condvar);
            if ctrl.yield_op(tid, OpKind::CondNotifyOne { obj }).is_err() {
                runtime::abort_unwind();
            }
        }
        self.inner.notify_one();
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) {
        if let Some((ctrl, tid)) = runtime::current_ctx() {
            let obj = self.reg.ensure(&ctrl, ObjectKind::Condvar);
            if ctrl.yield_op(tid, OpKind::CondNotifyAll { obj }).is_err() {
                runtime::abort_unwind();
            }
        }
        self.inner.notify_all();
    }

    /// Park under the scheduler. `guard.ctl` must already be taken by the
    /// caller (passed as `ctrl`/`tid`/`lock_obj`).
    fn controlled_wait<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        ctrl: Arc<Controller>,
        tid: usize,
        lock_obj: ObjId,
        can_timeout: bool,
    ) -> (MutexGuard<'a, T>, WakeReason) {
        let cv_obj = self.reg.ensure(&ctrl, ObjectKind::Condvar);
        let lock_ref = guard.lock;
        // Drop the real std lock BEFORE parking in the controller: a thread
        // the scheduler runs meanwhile may need it, and it must never block
        // on a lock held by a parked thread.
        drop(guard.inner.take());
        drop(guard);
        match ctrl.cond_wait(tid, cv_obj, lock_obj, can_timeout) {
            Err(_) => runtime::abort_unwind(),
            Ok(reason) => {
                // The grant already reassigned the lock to us.
                let g = runtime::lenient_lock(&lock_ref.inner);
                (
                    MutexGuard {
                        lock: lock_ref,
                        inner: Some(g),
                        ctl: Some((ctrl, tid, lock_obj)),
                    },
                    reason,
                )
            }
        }
    }
}

fn take_std_guard<'a, T>(guard: &mut MutexGuard<'a, T>) -> StdMutexGuard<'a, T> {
    match guard.inner.take() {
        Some(g) => g,
        // Invariant: a live guard always holds its std guard.
        None => unreachable!("MutexGuard used after teardown"),
    }
}
