//! Vector clocks for happens-before tracking.
//!
//! A [`VectorClock`] maps thread ids (small dense `usize` indices assigned by
//! the scheduler) to logical timestamps. Component `t` of a thread's clock is
//! that thread's own *epoch*: it is advanced at release points (mutex unlock,
//! release-store, spawn) so that two accesses by the same thread separated by
//! a release get distinguishable timestamps, which is all FastTrack-style
//! epoch race checking needs.

/// A grow-on-demand vector clock. Missing components read as 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u32>);

impl VectorClock {
    /// An empty clock (all components zero).
    pub const fn new() -> Self {
        VectorClock(Vec::new())
    }

    /// Component for thread `tid` (0 if never set).
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Increment thread `tid`'s own component by one.
    pub fn bump(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Pointwise maximum with `other` (the happens-before join).
    pub fn join(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// True if an access at `(tid, time)` happens-before this clock, i.e.
    /// this clock has already observed thread `tid` up to `time`.
    pub fn observed(&self, tid: usize, time: u32) -> bool {
        self.get(tid) >= time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_bumps() {
        let mut c = VectorClock::new();
        assert_eq!(c.get(3), 0);
        c.bump(3);
        c.bump(3);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.bump(0);
        a.bump(0);
        let mut b = VectorClock::new();
        b.bump(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
    }

    #[test]
    fn observed_tracks_epochs() {
        let mut a = VectorClock::new();
        a.bump(2);
        assert!(a.observed(2, 1));
        assert!(!a.observed(2, 2));
        assert!(a.observed(5, 0));
    }
}
