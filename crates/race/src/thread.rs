//! Instrumented `spawn`/`join` with std-shaped APIs.
//!
//! Spawned from a model thread, the child becomes a scheduler-controlled
//! thread: `spawn` and `join` are yield points carrying happens-before
//! edges (parent → child start; child exit → joiner). Spawned from anywhere
//! else, this is exactly [`std::thread::spawn`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::runtime::{self, AbortSignal, Controller, OpKind};

/// Handle to a spawned thread; mirrors [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    ctl: Option<(Arc<Controller>, usize)>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish, returning its result (or the panic
    /// payload, like std). Under the checker this is a blocking yield point.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((_ctrl, child)) = &self.ctl {
            if let Some((ctrl, me)) = runtime::current_ctx() {
                if ctrl.yield_op(me, OpKind::Join { child: *child }).is_err() {
                    runtime::abort_unwind();
                }
            }
        }
        // Granted (or passthrough): the OS thread is at worst packaging its
        // return value, so this join blocks only momentarily.
        self.inner.join()
    }
}

/// Spawn a thread; a controlled thread if the caller is one.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match runtime::current_ctx() {
        Some((ctrl, parent)) => {
            let child = match ctrl.spawn_child(parent) {
                Ok(c) => c,
                Err(_) => runtime::abort_unwind(),
            };
            let ctrl2 = Arc::clone(&ctrl);
            let builder = std::thread::Builder::new().name(format!(
                "{}t{child}-{}",
                runtime::THREAD_NAME_PREFIX,
                ctrl.serial
            ));
            let spawned = builder.spawn(move || {
                runtime::set_ctx(Arc::clone(&ctrl2), child);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if ctrl2.park_start(child).is_err() {
                        runtime::abort_unwind();
                    }
                    f()
                }));
                runtime::clear_ctx();
                match result {
                    Ok(v) => {
                        ctrl2.finish(child);
                        v
                    }
                    Err(payload) => {
                        if payload.downcast_ref::<AbortSignal>().is_some() {
                            ctrl2.finish_abort(child);
                        } else {
                            ctrl2.report_panic(child, runtime::payload_to_string(payload.as_ref()));
                        }
                        std::panic::resume_unwind(payload)
                    }
                }
            });
            match spawned {
                Ok(inner) => JoinHandle {
                    inner,
                    ctl: Some((ctrl, child)),
                },
                // The scheduler already granted the Spawn op; mark the child
                // finished (it will never run) so the execution can abort
                // cleanly, then surface the OS failure as a model panic.
                Err(e) => {
                    ctrl.finish_abort(child);
                    panic!("failed to spawn model thread: {e}")
                }
            }
        }
        None => JoinHandle {
            inner: std::thread::spawn(f),
            ctl: None,
        },
    }
}
