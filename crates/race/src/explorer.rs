//! Depth-first exploration of the schedule tree.
//!
//! Each execution replays a *forced prefix* of branch choices, then runs a
//! default policy (prefer the previously running thread — the zero-preemption
//! baseline) to the end. The branching points encountered are recorded as
//! [`NodeRecord`]s; backtracking picks the deepest node with an untried,
//! non-sleeping, bound-respecting sibling and re-runs with the extended
//! prefix. Two prunings keep the tree tractable:
//!
//! - **Bounded preemption**: choosing a thread other than the previously
//!   running one *while the previous one is still enabled* is a preemption;
//!   schedules with more than `preemption_bound` of them are skipped.
//!   Empirically (CHESS) almost all concurrency bugs need very few.
//! - **Sleep sets**: after exploring thread `a` at a node, sibling branches
//!   carry `a` in their sleep set until an operation *conflicting* with
//!   `a`'s pending op executes; scheduling a sleeping thread first would
//!   commute with the explored branch and reach an already-covered state.
//!   Conflict detection is conservative (same object, not both reads;
//!   scheduler ops conflict with everything), which is sound — it only
//!   reduces pruning.

use std::sync::Arc;

use crate::runtime::{self, Controller, ExecOpts, RunOutcome};
use crate::trace::{Schedule, Violation, ViolationKind};

/// Exploration knobs.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Seed for tie-breaking choice order; a violation report quotes it.
    pub seed: u64,
    /// Maximum number of executions before giving up (budget).
    pub max_executions: usize,
    /// Maximum preemptions per execution (see module docs).
    pub preemption_bound: usize,
    /// Per-execution step budget; exceeding it is reported as a violation.
    pub max_steps: usize,
    /// Spurious condvar wakeups the scheduler may inject per execution.
    pub spurious_wakeups: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seed: 0,
            max_executions: 4096,
            preemption_bound: 2,
            max_steps: 20_000,
            spurious_wakeups: 0,
        }
    }
}

/// What exploration found.
#[derive(Debug)]
pub struct Report {
    /// Executions actually run (including pruned ones).
    pub executions: usize,
    /// Executions cut short by sleep-set / preemption-bound pruning.
    pub pruned: usize,
    /// True if the bounded schedule space was exhausted within budget.
    pub complete: bool,
    /// First violation found, if any (exploration stops at the first).
    pub violation: Option<Violation>,
    /// Deepest branching structure seen (diagnostic).
    pub max_depth: usize,
}

/// One branch choice in a forced prefix.
#[derive(Clone, Copy, Debug)]
pub struct ForcedChoice {
    pub chosen: usize,
    /// Bitmask of siblings already fully explored at this node; they enter
    /// the sleep set of the subtree below `chosen`.
    pub tried: u64,
}

/// Conservative independence classification of a pending operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ConflictKey {
    /// Touches one tracked object; `read_only` ops commute with each other.
    Obj { obj: usize, read_only: bool },
    /// Scheduler-level op (spawn/join/notify/park): conflicts with everything.
    Global,
}

fn conflicts(a: ConflictKey, b: ConflictKey) -> bool {
    match (a, b) {
        (ConflictKey::Global, _) | (_, ConflictKey::Global) => true,
        (
            ConflictKey::Obj {
                obj: oa,
                read_only: ra,
            },
            ConflictKey::Obj {
                obj: ob,
                read_only: rb,
            },
        ) => oa == ob && !(ra && rb),
    }
}

/// A branching point recorded during one execution.
#[derive(Clone, Debug)]
pub(crate) struct NodeRecord {
    pub enabled: Vec<usize>,
    pub prev: Option<usize>,
    /// Preemptions consumed before this node.
    pub preempt_before: usize,
    /// Sleep set on entry (bitmask over tids).
    pub sleep_in: u64,
    pub chosen: usize,
}

/// The scheduler's choice, or a reason not to continue.
pub(crate) enum Choice {
    Pick(usize),
    /// Sleep-set or preemption-bound pruning: this execution is redundant.
    Prune,
    /// A forced replay choice was not enabled — the model is nondeterministic
    /// beyond scheduling (e.g. real time or ambient randomness leaked in).
    Diverged(String),
}

/// Per-execution choice policy driven by the explorer's forced prefix.
pub(crate) struct Policy {
    forced: Vec<ForcedChoice>,
    /// Index of the next forced node.
    node_idx: usize,
    sleep: u64,
    seed: u64,
    preemption_bound: usize,
    preemptions: usize,
    nodes: Vec<NodeRecord>,
}

impl Policy {
    pub(crate) fn new(forced: Vec<ForcedChoice>, seed: u64, preemption_bound: usize) -> Policy {
        Policy {
            forced,
            node_idx: 0,
            sleep: 0,
            seed,
            preemption_bound,
            preemptions: 0,
            nodes: Vec::new(),
        }
    }

    pub(crate) fn take_nodes(&mut self) -> Vec<NodeRecord> {
        std::mem::take(&mut self.nodes)
    }

    /// Pick among `enabled` (non-empty, ascending). `pendings` holds the
    /// conflict keys of all threads with a pending op (for sleep bookkeeping).
    pub(crate) fn choose(
        &mut self,
        enabled: &[usize],
        _pendings: &[(usize, ConflictKey)],
        prev: Option<usize>,
    ) -> Choice {
        let is_node = enabled.len() > 1;
        let candidates: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|&t| self.sleep & bit(t) == 0)
            .collect();

        let chosen = if is_node && self.node_idx < self.forced.len() {
            let f = self.forced[self.node_idx];
            if !enabled.contains(&f.chosen) {
                return Choice::Diverged(format!(
                    "replay chose t{} at node {} but enabled set is {:?}",
                    f.chosen, self.node_idx, enabled
                ));
            }
            // Exhausted siblings sleep in this subtree.
            self.sleep |= f.tried;
            self.sleep &= !bit(f.chosen);
            f.chosen
        } else {
            if candidates.is_empty() {
                return Choice::Prune;
            }
            // Default: stay on the previous thread (zero-preemption baseline).
            if let Some(p) = prev {
                if candidates.contains(&p) {
                    p
                } else if enabled.contains(&p) && self.preemptions >= self.preemption_bound {
                    // Every candidate would preempt a still-enabled thread.
                    return Choice::Prune;
                } else {
                    candidates
                        [(mix(self.seed ^ (self.nodes.len() as u64)) as usize) % candidates.len()]
                }
            } else {
                candidates[(mix(self.seed ^ (self.nodes.len() as u64)) as usize) % candidates.len()]
            }
        };

        if is_node {
            self.nodes.push(NodeRecord {
                enabled: enabled.to_vec(),
                prev,
                preempt_before: self.preemptions,
                sleep_in: self.sleep & !bit(chosen),
                chosen,
            });
            self.node_idx += 1;
        }
        if let Some(p) = prev {
            if chosen != p && enabled.contains(&p) {
                self.preemptions += 1;
            }
        }
        Choice::Pick(chosen)
    }

    /// An operation with key `executed` just ran: wake sleeping threads whose
    /// pending op conflicts with it (their branches are no longer redundant).
    pub(crate) fn on_op(&mut self, executed: ConflictKey, pendings: &[(usize, ConflictKey)]) {
        if self.sleep == 0 {
            return;
        }
        for (tid, key) in pendings {
            if self.sleep & bit(*tid) != 0 && conflicts(*key, executed) {
                self.sleep &= !bit(*tid);
            }
        }
    }
}

fn bit(t: usize) -> u64 {
    1u64 << (t as u32)
}

/// splitmix64 — cheap deterministic seed scrambling.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct StackEntry {
    rec: NodeRecord,
    /// Siblings fully explored at this node.
    tried: u64,
}

/// Run `model` under every schedule within the bound/budget, stopping at the
/// first violation. The model must be purely scheduling-dependent (no real
/// time, no ambient randomness); it runs once per explored execution.
pub fn explore<F>(opts: Options, model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    runtime::install_quiet_hook();
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let mut stack: Vec<StackEntry> = Vec::new();
    let mut report = Report {
        executions: 0,
        pruned: 0,
        complete: false,
        violation: None,
        max_depth: 0,
    };
    loop {
        if report.executions >= opts.max_executions {
            return report;
        }
        let forced: Vec<ForcedChoice> = stack
            .iter()
            .map(|e| ForcedChoice {
                chosen: e.rec.chosen,
                tried: e.tried,
            })
            .collect();
        let mut outcome = run_once(&opts, forced, Arc::clone(&model));
        report.executions += 1;
        report.max_depth = report.max_depth.max(outcome.nodes.len());
        if outcome.pruned {
            report.pruned += 1;
        }
        if let Some(kind) = outcome.violation.take() {
            report.violation = Some(make_violation(opts.seed, kind, &outcome));
            return report;
        }
        if let Some(msg) = outcome.diverged.take() {
            // Surface nondeterminism loudly: it invalidates replayability.
            report.violation = Some(make_violation(
                opts.seed,
                ViolationKind::Panic {
                    tid: 0,
                    message: format!("nondeterministic model: {msg}"),
                },
                &outcome,
            ));
            return report;
        }
        // Adopt newly discovered nodes below the forced prefix.
        debug_assert!(outcome.nodes.len() >= stack.len());
        for rec in outcome.nodes.into_iter().skip(stack.len()) {
            stack.push(StackEntry { rec, tried: 0 });
        }
        // Backtrack: deepest node with an untried, legal sibling.
        if !next_prefix(&mut stack, &opts) {
            report.complete = true;
            return report;
        }
    }
}

/// Re-run a specific schedule (from a violation report). Returns the
/// violation it reproduces, `Ok(None)` if the schedule runs clean, or an
/// error if the run diverges from the recorded branch structure.
pub fn replay<F>(opts: Options, schedule: &Schedule, model: F) -> Result<Option<Violation>, String>
where
    F: Fn() + Send + Sync + 'static,
{
    runtime::install_quiet_hook();
    let forced: Vec<ForcedChoice> = schedule
        .0
        .iter()
        .map(|&chosen| ForcedChoice { chosen, tried: 0 })
        .collect();
    let mut outcome = run_once(&opts, forced, Arc::new(model));
    if let Some(msg) = outcome.diverged.take() {
        return Err(msg);
    }
    let violation = outcome.violation.take();
    Ok(violation.map(|kind| make_violation(opts.seed, kind, &outcome)))
}

fn make_violation(seed: u64, kind: ViolationKind, outcome: &RunOutcome) -> Violation {
    Violation {
        kind,
        seed,
        schedule: Schedule(outcome.nodes.iter().map(|n| n.chosen).collect()),
        trace: outcome.trace.clone(),
    }
}

fn next_prefix(stack: &mut Vec<StackEntry>, opts: &Options) -> bool {
    loop {
        let depth = stack.len();
        let Some(entry) = stack.last_mut() else {
            return false;
        };
        let exhausted = entry.tried | bit(entry.rec.chosen) | entry.rec.sleep_in;
        let mut found = None;
        for i in 0..entry.rec.enabled.len() {
            // Deterministic seeded rotation of sibling order.
            let idx = (i + mix(opts.seed ^ (depth as u64)) as usize) % entry.rec.enabled.len();
            let c = entry.rec.enabled[idx];
            if exhausted & bit(c) != 0 {
                continue;
            }
            let preempting = entry
                .rec
                .prev
                .is_some_and(|p| p != c && entry.rec.enabled.contains(&p));
            if preempting && entry.rec.preempt_before >= opts.preemption_bound {
                continue;
            }
            found = Some(c);
            break;
        }
        match found {
            Some(c) => {
                entry.tried |= bit(entry.rec.chosen);
                entry.rec.chosen = c;
                return true;
            }
            None => {
                stack.pop();
            }
        }
    }
}

fn run_once(
    opts: &Options,
    forced: Vec<ForcedChoice>,
    model: Arc<dyn Fn() + Send + Sync>,
) -> RunOutcome {
    let exec = ExecOpts {
        max_steps: opts.max_steps,
        spurious_wakeups: opts.spurious_wakeups,
    };
    let controller = Controller::new(exec, forced, opts.seed, opts.preemption_bound);
    let ctrl = Arc::clone(&controller);
    let handle = std::thread::Builder::new()
        .name(format!(
            "{}root-{}",
            runtime::THREAD_NAME_PREFIX,
            controller.serial
        ))
        .spawn(move || {
            runtime::set_ctx(Arc::clone(&ctrl), 0);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if ctrl.park_start(0).is_err() {
                    runtime::abort_unwind();
                }
                model();
            }));
            runtime::clear_ctx();
            match result {
                Ok(()) => ctrl.finish(0),
                Err(payload) => {
                    if payload.downcast_ref::<runtime::AbortSignal>().is_some() {
                        ctrl.finish_abort(0);
                    } else {
                        ctrl.report_panic(0, runtime::payload_to_string(payload.as_ref()));
                    }
                }
            }
        });
    match handle {
        Ok(h) => {
            controller.kickoff();
            let outcome = controller.wait_done();
            let _ = h.join();
            outcome
        }
        Err(e) => {
            // Could not even spawn the root thread: report as a panic-style
            // violation rather than aborting the process.
            RunOutcome {
                violation: Some(ViolationKind::Panic {
                    tid: 0,
                    message: format!("failed to spawn model root thread: {e}"),
                }),
                nodes: Vec::new(),
                trace: Vec::new(),
                pruned: false,
                diverged: None,
            }
        }
    }
}
