//! Schedules, violations, and human-readable interleaving traces.

use std::fmt;
use std::str::FromStr;

/// The sequence of scheduler choices that reproduces one execution.
///
/// Only *branching* points (more than one thread enabled) are recorded; runs
/// of forced single-thread progress replay implicitly. The `Display`/
/// `FromStr` round trip (`"0,1,0,2"`) is what `chason-race --replay` takes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule(pub Vec<usize>);

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Schedule(Vec::new()));
        }
        let mut out = Vec::new();
        for part in s.split(',') {
            let tid: usize = part
                .trim()
                .parse()
                .map_err(|_| format!("schedule component {part:?} is not a thread id"))?;
            out.push(tid);
        }
        Ok(Schedule(out))
    }
}

/// What went wrong in an execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two unordered conflicting accesses to the same tracked location.
    DataRace {
        /// Label of the racing object (e.g. `cell#2 "chunk1"`).
        object: String,
        /// Rendered description of the earlier access.
        first: String,
        /// Rendered description of the later access.
        second: String,
    },
    /// No runnable thread remains but not all threads finished. Lost wakeups
    /// (a notify that raced past its wait) surface as this.
    Deadlock {
        /// One rendered line per stuck thread.
        waiting: Vec<String>,
    },
    /// A model thread panicked (assertion failure, index out of bounds, ...).
    Panic {
        /// Thread id that panicked.
        tid: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// The execution exceeded the per-execution step budget — almost always a
    /// spin loop in the model, which the scheduler cannot bound.
    StepLimit {
        /// The configured limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::DataRace {
                object,
                first,
                second,
            } => {
                write!(
                    f,
                    "data race on {object}: {first} is unordered with {second}"
                )
            }
            ViolationKind::Deadlock { waiting } => {
                write!(f, "deadlock; stuck threads: {}", waiting.join("; "))
            }
            ViolationKind::Panic { tid, message } => {
                write!(f, "thread t{tid} panicked: {message}")
            }
            ViolationKind::StepLimit { limit } => {
                write!(
                    f,
                    "execution exceeded {limit} steps (spin loop in the model?)"
                )
            }
        }
    }
}

/// A failed execution: the verdict plus everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// Seed the explorer ran with.
    pub seed: u64,
    /// Branch choices that replay this execution (`--replay` format).
    pub schedule: Schedule,
    /// Full interleaving trace, one rendered line per scheduler step.
    pub trace: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "violation: {}", self.kind)?;
        writeln!(f, "seed: {} | schedule: \"{}\"", self.seed, self.schedule)?;
        writeln!(f, "interleaving trace:")?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_round_trips() {
        let s = Schedule(vec![0, 2, 1, 1, 3]);
        let text = s.to_string();
        assert_eq!(text, "0,2,1,1,3");
        assert_eq!(text.parse::<Schedule>().map_err(|e| e.to_string()), Ok(s));
        assert_eq!(
            "".parse::<Schedule>().map_err(|e| e.to_string()),
            Ok(Schedule(vec![]))
        );
        assert!("0,x".parse::<Schedule>().is_err());
    }

    #[test]
    fn violation_renders_schedule_and_trace() {
        let v = Violation {
            kind: ViolationKind::StepLimit { limit: 10 },
            seed: 7,
            schedule: Schedule(vec![1, 0]),
            trace: vec!["   1  t0  start".into()],
        };
        let text = v.to_string();
        assert!(text.contains("schedule: \"1,0\""));
        assert!(text.contains("seed: 7"));
        assert!(text.contains("t0  start"));
    }
}
