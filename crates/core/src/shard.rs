//! Per-shard plan bundles for row-block sharded SpMV.
//!
//! [`ShardedPlan`] pairs a [`ShardSpec`] with one [`SpmvPlan`] per shard:
//! the unit a scatter-gather frontend caches so every shard backend can
//! execute its row block with a pre-built schedule. The reduction of
//! per-shard partial vectors lives on [`ShardSpec::gather`]; this module
//! validates that the plans actually match the spec they claim to tile.

use crate::plan::SpmvPlan;
use chason_sparse::shard::ShardSpec;
use chason_sparse::SparseError;

/// A [`ShardSpec`] together with one execution plan per shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedPlan {
    spec: ShardSpec,
    plans: Vec<SpmvPlan>,
}

impl ShardedPlan {
    /// Bundles per-shard plans with the spec that produced their slices.
    ///
    /// Each plan must cover exactly its shard's row range (plans are built
    /// from row-remapped slices, so plan `k` has `end_k - start_k` rows)
    /// and all plans must agree on the column width.
    pub fn assemble(spec: ShardSpec, plans: Vec<SpmvPlan>) -> Result<Self, SparseError> {
        if plans.len() != spec.shards() {
            return Err(SparseError::InvalidShardSpec(format!(
                "expected {} plans, got {}",
                spec.shards(),
                plans.len()
            )));
        }
        let cols = plans.first().map(|p| p.cols);
        for (k, plan) in plans.iter().enumerate() {
            let (start, end) = spec.range(k);
            if plan.rows != end - start {
                return Err(SparseError::InvalidShardSpec(format!(
                    "shard {k} plan covers {} rows, range [{start}, {end}) needs {}",
                    plan.rows,
                    end - start
                )));
            }
            if Some(plan.cols) != cols {
                return Err(SparseError::InvalidShardSpec(format!(
                    "shard {k} plan has {} columns, shard 0 has {}",
                    plan.cols,
                    cols.unwrap_or(0)
                )));
            }
        }
        Ok(ShardedPlan { spec, plans })
    }

    /// The row partition the plans were built against.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Per-shard plans in shard order.
    pub fn plans(&self) -> &[SpmvPlan] {
        &self.plans
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.plans.len()
    }

    /// Total column windows across all shard plans.
    pub fn window_count(&self) -> usize {
        self.plans.iter().map(SpmvPlan::window_count).sum()
    }

    /// Total non-zeros across all shard plans.
    pub fn nnz(&self) -> usize {
        self.plans.iter().map(|p| p.nnz).sum()
    }

    /// Reduces per-shard partial products into the full output vector.
    ///
    /// Thin wrapper over [`ShardSpec::gather`] so callers holding a
    /// `ShardedPlan` do not have to reach into the spec.
    pub fn reduce_partials(&self, partials: &[Vec<f32>]) -> Result<Vec<f32>, SparseError> {
        self.spec.gather(partials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PassPlan, PlanKey, SpmvPlan};

    fn dummy_plan(rows: usize, cols: usize, nnz: usize) -> SpmvPlan {
        SpmvPlan {
            key: PlanKey {
                fingerprint: rows as u64 ^ (cols as u64) << 20,
                config: Default::default(),
            },
            engine: "test".to_string(),
            window: 16,
            rows,
            cols,
            nnz,
            passes: vec![PassPlan {
                row_start: 0,
                row_end: rows,
                nnz,
                windows: Vec::new(),
            }],
        }
    }

    #[test]
    fn assemble_validates_shape() {
        let spec = ShardSpec::uniform(10, 2).unwrap();
        let ok =
            ShardedPlan::assemble(spec.clone(), vec![dummy_plan(5, 8, 3), dummy_plan(5, 8, 4)])
                .unwrap();
        assert_eq!(ok.shards(), 2);
        assert_eq!(ok.nnz(), 7);

        // Wrong plan count.
        assert!(ShardedPlan::assemble(spec.clone(), vec![dummy_plan(5, 8, 3)]).is_err());
        // Wrong row coverage.
        assert!(ShardedPlan::assemble(
            spec.clone(),
            vec![dummy_plan(4, 8, 3), dummy_plan(6, 8, 4)]
        )
        .is_err());
        // Column disagreement.
        assert!(
            ShardedPlan::assemble(spec, vec![dummy_plan(5, 8, 3), dummy_plan(5, 9, 4)]).is_err()
        );
    }

    #[test]
    fn reduce_partials_places_rows() {
        let spec = ShardSpec::uniform(4, 2).unwrap();
        let plan =
            ShardedPlan::assemble(spec, vec![dummy_plan(2, 4, 1), dummy_plan(2, 4, 1)]).unwrap();
        let y = plan
            .reduce_partials(&[vec![1.0, 2.0], vec![3.0, 4.0]])
            .unwrap();
        assert_eq!(y, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(plan.reduce_partials(&[vec![1.0], vec![3.0, 4.0]]).is_err());
    }
}
