//! ASCII rendering of schedules, in the style of the paper's Figures 4/5.
//!
//! Each channel is drawn as a `PEs × cycles` grid: private values print as
//! their row number, migrated values as `row'` (with hop count apostrophes),
//! and stalls as `·`. Intended for small worked examples and debugging —
//! the renderer truncates wide schedules.

use crate::schedule::ScheduledMatrix;
use std::fmt::Write as _;

/// Maximum cycles rendered before truncation.
pub const MAX_RENDER_CYCLES: usize = 64;

/// Renders every channel of a schedule as an ASCII grid.
///
/// # Example
///
/// ```
/// use chason_core::schedule::{PeAware, Scheduler, SchedulerConfig};
/// use chason_core::viz::render_schedule;
/// use chason_sparse::CooMatrix;
///
/// # fn main() -> Result<(), chason_sparse::SparseError> {
/// let m = CooMatrix::from_triplets(4, 2, vec![(0, 0, 1.0), (1, 1, 2.0)])?;
/// let s = PeAware::new().schedule(&m, &SchedulerConfig::toy(1, 2, 4));
/// let art = render_schedule(&s);
/// assert!(art.contains("channel 0"));
/// # Ok(())
/// # }
/// ```
pub fn render_schedule(schedule: &ScheduledMatrix) -> String {
    let mut out = String::new();
    let global = schedule.stream_cycles();
    let shown = global.min(MAX_RENDER_CYCLES);
    for ch in &schedule.channels {
        let _ = writeln!(
            out,
            "channel {} ({} cycles{}):",
            ch.channel,
            global,
            if global > shown { ", truncated" } else { "" }
        );
        let pes = schedule.config.pes_per_channel;
        for lane in 0..pes {
            let mut line = format!("  PE{lane}: ");
            for cycle in 0..shown {
                let token = match ch.grid.get(cycle).and_then(|slots| slots.get(lane)) {
                    Some(Some(nz)) => {
                        if nz.pvt {
                            format!("{:>4}", nz.row)
                        } else {
                            let hop = schedule
                                .config
                                .hop_for(ch.channel, schedule.config.channel_for_row(nz.row));
                            format!("{:>4}", format!("{}{}", nz.row, "'".repeat(hop)))
                        }
                    }
                    _ => format!("{:>4}", "·"),
                };
                line.push_str(&token);
            }
            let _ = writeln!(out, "{line}");
        }
    }
    let _ = writeln!(
        out,
        "legend: <row> private | <row>' migrated (one ' per hop) | · stall"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Crhcs, PeAware, Scheduler, SchedulerConfig};
    use chason_sparse::CooMatrix;

    fn example() -> (CooMatrix, SchedulerConfig) {
        // Channel 1 rich, channel 0 poor: migration shows up as r' tokens.
        let mut t = vec![(0usize, 0usize, 1.0f32)];
        for k in 0..6 {
            t.push((2 + 4 * k, k % 3, 2.0 + k as f32));
        }
        (
            CooMatrix::from_triplets(32, 3, t).unwrap(),
            SchedulerConfig::toy(2, 2, 3),
        )
    }

    #[test]
    fn renders_private_migrated_and_stalls() {
        let (m, cfg) = example();
        let s = Crhcs::new().schedule(&m, &cfg);
        let art = render_schedule(&s);
        assert!(art.contains("channel 0"));
        assert!(art.contains("channel 1"));
        assert!(art.contains('·'), "stalls should render");
        if s.channels[0]
            .grid
            .iter()
            .flatten()
            .flatten()
            .any(|nz| !nz.pvt)
        {
            assert!(art.contains('\''), "migrated values should be marked");
        }
        assert!(art.contains("legend:"));
    }

    #[test]
    fn truncates_wide_schedules() {
        let cfg = SchedulerConfig::toy(1, 1, 10);
        // One 20-value row: 191-cycle RAW chain.
        let t: Vec<_> = (0..20).map(|c| (0usize, c, 1.0f32)).collect();
        let m = CooMatrix::from_triplets(1, 20, t).unwrap();
        let s = PeAware::new().schedule(&m, &cfg);
        assert!(s.stream_cycles() > MAX_RENDER_CYCLES);
        let art = render_schedule(&s);
        assert!(art.contains("truncated"));
    }

    #[test]
    fn empty_schedule_renders_legend_only_channels() {
        let cfg = SchedulerConfig::toy(2, 2, 3);
        let s = PeAware::new().schedule(&CooMatrix::new(8, 8), &cfg);
        let art = render_schedule(&s);
        assert!(art.contains("channel 0 (0 cycles)"));
    }
}
