//! Binary export/import of scheduled data lists — the offline
//! preprocessing artifact.
//!
//! The real toolchain runs CrHCS offline and ships the per-channel 64-bit
//! data lists to the FPGA host program. This module defines that artifact:
//! a small self-describing container holding the scheduler configuration,
//! the matrix shape, and every channel's padded data list. The format is
//! little-endian throughout.
//!
//! ```text
//! magic   "CHSN"            4 B
//! version u32               (currently 1)
//! channels, pes, distance, hops          4 × u32
//! rows, cols, nnz                        3 × u64
//! cycles  u64               equalized list length (beats per channel)
//! then per channel: cycles × pes × u64 data words
//! ```

use crate::element::STALL_WORD;
use crate::schedule::{ScheduledMatrix, SchedulerConfig};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"CHSN";
const VERSION: u32 = 1;

/// A deserialized schedule artifact: configuration, shape, and the padded
/// per-channel data lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleArtifact {
    /// Scheduler configuration the lists were built for.
    pub config: SchedulerConfig,
    /// Source-matrix rows.
    pub rows: u64,
    /// Source-matrix columns.
    pub cols: u64,
    /// Source-matrix non-zeros.
    pub nnz: u64,
    /// Equalized list length in beats (cycles).
    pub cycles: u64,
    /// One padded data list per channel (`cycles × pes` words each).
    pub lists: Vec<Vec<u64>>,
}

impl ScheduleArtifact {
    /// Total stall words across all lists (Eq. 4's numerator).
    pub fn stalls(&self) -> u64 {
        self.lists
            .iter()
            .flatten()
            .filter(|&&w| w == STALL_WORD)
            .count() as u64
    }

    /// PE underutilization of the artifact per Eq. 4.
    pub fn underutilization(&self) -> f64 {
        let total: u64 = self.lists.iter().map(|l| l.len() as u64).sum();
        if total == 0 {
            0.0
        } else {
            self.stalls() as f64 / total as f64
        }
    }
}

/// Serializes a schedule (single window; columns must fit the wire format).
///
/// A `&mut` reference may be passed for `writer`.
///
/// # Errors
///
/// Propagates I/O failures.
///
/// # Panics
///
/// Panics if a slot overflows the 64-bit wire format (schedule one
/// [`crate::window`] at a time for wide matrices).
pub fn write_schedule<W: Write>(mut writer: W, schedule: &ScheduledMatrix) -> io::Result<()> {
    let cfg = &schedule.config;
    writer.write_all(MAGIC)?;
    for v in [
        VERSION,
        cfg.channels as u32,
        cfg.pes_per_channel as u32,
        cfg.dependency_distance as u32,
        cfg.migration_hops as u32,
    ] {
        writer.write_all(&v.to_le_bytes())?;
    }
    let cycles = schedule.stream_cycles() as u64;
    for v in [
        schedule.rows as u64,
        schedule.cols as u64,
        schedule.nnz as u64,
        cycles,
    ] {
        writer.write_all(&v.to_le_bytes())?;
    }
    for list in schedule.data_lists_padded() {
        for word in list {
            writer.write_all(&word.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    reader.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Deserializes a schedule artifact.
///
/// A `&mut` reference may be passed for `reader`.
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic/version or implausible geometry,
/// and propagates I/O failures (including truncation).
pub fn read_schedule<R: Read>(mut reader: R) -> io::Result<ScheduleArtifact> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a CHSN artifact",
        ));
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported artifact version {version}"),
        ));
    }
    let channels = read_u32(&mut reader)? as usize;
    let pes = read_u32(&mut reader)? as usize;
    let distance = read_u32(&mut reader)? as usize;
    let hops = read_u32(&mut reader)? as usize;
    let config = SchedulerConfig {
        channels,
        pes_per_channel: pes,
        dependency_distance: distance,
        migration_scan_limit: 256,
        migration_hops: hops.max(1),
    };
    if !config.is_valid() || channels > 1024 || pes > 64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "implausible scheduler geometry in artifact header",
        ));
    }
    let rows = read_u64(&mut reader)?;
    let cols = read_u64(&mut reader)?;
    let nnz = read_u64(&mut reader)?;
    let cycles = read_u64(&mut reader)?;
    let words_per_channel = cycles
        .checked_mul(pes as u64)
        .filter(|&w| w <= (1 << 34))
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "artifact list length overflows")
        })?;
    let mut lists = Vec::with_capacity(channels);
    for _ in 0..channels {
        let mut list = Vec::with_capacity(words_per_channel as usize);
        for _ in 0..words_per_channel {
            list.push(read_u64(&mut reader)?);
        }
        lists.push(list);
    }
    Ok(ScheduleArtifact {
        config,
        rows,
        cols,
        nnz,
        cycles,
        lists,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::SparseElement;
    use crate::schedule::{Crhcs, Scheduler};
    use chason_sparse::generators::power_law;

    fn sample() -> ScheduledMatrix {
        let m = power_law(256, 256, 1500, 1.7, 4);
        Crhcs::new().schedule(&m, &SchedulerConfig::paper())
    }

    #[test]
    fn round_trip_preserves_everything() {
        let schedule = sample();
        let mut buf = Vec::new();
        write_schedule(&mut buf, &schedule).unwrap();
        let artifact = read_schedule(buf.as_slice()).unwrap();
        assert_eq!(artifact.config.channels, 16);
        assert_eq!(artifact.rows, 256);
        assert_eq!(artifact.nnz, 1500);
        assert_eq!(artifact.cycles as usize, schedule.stream_cycles());
        assert_eq!(artifact.lists, schedule.data_lists_padded());
        // Eq. 4 computed on the artifact matches the schedule's metric.
        assert!((artifact.underutilization() - schedule.underutilization()).abs() < 1e-12);
    }

    #[test]
    fn artifact_words_decode_to_elements() {
        let schedule = sample();
        let mut buf = Vec::new();
        write_schedule(&mut buf, &schedule).unwrap();
        let artifact = read_schedule(buf.as_slice()).unwrap();
        let decoded: usize = artifact
            .lists
            .iter()
            .flatten()
            .filter_map(|&w| SparseElement::unpack(w))
            .count();
        assert_eq!(decoded as u64, artifact.nnz);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_schedule(&b"NOPE1234"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let schedule = sample();
        let mut buf = Vec::new();
        write_schedule(&mut buf, &schedule).unwrap();
        buf.truncate(buf.len() - 9);
        assert!(read_schedule(buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let schedule = sample();
        let mut buf = Vec::new();
        write_schedule(&mut buf, &schedule).unwrap();
        buf[4] = 99;
        let err = read_schedule(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn implausible_geometry_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CHSN");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&5000u32.to_le_bytes()); // channels
        buf.extend_from_slice(&8u32.to_le_bytes());
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 32]);
        assert!(read_schedule(buf.as_slice()).is_err());
    }
}
