//! Binary export/import of scheduled data lists — the offline
//! preprocessing artifact.
//!
//! The real toolchain runs CrHCS offline and ships the per-channel 64-bit
//! data lists to the FPGA host program. This module defines that artifact:
//! a small self-describing container holding the scheduler configuration,
//! the matrix shape, and every channel's padded data list. The format is
//! little-endian throughout.
//!
//! ```text
//! magic   "CHSN"            4 B
//! version u32               (currently 1)
//! channels, pes, distance, hops          4 × u32
//! rows, cols, nnz                        3 × u64
//! cycles  u64               equalized list length (beats per channel)
//! then per channel: cycles × pes × u64 data words
//! ```

//!
//! A second container, `CHPL`, serializes a full reusable [`SpmvPlan`]
//! (every pass, window, and scheduled slot) so iterative solvers can ship
//! the plan artifact across processes; see [`write_plan`] / [`read_plan`].

use crate::element::STALL_WORD;
use crate::plan::{PassPlan, PlanKey, PlanWindow, SpmvPlan};
use crate::schedule::{ChannelSchedule, NzSlot, ScheduledMatrix, SchedulerConfig};
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"CHSN";
const VERSION: u32 = 1;
const PLAN_MAGIC: &[u8; 4] = b"CHPL";
const PLAN_VERSION: u32 = 1;

/// Pre-allocation ceiling for length-prefixed collections: a corrupt or
/// adversarial count can at most reserve this many elements up front; the
/// rest of the capacity is grown only as bytes actually arrive, so a huge
/// declared count fails with a clean truncation error instead of an
/// allocation abort.
const PREALLOC_LIMIT: usize = 4096;

/// Typed failure of the binary readers ([`read_schedule`], [`read_plan`]).
///
/// The readers consume untrusted bytes — the `chason-serve` daemon feeds
/// them network payloads — so every malformed input must surface here
/// rather than as a panic or an unbounded allocation.
#[derive(Debug)]
pub enum ExportError {
    /// The underlying reader failed; truncated streams surface as
    /// [`io::ErrorKind::UnexpectedEof`].
    Io(io::Error),
    /// The stream does not start with the expected container magic.
    BadMagic {
        /// The container that was expected (`"CHSN"` or `"CHPL"`).
        expected: &'static str,
    },
    /// The container version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the header.
        got: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// A structurally invalid encoding (bad tag, bad flag, non-UTF-8
    /// name, implausible geometry).
    Malformed(String),
    /// A count or length field exceeds the format's plausibility cap.
    Oversized {
        /// Which field overflowed.
        what: &'static str,
        /// The declared value.
        got: u64,
        /// The cap it violated.
        cap: u64,
    },
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::Io(e) => write!(f, "artifact I/O failed: {e}"),
            ExportError::BadMagic { expected } => {
                write!(f, "not a {expected} artifact (bad magic)")
            }
            ExportError::UnsupportedVersion { got, expected } => {
                write!(
                    f,
                    "unsupported artifact version {got} (expected {expected})"
                )
            }
            ExportError::Malformed(msg) => write!(f, "malformed artifact: {msg}"),
            ExportError::Oversized { what, got, cap } => {
                write!(f, "implausible {what} count {got} (cap {cap})")
            }
        }
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ExportError {
    fn from(e: io::Error) -> Self {
        ExportError::Io(e)
    }
}

impl From<ExportError> for io::Error {
    fn from(e: ExportError) -> Self {
        match e {
            ExportError::Io(inner) => inner,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// A deserialized schedule artifact: configuration, shape, and the padded
/// per-channel data lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleArtifact {
    /// Scheduler configuration the lists were built for.
    pub config: SchedulerConfig,
    /// Source-matrix rows.
    pub rows: u64,
    /// Source-matrix columns.
    pub cols: u64,
    /// Source-matrix non-zeros.
    pub nnz: u64,
    /// Equalized list length in beats (cycles).
    pub cycles: u64,
    /// One padded data list per channel (`cycles × pes` words each).
    pub lists: Vec<Vec<u64>>,
}

impl ScheduleArtifact {
    /// Total stall words across all lists (Eq. 4's numerator).
    pub fn stalls(&self) -> u64 {
        self.lists
            .iter()
            .flatten()
            .filter(|&&w| w == STALL_WORD)
            .count() as u64
    }

    /// PE underutilization of the artifact per Eq. 4.
    pub fn underutilization(&self) -> f64 {
        let total: u64 = self.lists.iter().map(|l| l.len() as u64).sum();
        if total == 0 {
            0.0
        } else {
            self.stalls() as f64 / total as f64
        }
    }
}

/// Serializes a schedule (single window; columns must fit the wire format).
///
/// A `&mut` reference may be passed for `writer`.
///
/// # Errors
///
/// Propagates I/O failures.
///
/// # Panics
///
/// Panics if a slot overflows the 64-bit wire format (schedule one
/// [`crate::window`] at a time for wide matrices).
pub fn write_schedule<W: Write>(mut writer: W, schedule: &ScheduledMatrix) -> io::Result<()> {
    let cfg = &schedule.config;
    writer.write_all(MAGIC)?;
    for v in [
        VERSION,
        cfg.channels as u32,
        cfg.pes_per_channel as u32,
        cfg.dependency_distance as u32,
        cfg.migration_hops as u32,
    ] {
        writer.write_all(&v.to_le_bytes())?;
    }
    let cycles = schedule.stream_cycles() as u64;
    for v in [
        schedule.rows as u64,
        schedule.cols as u64,
        schedule.nnz as u64,
        cycles,
    ] {
        writer.write_all(&v.to_le_bytes())?;
    }
    for list in schedule.data_lists_padded() {
        for word in list {
            writer.write_all(&word.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    reader.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Deserializes a schedule artifact.
///
/// A `&mut` reference may be passed for `reader`.
///
/// # Errors
///
/// [`ExportError::BadMagic`] / [`ExportError::UnsupportedVersion`] for the
/// wrong container, [`ExportError::Malformed`] / [`ExportError::Oversized`]
/// for implausible geometry or counts, and [`ExportError::Io`] for I/O
/// failures (truncation included). Allocation is proportional to the bytes
/// actually read, never to a declared count alone.
pub fn read_schedule<R: Read>(mut reader: R) -> Result<ScheduleArtifact, ExportError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ExportError::BadMagic { expected: "CHSN" });
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(ExportError::UnsupportedVersion {
            got: version,
            expected: VERSION,
        });
    }
    let channels = read_u32(&mut reader)? as usize;
    let pes = read_u32(&mut reader)? as usize;
    let distance = read_u32(&mut reader)? as usize;
    let hops = read_u32(&mut reader)? as usize;
    let config = SchedulerConfig {
        channels,
        pes_per_channel: pes,
        dependency_distance: distance,
        migration_scan_limit: 256,
        migration_hops: hops.max(1),
    };
    if !config.is_valid() || channels > 1024 || pes > 64 {
        return Err(ExportError::Malformed(
            "implausible scheduler geometry in artifact header".to_string(),
        ));
    }
    let rows = read_u64(&mut reader)?;
    let cols = read_u64(&mut reader)?;
    let nnz = read_u64(&mut reader)?;
    let cycles = read_u64(&mut reader)?;
    let words_per_channel = cycles
        .checked_mul(pes as u64)
        .filter(|&w| w <= (1 << 34))
        .ok_or(ExportError::Oversized {
            what: "channel list word",
            got: cycles,
            cap: 1 << 34,
        })?;
    let mut lists = Vec::with_capacity(channels.min(PREALLOC_LIMIT));
    for _ in 0..channels {
        let mut list = Vec::with_capacity((words_per_channel as usize).min(PREALLOC_LIMIT));
        for _ in 0..words_per_channel {
            list.push(read_u64(&mut reader)?);
        }
        lists.push(list);
    }
    Ok(ScheduleArtifact {
        config,
        rows,
        cols,
        nnz,
        cycles,
        lists,
    })
}

fn invalid(msg: impl Into<String>) -> ExportError {
    ExportError::Malformed(msg.into())
}

fn write_config<W: Write>(writer: &mut W, cfg: &SchedulerConfig) -> io::Result<()> {
    for v in [
        cfg.channels as u32,
        cfg.pes_per_channel as u32,
        cfg.dependency_distance as u32,
        cfg.migration_scan_limit as u32,
        cfg.migration_hops as u32,
    ] {
        writer.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_config<R: Read>(reader: &mut R) -> Result<SchedulerConfig, ExportError> {
    let config = SchedulerConfig {
        channels: read_u32(reader)? as usize,
        pes_per_channel: read_u32(reader)? as usize,
        dependency_distance: read_u32(reader)? as usize,
        migration_scan_limit: read_u32(reader)? as usize,
        migration_hops: read_u32(reader)? as usize,
    };
    if !config.is_valid() || config.channels > 1024 || config.pes_per_channel > 64 {
        return Err(invalid("implausible scheduler geometry in plan"));
    }
    Ok(config)
}

/// Reads a count field and rejects implausibly large values, so a corrupt
/// or adversarial stream cannot request a huge allocation up front.
fn read_count<R: Read>(reader: &mut R, what: &'static str, cap: u64) -> Result<usize, ExportError> {
    let v = read_u64(reader)?;
    if v > cap {
        return Err(ExportError::Oversized { what, got: v, cap });
    }
    Ok(v as usize)
}

fn write_schedule_grid<W: Write>(writer: &mut W, s: &ScheduledMatrix) -> io::Result<()> {
    write_config(writer, &s.config)?;
    for v in [
        s.rows as u64,
        s.cols as u64,
        s.nnz as u64,
        s.channels.len() as u64,
    ] {
        writer.write_all(&v.to_le_bytes())?;
    }
    for ch in &s.channels {
        writer.write_all(&(ch.channel as u64).to_le_bytes())?;
        writer.write_all(&(ch.grid.len() as u64).to_le_bytes())?;
        for cycle in &ch.grid {
            writer.write_all(&(cycle.len() as u64).to_le_bytes())?;
            for slot in cycle {
                match slot {
                    None => writer.write_all(&[0u8])?,
                    Some(nz) => {
                        writer.write_all(&[1u8])?;
                        writer.write_all(&nz.value.to_bits().to_le_bytes())?;
                        writer.write_all(&(nz.row as u64).to_le_bytes())?;
                        writer.write_all(&(nz.col as u64).to_le_bytes())?;
                        writer.write_all(&[u8::from(nz.pvt), nz.pe_src])?;
                    }
                }
            }
        }
    }
    Ok(())
}

fn read_schedule_grid<R: Read>(reader: &mut R) -> Result<ScheduledMatrix, ExportError> {
    let config = read_config(reader)?;
    let rows = read_u64(reader)? as usize;
    let cols = read_u64(reader)? as usize;
    let nnz = read_u64(reader)? as usize;
    let channel_count = read_count(reader, "channel", 1024)?;
    let mut channels = Vec::with_capacity(channel_count.min(PREALLOC_LIMIT));
    for _ in 0..channel_count {
        let channel = read_u64(reader)? as usize;
        let cycles = read_count(reader, "cycle", 1 << 34)?;
        let mut grid = Vec::with_capacity(cycles.min(PREALLOC_LIMIT));
        for _ in 0..cycles {
            let lanes = read_count(reader, "lane", 4096)?;
            let mut row = Vec::with_capacity(lanes);
            for _ in 0..lanes {
                let mut tag = [0u8; 1];
                reader.read_exact(&mut tag)?;
                row.push(match tag[0] {
                    0 => None,
                    1 => {
                        let value = f32::from_bits(read_u32(reader)?);
                        let nz_row = read_u64(reader)? as usize;
                        let nz_col = read_u64(reader)? as usize;
                        let mut flags = [0u8; 2];
                        reader.read_exact(&mut flags)?;
                        if flags[0] > 1 {
                            return Err(invalid(format!("bad pvt flag {}", flags[0])));
                        }
                        Some(NzSlot {
                            value,
                            row: nz_row,
                            col: nz_col,
                            pvt: flags[0] == 1,
                            pe_src: flags[1],
                        })
                    }
                    t => return Err(invalid(format!("bad slot tag {t}"))),
                });
            }
            grid.push(row);
        }
        channels.push(ChannelSchedule { channel, grid });
    }
    Ok(ScheduledMatrix {
        config,
        channels,
        rows,
        cols,
        nnz,
    })
}

/// Serializes a full [`SpmvPlan`] — the `CHPL` artifact. Unlike the `CHSN`
/// data-list artifact, the plan keeps the structured per-slot grids, so
/// `read_plan(write_plan(p)) == p` exactly and engines can `run_planned`
/// the artifact without rescheduling.
///
/// A `&mut` reference may be passed for `writer`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_plan<W: Write>(mut writer: W, plan: &SpmvPlan) -> io::Result<()> {
    writer.write_all(PLAN_MAGIC)?;
    writer.write_all(&PLAN_VERSION.to_le_bytes())?;
    writer.write_all(&plan.key.fingerprint.to_le_bytes())?;
    write_config(&mut writer, &plan.key.config)?;
    let engine = plan.engine.as_bytes();
    writer.write_all(&(engine.len() as u32).to_le_bytes())?;
    writer.write_all(engine)?;
    for v in [
        plan.window as u64,
        plan.rows as u64,
        plan.cols as u64,
        plan.nnz as u64,
        plan.passes.len() as u64,
    ] {
        writer.write_all(&v.to_le_bytes())?;
    }
    for pass in &plan.passes {
        for v in [
            pass.row_start as u64,
            pass.row_end as u64,
            pass.nnz as u64,
            pass.windows.len() as u64,
        ] {
            writer.write_all(&v.to_le_bytes())?;
        }
        for w in &pass.windows {
            for v in [
                w.col_start as u64,
                w.col_end as u64,
                w.nnz as u64,
                w.stalls as u64,
                w.stream_cycles as u64,
            ] {
                writer.write_all(&v.to_le_bytes())?;
            }
            write_schedule_grid(&mut writer, &w.schedule)?;
        }
    }
    Ok(())
}

/// Deserializes a `CHPL` plan artifact written by [`write_plan`].
///
/// A `&mut` reference may be passed for `reader`.
///
/// # Errors
///
/// [`ExportError::BadMagic`] / [`ExportError::UnsupportedVersion`] for the
/// wrong container, [`ExportError::Malformed`] / [`ExportError::Oversized`]
/// for implausible geometry, counts, or slot encodings, and
/// [`ExportError::Io`] for I/O failures (truncation included). The reader
/// is safe on untrusted bytes: no input can trigger a panic, and
/// allocation is proportional to the bytes actually read, never to a
/// declared count alone.
pub fn read_plan<R: Read>(mut reader: R) -> Result<SpmvPlan, ExportError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != PLAN_MAGIC {
        return Err(ExportError::BadMagic { expected: "CHPL" });
    }
    let version = read_u32(&mut reader)?;
    if version != PLAN_VERSION {
        return Err(ExportError::UnsupportedVersion {
            got: version,
            expected: PLAN_VERSION,
        });
    }
    let fingerprint = read_u64(&mut reader)?;
    let config = read_config(&mut reader)?;
    let engine_len = read_u32(&mut reader)? as usize;
    if engine_len > 64 {
        return Err(invalid(format!(
            "implausible engine name length {engine_len}"
        )));
    }
    let mut engine = vec![0u8; engine_len];
    reader.read_exact(&mut engine)?;
    let engine = String::from_utf8(engine).map_err(|_| invalid("engine name is not UTF-8"))?;
    let window = read_u64(&mut reader)? as usize;
    let rows = read_u64(&mut reader)? as usize;
    let cols = read_u64(&mut reader)? as usize;
    let nnz = read_u64(&mut reader)? as usize;
    let pass_count = read_count(&mut reader, "pass", 1 << 20)?;
    let mut passes = Vec::with_capacity(pass_count.min(PREALLOC_LIMIT));
    for _ in 0..pass_count {
        let row_start = read_u64(&mut reader)? as usize;
        let row_end = read_u64(&mut reader)? as usize;
        let pass_nnz = read_u64(&mut reader)? as usize;
        let window_count = read_count(&mut reader, "window", 1 << 20)?;
        let mut windows = Vec::with_capacity(window_count.min(PREALLOC_LIMIT));
        for _ in 0..window_count {
            let col_start = read_u64(&mut reader)? as usize;
            let col_end = read_u64(&mut reader)? as usize;
            let w_nnz = read_u64(&mut reader)? as usize;
            let stalls = read_u64(&mut reader)? as usize;
            let stream_cycles = read_u64(&mut reader)? as usize;
            windows.push(PlanWindow {
                col_start,
                col_end,
                nnz: w_nnz,
                stalls,
                stream_cycles,
                schedule: read_schedule_grid(&mut reader)?,
            });
        }
        passes.push(PassPlan {
            row_start,
            row_end,
            nnz: pass_nnz,
            windows,
        });
    }
    Ok(SpmvPlan {
        key: PlanKey {
            fingerprint,
            config,
        },
        engine,
        window,
        rows,
        cols,
        nnz,
        passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::SparseElement;
    use crate::schedule::{Crhcs, Scheduler};
    use chason_sparse::generators::power_law;

    fn sample() -> ScheduledMatrix {
        let m = power_law(256, 256, 1500, 1.7, 4);
        Crhcs::new().schedule(&m, &SchedulerConfig::paper())
    }

    #[test]
    fn round_trip_preserves_everything() {
        let schedule = sample();
        let mut buf = Vec::new();
        write_schedule(&mut buf, &schedule).unwrap();
        let artifact = read_schedule(buf.as_slice()).unwrap();
        assert_eq!(artifact.config.channels, 16);
        assert_eq!(artifact.rows, 256);
        assert_eq!(artifact.nnz, 1500);
        assert_eq!(artifact.cycles as usize, schedule.stream_cycles());
        assert_eq!(artifact.lists, schedule.data_lists_padded());
        // Eq. 4 computed on the artifact matches the schedule's metric.
        assert!((artifact.underutilization() - schedule.underutilization()).abs() < 1e-12);
    }

    #[test]
    fn artifact_words_decode_to_elements() {
        let schedule = sample();
        let mut buf = Vec::new();
        write_schedule(&mut buf, &schedule).unwrap();
        let artifact = read_schedule(buf.as_slice()).unwrap();
        let decoded: usize = artifact
            .lists
            .iter()
            .flatten()
            .filter_map(|&w| SparseElement::unpack(w))
            .count();
        assert_eq!(decoded as u64, artifact.nnz);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_schedule(&b"NOPE1234"[..]).unwrap_err();
        assert!(matches!(err, ExportError::BadMagic { expected: "CHSN" }));
        // The io::Error conversion keeps it an InvalidData failure.
        assert_eq!(io::Error::from(err).kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let schedule = sample();
        let mut buf = Vec::new();
        write_schedule(&mut buf, &schedule).unwrap();
        buf.truncate(buf.len() - 9);
        let err = read_schedule(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ExportError::Io(_)), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let schedule = sample();
        let mut buf = Vec::new();
        write_schedule(&mut buf, &schedule).unwrap();
        buf[4] = 99;
        let err = read_schedule(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    fn sample_plan() -> SpmvPlan {
        let m = power_law(96, 96, 500, 1.7, 8);
        let config = SchedulerConfig::toy(4, 4, 6);
        let schedule = Crhcs::new().schedule(&m, &config);
        let stalls = schedule.stalls();
        let stream_cycles = schedule.stream_cycles();
        SpmvPlan {
            key: PlanKey::new(&m, config),
            engine: "chason".to_string(),
            window: 8192,
            rows: 96,
            cols: 96,
            nnz: 500,
            passes: vec![PassPlan {
                row_start: 0,
                row_end: 96,
                nnz: 500,
                windows: vec![PlanWindow {
                    col_start: 0,
                    col_end: 96,
                    nnz: 500,
                    stalls,
                    stream_cycles,
                    schedule,
                }],
            }],
        }
    }

    #[test]
    fn plan_round_trip_is_exact() {
        let plan = sample_plan();
        let mut buf = Vec::new();
        write_plan(&mut buf, &plan).unwrap();
        let parsed = read_plan(buf.as_slice()).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn plan_rejects_wrong_magic_and_version() {
        let plan = sample_plan();
        let mut buf = Vec::new();
        write_plan(&mut buf, &plan).unwrap();
        let mut wrong_magic = buf.clone();
        wrong_magic[..4].copy_from_slice(b"CHSN");
        assert!(read_plan(wrong_magic.as_slice()).is_err());
        let mut wrong_version = buf;
        wrong_version[4] = 99;
        let err = read_plan(wrong_version.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncated_plan_is_rejected() {
        let plan = sample_plan();
        let mut buf = Vec::new();
        write_plan(&mut buf, &plan).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_plan(buf.as_slice()).is_err());
    }

    #[test]
    fn plan_with_implausible_counts_is_rejected() {
        let plan = sample_plan();
        let mut buf = Vec::new();
        write_plan(&mut buf, &plan).unwrap();
        // The engine-name length sits at a fixed offset: magic (4) +
        // version (4) + fingerprint (8) + config (5 × 4).
        buf[36..40].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_plan(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("engine name"), "{err}");
    }

    #[test]
    fn implausible_geometry_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CHSN");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&5000u32.to_le_bytes()); // channels
        buf.extend_from_slice(&8u32.to_le_bytes());
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 32]);
        assert!(read_schedule(buf.as_slice()).is_err());
    }
}
