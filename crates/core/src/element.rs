//! The 64-bit packed sparse-element wire format of §3.2.
//!
//! Each scheduled non-zero occupies one 64-bit word in an HBM channel's data
//! list. The paper's layout (§3.2) dedicates 32 bits to the FP32 value and 32
//! bits to metadata:
//!
//! ```text
//!  63            32 31        17  16  15   13 12         0
//! ┌────────────────┬────────────┬────┬───────┬────────────┐
//! │  value (f32)   │ row (15 b) │pvt │PE_src │ col (13 b) │
//! └────────────────┴────────────┴────┴───────┴────────────┘
//! ```
//!
//! * `row` — the row's address within its PE's partial-sum URAM
//!   (`row_id / total_PEs`, 15 bits → 32 768 rows per PE);
//! * `pvt` — 1 when the element belongs to the channel that streams it
//!   (private), 0 when it was migrated from the neighbouring channel;
//! * `PE_src` — for migrated elements, the PE the element was originally
//!   scheduled for in its home channel (3 bits → 8 PEs per PEG);
//! * `col` — column within the current `W = 8192` window (13 bits).
//!
//! The all-zero word is reserved: it denotes a **stall** slot (an idle PE,
//! §2.2), which is why packed values must be non-zero floats — an FP32 `0.0`
//! payload would be indistinguishable from a stall.

use serde::{Deserialize, Serialize};

/// Number of bits for the per-PE row address.
pub const ROW_BITS: u32 = 15;
/// Number of bits for the source-PE tag.
pub const PE_SRC_BITS: u32 = 3;
/// Number of bits for the in-window column index.
pub const COL_BITS: u32 = 13;
/// Column-window size implied by [`COL_BITS`] (`W = 8192`, §4.1).
pub const WINDOW: usize = 1 << COL_BITS;
/// Maximum per-PE row address + 1.
pub const MAX_LOCAL_ROWS: usize = 1 << ROW_BITS;
/// The reserved stall word (an idle-PE slot in a data list).
pub const STALL_WORD: u64 = 0;

const COL_SHIFT: u32 = 0;
const PE_SRC_SHIFT: u32 = COL_BITS;
const PVT_SHIFT: u32 = PE_SRC_SHIFT + PE_SRC_BITS;
const ROW_SHIFT: u32 = PVT_SHIFT + 1;
const VALUE_SHIFT: u32 = 32;

/// One unpacked sparse element as it travels through a PEG.
///
/// # Example
///
/// ```
/// use chason_core::SparseElement;
///
/// let e = SparseElement { value: 1.5, local_row: 42, pvt: false, pe_src: 5, local_col: 7 };
/// let word = e.pack();
/// assert_eq!(SparseElement::unpack(word), Some(e));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparseElement {
    /// The FP32 non-zero value (must not be `0.0` / `-0.0` is allowed).
    pub value: f32,
    /// Row address within the destination PE's partial-sum URAM (15 bits).
    pub local_row: u16,
    /// `true` when the element belongs to the streaming channel itself.
    pub pvt: bool,
    /// Source PE within the home channel for migrated elements (3 bits);
    /// by convention 0 for private elements.
    pub pe_src: u8,
    /// Column index within the current window (13 bits).
    pub local_col: u16,
}

impl SparseElement {
    /// Creates a private-channel element (`pvt = 1`, `pe_src = 0`).
    ///
    /// # Panics
    ///
    /// Panics on field overflow or a zero value (see [`SparseElement::pack`]).
    pub fn private(value: f32, local_row: u16, local_col: u16) -> Self {
        let e = SparseElement {
            value,
            local_row,
            pvt: true,
            pe_src: 0,
            local_col,
        };
        e.validate();
        e
    }

    /// Creates a migrated (shared-channel) element carrying its source PE.
    ///
    /// # Panics
    ///
    /// Panics on field overflow or a zero value (see [`SparseElement::pack`]).
    pub fn migrated(value: f32, local_row: u16, pe_src: u8, local_col: u16) -> Self {
        let e = SparseElement {
            value,
            local_row,
            pvt: false,
            pe_src,
            local_col,
        };
        e.validate();
        e
    }

    fn validate(&self) {
        assert!(
            self.value != 0.0 || self.value.to_bits() != 0,
            "a packed element's value must not be +0.0 (reserved for stalls)"
        );
        assert!(
            (self.local_row as usize) < MAX_LOCAL_ROWS,
            "local_row {} exceeds {} bits",
            self.local_row,
            ROW_BITS
        );
        assert!(
            (self.pe_src as u32) < (1 << PE_SRC_BITS),
            "pe_src {} exceeds {} bits",
            self.pe_src,
            PE_SRC_BITS
        );
        assert!(
            (self.local_col as usize) < WINDOW,
            "local_col {} exceeds {} bits",
            self.local_col,
            COL_BITS
        );
    }

    /// Packs the element into its 64-bit wire word.
    ///
    /// # Panics
    ///
    /// Panics if a field exceeds its bit budget or if `value` is `+0.0`
    /// (whose bit pattern collides with [`STALL_WORD`] when all metadata is
    /// zero).
    pub fn pack(&self) -> u64 {
        self.validate();
        let mut w = (self.value.to_bits() as u64) << VALUE_SHIFT;
        w |= (self.local_row as u64) << ROW_SHIFT;
        w |= (self.pvt as u64) << PVT_SHIFT;
        w |= (self.pe_src as u64) << PE_SRC_SHIFT;
        w |= (self.local_col as u64) << COL_SHIFT;
        w
    }

    /// Unpacks a wire word, returning `None` for the stall word.
    pub fn unpack(word: u64) -> Option<Self> {
        if word == STALL_WORD {
            return None;
        }
        Some(SparseElement {
            value: f32::from_bits((word >> VALUE_SHIFT) as u32),
            local_row: ((word >> ROW_SHIFT) & ((1 << ROW_BITS) - 1)) as u16,
            pvt: (word >> PVT_SHIFT) & 1 == 1,
            pe_src: ((word >> PE_SRC_SHIFT) & ((1 << PE_SRC_BITS) - 1)) as u8,
            local_col: ((word >> COL_SHIFT) & ((1 << COL_BITS) - 1)) as u16,
        })
    }

    /// Whether a wire word denotes a stall.
    pub fn is_stall(word: u64) -> bool {
        word == STALL_WORD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_occupies_all_64_bits_disjointly() {
        assert_eq!(ROW_SHIFT + ROW_BITS, 32);
        assert_eq!(PVT_SHIFT, 16);
        assert_eq!(WINDOW, 8192);
        assert_eq!(MAX_LOCAL_ROWS, 32_768);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let e = SparseElement {
            value: -3.75,
            local_row: 0x7FFF,
            pvt: true,
            pe_src: 7,
            local_col: 0x1FFF,
        };
        assert_eq!(SparseElement::unpack(e.pack()), Some(e));
    }

    #[test]
    fn stall_word_unpacks_to_none() {
        assert_eq!(SparseElement::unpack(STALL_WORD), None);
        assert!(SparseElement::is_stall(0));
        assert!(!SparseElement::is_stall(1));
    }

    #[test]
    fn negative_zero_value_is_distinguishable_from_stall() {
        let e = SparseElement::private(-0.0, 0, 0);
        assert_ne!(e.pack(), STALL_WORD);
        assert_eq!(
            SparseElement::unpack(e.pack()).unwrap().value.to_bits(),
            (-0.0f32).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "reserved for stalls")]
    fn positive_zero_value_is_rejected() {
        let _ = SparseElement::private(0.0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds 15 bits")]
    fn row_overflow_is_rejected() {
        let _ = SparseElement::private(1.0, 1 << 15, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds 13 bits")]
    fn col_overflow_is_rejected() {
        let _ = SparseElement::private(1.0, 0, 1 << 13);
    }

    #[test]
    #[should_panic(expected = "exceeds 3 bits")]
    fn pe_src_overflow_is_rejected() {
        let _ = SparseElement::migrated(1.0, 0, 8, 0);
    }

    #[test]
    fn private_and_migrated_constructors_set_flags() {
        let p = SparseElement::private(2.0, 3, 4);
        assert!(p.pvt);
        assert_eq!(p.pe_src, 0);
        let m = SparseElement::migrated(2.0, 3, 6, 4);
        assert!(!m.pvt);
        assert_eq!(m.pe_src, 6);
    }

    #[test]
    fn max_fields_round_trip_for_a_migrated_element() {
        // Every metadata field saturated with pvt = 0: row 32767, PE_src 7,
        // col 8191 — the word's metadata half is all-ones except bit 16.
        let e = SparseElement {
            value: -2.5,
            local_row: (MAX_LOCAL_ROWS - 1) as u16,
            pvt: false,
            pe_src: 7,
            local_col: (WINDOW - 1) as u16,
        };
        let word = e.pack();
        assert_eq!(word & 0xFFFF_FFFF, 0xFFFE_FFFF);
        assert_eq!(SparseElement::unpack(word), Some(e));
    }

    #[test]
    fn pvt_zero_with_max_pe_src_keeps_its_tags() {
        let e = SparseElement::migrated(1.0, 0, 7, 0);
        let back = SparseElement::unpack(e.pack()).unwrap();
        assert!(!back.pvt);
        assert_eq!(back.pe_src, 7);
    }

    #[test]
    fn metadata_only_words_are_not_stalls() {
        // A word whose value bits are zero but whose metadata is not (a
        // corrupted +0.0 payload) must NOT read back as a stall — only the
        // all-zero word is reserved. This is why the schedule-level checker
        // (rule S001) rejects +0.0 values before packing.
        let word = 1u64; // col = 1, value bits = 0
        assert!(!SparseElement::is_stall(word));
        let back = SparseElement::unpack(word).unwrap();
        assert_eq!(back.value.to_bits(), 0);
        assert_eq!(back.local_col, 1);
    }

    #[test]
    fn subnormal_values_round_trip_bit_exactly() {
        let e = SparseElement::private(f32::from_bits(1), 7, 3);
        let back = SparseElement::unpack(e.pack()).unwrap();
        assert_eq!(back.value.to_bits(), 1);
    }

    #[test]
    fn distinct_fields_map_to_distinct_words() {
        let base = SparseElement::private(1.0, 5, 9);
        let words = [
            base.pack(),
            SparseElement::private(1.0, 6, 9).pack(),
            SparseElement::private(1.0, 5, 10).pack(),
            SparseElement::migrated(1.0, 5, 1, 9).pack(),
            SparseElement::private(1.5, 5, 9).pack(),
        ];
        for i in 0..words.len() {
            for j in i + 1..words.len() {
                assert_ne!(words[i], words[j], "fields {i} and {j} collide");
            }
        }
    }
}
