//! Incremental re-planning: splice a [`MatrixDelta`]'s dirty windows into an
//! existing [`SpmvPlan`] instead of rescheduling the whole matrix.
//!
//! The accelerator's plan structure is a function of the matrix *shape*
//! alone: row-partition passes cover `max_rows_per_pe · total_PEs` rows each
//! and column windows cover `W` columns each, regardless of where the
//! non-zeros sit. A delta never changes the shape (see
//! [`MatrixDelta`]), so applying one leaves the pass/window skeleton intact
//! — only windows whose `(row span, column span)` intersect the delta's
//! footprint can schedule differently. [`SpmvPlan::apply_delta`] computes
//! that dirty set, re-schedules exactly those windows, and splices the
//! results in place, updating the per-pass and plan-level non-zero counts
//! and the cache fingerprint.
//!
//! For deterministic schedulers (all three in-tree schedulers are) the
//! spliced plan is **bit-identical** to a from-scratch plan of the updated
//! matrix; `crates/conformance` proves this across the whole corpus.

use crate::plan::{matrix_fingerprint, PlanWindow, SpmvPlan};
use crate::schedule::Scheduler;
use chason_sparse::{CooMatrix, MatrixDelta, Triplet};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Error type for incremental re-planning.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplanError {
    /// The updated matrix or delta shape disagrees with the plan's.
    ShapeMismatch(String),
    /// The updated matrix's non-zero count is inconsistent with
    /// `plan.nnz + delta.nnz_change()` — the caller paired a delta with the
    /// wrong matrix.
    NnzMismatch {
        /// Non-zeros the spliced plan would record.
        expected: usize,
        /// Non-zeros the supplied updated matrix actually holds.
        got: usize,
    },
    /// The plan's pass/window skeleton cannot place a delta coordinate
    /// (corrupt or hand-built plan).
    Structure(String),
    /// The updated matrix disagrees with the delta at a coordinate the
    /// delta claims to change — the caller paired a delta with the wrong
    /// matrix.
    InconsistentUpdate {
        /// Row of the disagreeing coordinate.
        row: usize,
        /// Column of the disagreeing coordinate.
        col: usize,
    },
}

impl fmt::Display for ReplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplanError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            ReplanError::NnzMismatch { expected, got } => write!(
                f,
                "updated matrix has {got} non-zeros but plan + delta imply {expected}"
            ),
            ReplanError::Structure(msg) => write!(f, "plan structure error: {msg}"),
            ReplanError::InconsistentUpdate { row, col } => write!(
                f,
                "updated matrix disagrees with the delta at ({row}, {col})"
            ),
        }
    }
}

impl Error for ReplanError {}

/// What an incremental re-plan did, for telemetry and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplanReport {
    /// Column windows in the plan (all passes).
    pub windows_total: usize,
    /// Windows the delta dirtied and that were re-scheduled.
    pub windows_replanned: usize,
    /// Row-partition passes containing at least one dirty window.
    pub passes_touched: usize,
    /// Plan non-zeros before the splice.
    pub nnz_before: usize,
    /// Plan non-zeros after the splice.
    pub nnz_after: usize,
}

impl ReplanReport {
    /// Fraction of windows that had to be re-scheduled, in `[0, 1]`.
    pub fn replanned_fraction(&self) -> f64 {
        if self.windows_total == 0 {
            0.0
        } else {
            self.windows_replanned as f64 / self.windows_total as f64
        }
    }
}

/// Locates the pass index covering source row `r`, relying on passes being
/// contiguous and sorted (which `plan_pass` construction guarantees).
fn pass_of_row(plan: &SpmvPlan, r: usize) -> Result<usize, ReplanError> {
    let idx = plan.passes.partition_point(|p| p.row_end <= r);
    match plan.passes.get(idx) {
        Some(p) if p.row_start <= r && r < p.row_end => Ok(idx),
        _ => Err(ReplanError::Structure(format!(
            "no pass covers row {r} (plan has {} passes over {} rows)",
            plan.passes.len(),
            plan.rows
        ))),
    }
}

/// Computes the set of `(pass index, window index)` pairs whose schedules a
/// delta can change: every window whose row span and column span contain at
/// least one delta coordinate.
///
/// # Errors
///
/// [`ReplanError::ShapeMismatch`] when the delta targets a different shape
/// and [`ReplanError::Structure`] when the plan's skeleton cannot place a
/// coordinate (zero window width, missing pass or window).
pub fn dirty_windows(
    plan: &SpmvPlan,
    delta: &MatrixDelta,
) -> Result<BTreeSet<(usize, usize)>, ReplanError> {
    if delta.rows() != plan.rows || delta.cols() != plan.cols {
        return Err(ReplanError::ShapeMismatch(format!(
            "delta targets a {}x{} matrix but the plan covers {}x{}",
            delta.rows(),
            delta.cols(),
            plan.rows,
            plan.cols
        )));
    }
    let mut dirty = BTreeSet::new();
    for (r, c) in delta.coords() {
        if plan.window == 0 {
            return Err(ReplanError::Structure(
                "plan has zero window width but a non-empty delta".to_string(),
            ));
        }
        let pi = pass_of_row(plan, r)?;
        let wi = c / plan.window;
        if wi >= plan.passes[pi].windows.len() {
            return Err(ReplanError::Structure(format!(
                "column {c} maps to window {wi} but pass {pi} has only {} windows",
                plan.passes[pi].windows.len()
            )));
        }
        dirty.insert((pi, wi));
    }
    Ok(dirty)
}

impl SpmvPlan {
    /// Splices `delta` into the plan by re-scheduling only the dirty
    /// windows, leaving every untouched window's schedule byte-for-byte as
    /// it was.
    ///
    /// `updated` must be the result of applying `delta` to the plan's
    /// source matrix, and `scheduler` must be the same scheduler (and the
    /// plan's own [`SchedulerConfig`](crate::schedule::SchedulerConfig))
    /// the plan was built with — under those conditions, and a
    /// deterministic scheduler, the spliced plan equals a from-scratch plan
    /// of `updated` exactly. The plan's cache fingerprint is advanced to
    /// `updated`'s, so version-aware caches treat the result as a plan for
    /// the new matrix content.
    ///
    /// On error the plan is left unchanged.
    ///
    /// # Errors
    ///
    /// * [`ReplanError::ShapeMismatch`] — `updated` or `delta` disagrees
    ///   with the plan's dimensions;
    /// * [`ReplanError::NnzMismatch`] — `updated` is not `plan matrix +
    ///   delta` (wrong non-zero count);
    /// * [`ReplanError::Structure`] — the plan skeleton cannot place a
    ///   delta coordinate.
    pub fn apply_delta<S: Scheduler>(
        &mut self,
        updated: &CooMatrix,
        delta: &MatrixDelta,
        scheduler: &S,
    ) -> Result<ReplanReport, ReplanError> {
        if updated.rows() != self.rows || updated.cols() != self.cols {
            return Err(ReplanError::ShapeMismatch(format!(
                "updated matrix is {}x{} but the plan covers {}x{}",
                updated.rows(),
                updated.cols(),
                self.rows,
                self.cols
            )));
        }
        let expected = (self.nnz as isize + delta.nnz_change()).max(0) as usize;
        if updated.nnz() != expected {
            return Err(ReplanError::NnzMismatch {
                expected,
                got: updated.nnz(),
            });
        }
        // Spot-check `updated` really is `plan matrix + delta`: every
        // written value must be present bit-for-bit, every deletion absent.
        let lookup = |r: usize, c: usize| {
            updated
                .triplets()
                .binary_search_by_key(&(r, c), |&(tr, tc, _)| (tr, tc))
                .ok()
                .map(|i| updated.triplets()[i].2)
        };
        for (r, c, v) in delta.inserts().into_iter().chain(delta.revalues()) {
            if lookup(r, c).map(f32::to_bits) != Some(v.to_bits()) {
                return Err(ReplanError::InconsistentUpdate { row: r, col: c });
            }
        }
        for (r, c) in delta.deletes() {
            if lookup(r, c).is_some() {
                return Err(ReplanError::InconsistentUpdate { row: r, col: c });
            }
        }
        let dirty = dirty_windows(self, delta)?;
        let report = ReplanReport {
            windows_total: self.window_count(),
            windows_replanned: dirty.len(),
            passes_touched: dirty
                .iter()
                .map(|&(pi, _)| pi)
                .collect::<BTreeSet<_>>()
                .len(),
            nnz_before: self.nnz,
            nnz_after: updated.nnz(),
        };
        if dirty.is_empty() {
            return Ok(report);
        }

        // One scan of the updated matrix buckets the entries of every dirty
        // window, rebased exactly as `partition_rows_capacity` +
        // `partition_columns` would rebase them.
        let mut buckets: BTreeMap<(usize, usize), Vec<Triplet>> =
            dirty.iter().map(|&k| (k, Vec::new())).collect();
        for &(r, c, v) in updated.iter() {
            let pi = self.passes.partition_point(|p| p.row_end <= r);
            let wi = c / self.window;
            if let Some(bucket) = buckets.get_mut(&(pi, wi)) {
                let pass = &self.passes[pi];
                let window = &pass.windows[wi];
                bucket.push((r - pass.row_start, c - window.col_start, v));
            }
        }

        for ((pi, wi), triplets) in buckets {
            let pass = &self.passes[pi];
            let window = &pass.windows[wi];
            let wrows = pass.row_end - pass.row_start;
            let wcols = window.col_end - window.col_start;
            // The bucket scan rebased every entry into the window's range.
            #[allow(clippy::expect_used)] // xtask: invariant documented above
            let wmatrix = CooMatrix::from_triplets(wrows, wcols, triplets)
                .expect("window triplets are in range by construction");
            let schedule = scheduler.schedule(&wmatrix, &self.key.config);
            let spliced = PlanWindow {
                col_start: window.col_start,
                col_end: window.col_end,
                nnz: wmatrix.nnz(),
                stalls: schedule.stalls(),
                stream_cycles: schedule.stream_cycles(),
                schedule,
            };
            self.passes[pi].windows[wi] = spliced;
        }
        for pass in &mut self.passes {
            pass.nnz = pass.windows.iter().map(|w| w.nnz).sum();
        }
        self.nnz = updated.nnz();
        self.key.fingerprint = matrix_fingerprint(updated);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PassPlan, PlanKey};
    use crate::schedule::{Crhcs, PeAware, SchedulerConfig};
    use crate::window::{partition_columns, partition_rows_capacity};
    use chason_sparse::generators::{power_law, uniform_random};

    /// Builds a plan with the same recipe the engines use (single pass when
    /// `rows_per_pass` covers the matrix, row partitions otherwise).
    fn build_plan<S: Scheduler>(
        matrix: &CooMatrix,
        scheduler: &S,
        config: SchedulerConfig,
        window: usize,
        rows_per_pass: usize,
    ) -> SpmvPlan {
        let total_pes = config.total_pes();
        let max_rows_per_pe = rows_per_pass.div_ceil(total_pes.max(1)).max(1);
        let plan_one = |m: &CooMatrix, row_start: usize| PassPlan {
            row_start,
            row_end: row_start + m.rows(),
            nnz: m.nnz(),
            windows: partition_columns(m, window)
                .iter()
                .map(|w| {
                    let schedule = scheduler.schedule(&w.matrix, &config);
                    PlanWindow {
                        col_start: w.col_start,
                        col_end: w.col_end,
                        nnz: w.matrix.nnz(),
                        stalls: schedule.stalls(),
                        stream_cycles: schedule.stream_cycles(),
                        schedule,
                    }
                })
                .collect(),
        };
        let passes = if matrix.rows() <= max_rows_per_pe * total_pes {
            vec![plan_one(matrix, 0)]
        } else {
            partition_rows_capacity(matrix, max_rows_per_pe, total_pes)
                .iter()
                .map(|p| plan_one(&p.matrix, p.row_start))
                .collect()
        };
        SpmvPlan {
            key: PlanKey::new(matrix, config),
            engine: "test".to_string(),
            window,
            rows: matrix.rows(),
            cols: matrix.cols(),
            nnz: matrix.nnz(),
            passes,
        }
    }

    fn sample_delta(matrix: &CooMatrix, seed: usize) -> MatrixDelta {
        let mut delta = MatrixDelta::for_matrix(matrix);
        let t = matrix.triplets();
        // Revalue one entry, delete another, insert at a vacant coordinate.
        let (r, c, _) = t[seed % t.len()];
        delta.push_revalue(r, c, 7.25).unwrap();
        let (r, c, _) = t[(seed + 3) % t.len()];
        if delta.push_delete(r, c).is_err() {
            // fell on the revalued coordinate; pick the next entry instead
            let (r, c, _) = t[(seed + 4) % t.len()];
            delta.push_delete(r, c).unwrap();
        }
        'outer: for r in 0..matrix.rows() {
            for c in 0..matrix.cols() {
                if !t.iter().any(|&(tr, tc, _)| (tr, tc) == (r, c)) {
                    delta.push_insert(r, c, -1.5).unwrap();
                    break 'outer;
                }
            }
        }
        delta
    }

    #[test]
    fn spliced_plan_is_bit_identical_to_scratch() {
        let config = SchedulerConfig::toy(2, 2, 4);
        for window in [16, 64] {
            let m = uniform_random(48, 96, 400, 11);
            let scheduler = Crhcs::new();
            let mut plan = build_plan(&m, &scheduler, config, window, m.rows());
            let delta = sample_delta(&m, 1);
            let updated = delta.apply(&m).unwrap();
            let report = plan.apply_delta(&updated, &delta, &scheduler).unwrap();
            let scratch = build_plan(&updated, &scheduler, config, window, m.rows());
            assert_eq!(plan, scratch, "splice diverged at window width {window}");
            assert!(report.windows_replanned >= 1);
            assert!(report.windows_replanned <= report.windows_total);
        }
    }

    #[test]
    fn splice_matches_scratch_across_row_partition_passes() {
        let config = SchedulerConfig::toy(2, 2, 4);
        let m = power_law(90, 60, 500, 1.8, 23);
        let scheduler = PeAware::new();
        // Force 3 passes of 32 rows each (4 PEs x 8 rows per PE).
        let mut plan = build_plan(&m, &scheduler, config, 25, 32);
        assert_eq!(plan.passes.len(), 3);
        let delta = sample_delta(&m, 7);
        let updated = delta.apply(&m).unwrap();
        let report = plan.apply_delta(&updated, &delta, &scheduler).unwrap();
        let scratch = build_plan(&updated, &scheduler, config, 25, 32);
        assert_eq!(plan, scratch);
        assert_eq!(plan.nnz, updated.nnz());
        assert_eq!(
            plan.passes.iter().map(|p| p.nnz).sum::<usize>(),
            updated.nnz()
        );
        assert!(report.passes_touched >= 1);
        assert_eq!(plan.key.fingerprint, matrix_fingerprint(&updated));
    }

    #[test]
    fn untouched_windows_are_not_rescheduled() {
        let config = SchedulerConfig::toy(2, 2, 4);
        let m = uniform_random(32, 64, 250, 5);
        let scheduler = Crhcs::new();
        let mut plan = build_plan(&m, &scheduler, config, 16, m.rows());
        assert_eq!(plan.window_count(), 4);
        // A delta confined to columns [0, 16) dirties only window 0.
        let (r, c, _) = *m
            .triplets()
            .iter()
            .find(|&&(_, c, _)| c < 16)
            .expect("matrix has entries in the first window");
        let mut delta = MatrixDelta::for_matrix(&m);
        delta.push_revalue(r, c, 3.75).unwrap();
        let dirty = dirty_windows(&plan, &delta).unwrap();
        assert_eq!(dirty, BTreeSet::from([(0, 0)]));
        let before: Vec<_> = plan.passes[0].windows[1..].to_vec();
        let updated = delta.apply(&m).unwrap();
        let report = plan.apply_delta(&updated, &delta, &scheduler).unwrap();
        assert_eq!(report.windows_replanned, 1);
        assert_eq!(&plan.passes[0].windows[1..], &before[..]);
        assert!((report.replanned_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_delta_only_refreshes_bookkeeping() {
        let config = SchedulerConfig::toy(2, 2, 4);
        let m = uniform_random(32, 32, 150, 3);
        let scheduler = Crhcs::new();
        let mut plan = build_plan(&m, &scheduler, config, 16, m.rows());
        let before = plan.clone();
        let delta = MatrixDelta::for_matrix(&m);
        let report = plan.apply_delta(&m, &delta, &scheduler).unwrap();
        assert_eq!(report.windows_replanned, 0);
        assert_eq!(report.replanned_fraction(), 0.0);
        assert_eq!(plan, before);
    }

    #[test]
    fn mismatched_inputs_are_rejected_and_plan_unchanged() {
        let config = SchedulerConfig::toy(2, 2, 4);
        let m = uniform_random(32, 32, 150, 3);
        let scheduler = Crhcs::new();
        let mut plan = build_plan(&m, &scheduler, config, 16, m.rows());
        let before = plan.clone();

        let wrong_shape = MatrixDelta::new(33, 32);
        assert!(matches!(
            plan.apply_delta(&m, &wrong_shape, &scheduler),
            Err(ReplanError::ShapeMismatch(_))
        ));

        // Delta claims an insert but `updated` is the unchanged matrix.
        let mut delta = MatrixDelta::for_matrix(&m);
        let vacant = (0..m.cols())
            .find(|&c| !m.triplets().iter().any(|&(r, tc, _)| r == 0 && tc == c))
            .expect("row 0 has a vacant column");
        delta.push_insert(0, vacant, 1.0).unwrap();
        assert!(matches!(
            plan.apply_delta(&m, &delta, &scheduler),
            Err(ReplanError::NnzMismatch { .. })
        ));
        assert_eq!(plan, before);
    }

    #[test]
    fn replan_error_display_is_specific() {
        let err = ReplanError::NnzMismatch {
            expected: 10,
            got: 9,
        };
        let msg = err.to_string();
        assert!(msg.contains("10") && msg.contains("9"));
        assert!(ReplanError::ShapeMismatch("x".into())
            .to_string()
            .starts_with("shape mismatch"));
    }
}
