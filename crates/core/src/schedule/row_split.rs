use super::{
    partition_rows, timelines_to_grid, ChannelSchedule, FlatLaneRows, LaneScratch, NzSlot, PeAware,
    ScheduledMatrix, Scheduler, SchedulerConfig,
};
use chason_sparse::CooMatrix;

/// Hybrid row-split scheduling — the HiSpMV-style alternative (§2.1).
///
/// HiSpMV attacks imbalance *within* a channel: a row whose population
/// dwarfs its siblings is split into `P` interleaved sub-rows, one per lane
/// of the owning PEG, and a dedicated intra-PEG adder tree recombines the
/// sub-row partial sums. This breaks the RAW chain (each lane sees every
/// `P`-th value of the row, so consecutive same-row values on one lane are
/// naturally `P` apart) without any cross-channel traffic.
///
/// Two properties matter for the comparison with CrHCS:
///
/// * it fixes *intra-channel* imbalance (a hub row no longer serializes on
///   one PE), but the hub channel as a whole still holds all of the hub's
///   work — *inter-channel* imbalance remains, which is exactly the gap
///   CrHCS closes;
/// * it needs different hardware (the sub-row adder tree). The Chasoň/
///   Serpens engines in `chason-sim` do not implement that tree, so this
///   scheduler is a **metrics-level baseline**: its schedules satisfy the
///   conservation and RAW invariants and are compared via Eq. 4, but they
///   are not executable on the simulated datapaths (the split values sit in
///   lanes that do not own their rows).
#[derive(Debug, Clone, Copy)]
pub struct HybridRowSplit {
    /// Rows with at least this many non-zeros are split across the PEG.
    pub split_threshold: usize,
}

impl HybridRowSplit {
    /// Creates the scheduler with HiSpMV's heuristic threshold: split a row
    /// when it alone exceeds `dependency_distance` times the lane average.
    pub fn new(split_threshold: usize) -> Self {
        HybridRowSplit { split_threshold }
    }

    /// Threshold tuned for a matrix: split a row when its serialized RAW
    /// chain (`h × D` cycles) would exceed roughly twice the lane's mean
    /// load — i.e. when the row alone would set the channel's critical
    /// path.
    pub fn auto(matrix: &CooMatrix, config: &SchedulerConfig) -> Self {
        let mean_per_pe = matrix.nnz() / config.total_pes().max(1);
        let chain_dominates = (2 * mean_per_pe) / config.dependency_distance.max(1);
        HybridRowSplit {
            split_threshold: chain_dominates.max(16),
        }
    }
}

impl Default for HybridRowSplit {
    fn default() -> Self {
        HybridRowSplit {
            split_threshold: 256,
        }
    }
}

impl Scheduler for HybridRowSplit {
    fn name(&self) -> &'static str {
        "hybrid row-split (hispmv)"
    }

    fn schedule(&self, matrix: &CooMatrix, config: &SchedulerConfig) -> ScheduledMatrix {
        assert!(config.is_valid(), "invalid scheduler configuration");
        let by_pe = partition_rows(matrix, config);
        let d = config.dependency_distance;
        let pes = config.pes_per_channel;
        let mut scratch = LaneScratch::default();
        let mut sub_starts = vec![0usize; pes];
        let mut channels = Vec::with_capacity(config.channels);
        for (ch_idx, lanes) in by_pe.iter().enumerate() {
            // Pull heavy rows out of their home lane and deal their values
            // across all lanes of the PEG round-robin: lane `l` receives
            // the sub-row holding every `P`-th value. Each sub-row then
            // joins the lane's ordinary round-robin schedule, so sub-rows
            // of different hubs interleave and hide each other's RAW gaps
            // exactly like independent rows do.
            let mut lane_rows: Vec<FlatLaneRows> = vec![FlatLaneRows::default(); pes];
            for (lane, rows) in lanes.iter().enumerate() {
                for (idx, &(row, _, _)) in rows.spans.iter().enumerate() {
                    let entries = rows.row_entries(idx);
                    if entries.len() >= self.split_threshold.max(2) {
                        // Rows are dealt one at a time, so each target
                        // arena receives its sub-row's entries
                        // consecutively; remembering the arena lengths
                        // beforehand delimits the new spans without any
                        // per-sub-row buffer.
                        for (target, start) in sub_starts.iter_mut().enumerate() {
                            *start = lane_rows[target].entries.len();
                        }
                        for (k, &entry) in entries.iter().enumerate() {
                            lane_rows[(lane + k) % pes].entries.push(entry);
                        }
                        for (target, arena) in lane_rows.iter_mut().enumerate() {
                            let end = arena.entries.len();
                            if end > sub_starts[target] {
                                arena.spans.push((row, sub_starts[target], end));
                            }
                        }
                    } else {
                        for &(col, value) in entries {
                            lane_rows[lane].push_entry(row, col, value);
                        }
                    }
                }
            }
            let lane_timelines: Vec<Vec<Option<NzSlot>>> = lane_rows
                .iter()
                .map(|rows| PeAware::schedule_lane(rows, d, &mut scratch))
                .collect();
            channels.push(ChannelSchedule {
                channel: ch_idx,
                grid: timelines_to_grid(&lane_timelines),
            });
        }
        ScheduledMatrix {
            config: *config,
            channels,
            rows: matrix.rows(),
            cols: matrix.cols(),
            nnz: matrix.nnz(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Crhcs;
    use chason_sparse::generators::{arrow_with_nnz, uniform_random};

    #[test]
    fn conserves_and_respects_raw() {
        let config = SchedulerConfig::toy(2, 4, 6);
        let m = arrow_with_nnz(256, 3, 2, 3_000, 7);
        let s = HybridRowSplit::auto(&m, &config).schedule(&m, &config);
        assert_eq!(s.scheduled_nonzeros(), 3_000);
        s.validate(&m).unwrap();
    }

    #[test]
    fn splitting_breaks_the_intra_channel_chain() {
        // One hub row on one PE: PE-aware serializes it, splitting spreads it.
        let config = SchedulerConfig::toy(2, 4, 10);
        let t: Vec<_> = (0..400).map(|k| (0usize, k, 1.0 + k as f32)).collect();
        let m = CooMatrix::from_triplets(8, 400, t).unwrap();
        let pe_aware = PeAware::new().schedule(&m, &config);
        let split = HybridRowSplit::new(16).schedule(&m, &config);
        split.validate(&m).unwrap();
        assert!(
            split.stream_cycles() < pe_aware.stream_cycles() / 2,
            "split {} vs pe-aware {}",
            split.stream_cycles(),
            pe_aware.stream_cycles()
        );
    }

    #[test]
    fn inter_channel_imbalance_still_needs_migration() {
        // All hubs on one channel: splitting helps within the channel, but
        // CrHCS (which also rebalances across channels) does better.
        let config = SchedulerConfig::paper();
        let m = arrow_with_nnz(2048, 3, 8, 40_000, 3);
        let split = HybridRowSplit::auto(&m, &config).schedule(&m, &config);
        let crhcs = Crhcs::new().schedule(&m, &config);
        split.validate(&m).unwrap();
        assert!(
            crhcs.underutilization() < split.underutilization(),
            "crhcs {} should beat row-splitting {} on cross-channel imbalance",
            crhcs.underutilization(),
            split.underutilization()
        );
    }

    #[test]
    fn balanced_matrices_are_untouched() {
        let config = SchedulerConfig::toy(2, 4, 6);
        let m = uniform_random(256, 256, 2_000, 5);
        let threshold = HybridRowSplit::auto(&m, &config).split_threshold;
        // No row reaches the auto threshold on a uniform matrix...
        let pe_aware = PeAware::new().schedule(&m, &config);
        let split = HybridRowSplit::auto(&m, &config).schedule(&m, &config);
        assert!(threshold > 8);
        // ... so the schedules have identical length.
        assert_eq!(split.stream_cycles(), pe_aware.stream_cycles());
    }
}
