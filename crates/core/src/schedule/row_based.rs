use super::{
    partition_rows, timelines_to_grid, ChannelSchedule, NzSlot, ScheduledMatrix, Scheduler,
    SchedulerConfig,
};
use chason_sparse::CooMatrix;

/// Row-based (in-order) non-zero scheduling — Fig. 2a.
///
/// Each PE processes its assigned rows one after another, emitting each
/// row's non-zeros in order. Because consecutive values of the same row
/// carry a RAW dependency through the `D`-stage accumulator, the PE inserts
/// `D − 1` stalls between them; rows with many entries therefore run the
/// pipeline at `1/D` of its throughput (the paper's example: 0.10 non-zeros
/// per cycle, 90% underutilization).
///
/// This scheduler exists as the historical baseline the OoO schemes improve
/// on; it is exercised by the Fig. 2 experiment binary.
#[derive(Debug, Clone, Copy, Default)]
pub struct RowBased {
    _private: (),
}

impl RowBased {
    /// Creates the scheduler.
    pub fn new() -> Self {
        RowBased { _private: () }
    }
}

impl Scheduler for RowBased {
    fn name(&self) -> &'static str {
        "row-based"
    }

    fn schedule(&self, matrix: &CooMatrix, config: &SchedulerConfig) -> ScheduledMatrix {
        assert!(config.is_valid(), "invalid scheduler configuration");
        let by_pe = partition_rows(matrix, config);
        let d = config.dependency_distance;
        let mut channels = Vec::with_capacity(config.channels);
        for (ch_idx, lanes) in by_pe.iter().enumerate() {
            // Per lane, lay out the slot timeline independently.
            let mut lane_timelines: Vec<Vec<Option<NzSlot>>> = Vec::with_capacity(lanes.len());
            for lane in lanes {
                // Each in-row step costs a value plus D-1 stalls.
                let upper = lane.entries.len() * d;
                let mut timeline: Vec<Option<NzSlot>> = Vec::with_capacity(upper);
                for (idx, &(row, _, _)) in lane.spans.iter().enumerate() {
                    for (i, &(col, value)) in lane.row_entries(idx).iter().enumerate() {
                        if i > 0 {
                            // RAW gap to the previous value of the same row.
                            timeline.extend(std::iter::repeat_n(None, d - 1));
                        }
                        timeline.push(Some(NzSlot::private(value, row, col)));
                    }
                }
                lane_timelines.push(timeline);
            }
            channels.push(ChannelSchedule {
                channel: ch_idx,
                grid: timelines_to_grid(&lane_timelines),
            });
        }
        ScheduledMatrix {
            config: *config,
            channels,
            rows: matrix.rows(),
            cols: matrix.cols(),
            nnz: matrix.nnz(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chason_sparse::CooMatrix;

    /// Fig. 2a: one PE owning a 3-entry row runs at ~0.1 nz/cycle with D=10.
    #[test]
    fn dense_row_leaves_d_minus_one_stalls() {
        let config = SchedulerConfig::toy(1, 1, 10);
        let m =
            CooMatrix::from_triplets(1, 3, vec![(0, 0, 1.0), (0, 1, 2.0), (0, 2, 3.0)]).unwrap();
        let s = RowBased::new().schedule(&m, &config);
        // 3 values with two 9-stall gaps: 21 cycles.
        assert_eq!(s.stream_cycles(), 21);
        assert_eq!(s.stalls(), 18);
        s.validate(&m).unwrap();
    }

    #[test]
    fn independent_rows_on_same_pe_still_serialize() {
        // Rows 0 and 4 both map to PE 0 of a 1-channel/4-PE config.
        let config = SchedulerConfig::toy(1, 4, 10);
        let m =
            CooMatrix::from_triplets(8, 2, vec![(0, 0, 1.0), (0, 1, 2.0), (4, 0, 3.0)]).unwrap();
        let s = RowBased::new().schedule(&m, &config);
        // Row 0: cycles 0 and 10; row 4 immediately after at cycle 11.
        let lane0: Vec<usize> = s.channels[0]
            .grid
            .iter()
            .enumerate()
            .filter_map(|(c, slots)| slots[0].map(|_| c))
            .collect();
        assert_eq!(lane0, vec![0, 10, 11]);
        s.validate(&m).unwrap();
    }

    #[test]
    fn singleton_rows_run_back_to_back() {
        // Every row has one value: no RAW gaps at all.
        let config = SchedulerConfig::toy(1, 2, 10);
        let m = CooMatrix::from_triplets(
            6,
            1,
            vec![(0, 0, 1.0), (2, 0, 2.0), (4, 0, 3.0), (1, 0, 4.0)],
        )
        .unwrap();
        let s = RowBased::new().schedule(&m, &config);
        // Lane 0 owns rows 0,2,4 (3 values), lane 1 owns row 1 (1 value).
        assert_eq!(s.stream_cycles(), 3);
        s.validate(&m).unwrap();
    }

    #[test]
    fn empty_matrix_schedules_to_nothing() {
        let config = SchedulerConfig::toy(2, 2, 10);
        let m = CooMatrix::new(8, 8);
        let s = RowBased::new().schedule(&m, &config);
        assert_eq!(s.stream_cycles(), 0);
        assert_eq!(s.underutilization(), 0.0);
        s.validate(&m).unwrap();
    }

    #[test]
    fn virtual_equalization_counts_padding_stalls() {
        let config = SchedulerConfig::toy(2, 1, 4);
        // Channel 0 (row 0) gets 3 values; channel 1 (row 1) gets 1.
        let m = CooMatrix::from_triplets(
            2,
            3,
            vec![(0, 0, 1.0), (0, 1, 2.0), (0, 2, 3.0), (1, 0, 4.0)],
        )
        .unwrap();
        let s = RowBased::new().schedule(&m, &config);
        // Channel 0's RAW chain: values at cycles 0, 4, 8 -> 9 cycles.
        assert_eq!(s.stream_cycles(), 9);
        // Stalls include channel 1's virtual padding: (9-3) + (9-1) = 14.
        assert_eq!(s.stalls(), 14);
        // Padded data lists materialize the synchronized-finish rule.
        let lists = s.data_lists_padded();
        assert_eq!(lists[0].len(), lists[1].len());
        s.validate(&m).unwrap();
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(RowBased::new().name(), "row-based");
    }
}
