//! Non-zero schedulers and the shared schedule representation.
//!
//! A schedule is a per-channel grid of *slots*: `grid[cycle][pe]` holds
//! either a scheduled non-zero ([`NzSlot`]) or a stall (`None`). One cycle of
//! a channel corresponds to one 512-bit HBM beat delivering
//! `pes_per_channel` elements to the channel's PEG.

mod crhcs;
mod pe_aware;
mod row_based;
mod row_split;

pub use crhcs::{Crhcs, MigrationReport};
pub use pe_aware::PeAware;
pub use row_based::RowBased;
pub use row_split::HybridRowSplit;

use crate::diag::{Location, RuleId, ScheduleError};
use crate::element::{self, SparseElement};
use chason_sparse::CooMatrix;
use serde::{Deserialize, Serialize};

/// Architectural parameters the schedulers target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// HBM channels carrying sparse-matrix data (16 in the paper).
    pub channels: usize,
    /// PEs per channel / PEG (8 in the paper — one per 64-bit lane of the
    /// 512-bit port).
    pub pes_per_channel: usize,
    /// RAW dependency distance in cycles: the FP accumulator depth
    /// (10 on the Alveo U55c, §2.2).
    pub dependency_distance: usize,
    /// How many migration candidates CrHCS examines per stall slot before
    /// giving up on it (bounds preprocessing cost; §3.3 reports the search
    /// practically never fails).
    pub migration_scan_limit: usize,
    /// How many ring neighbours CrHCS may migrate from (§3.1 and §6.1).
    ///
    /// The paper deploys 1 (the immediate next channel) because each extra
    /// hop costs another set of `URAM_sh` banks per PE; §6.1 projects that
    /// 2–3 hops would reduce the residual underutilization further on a
    /// larger FPGA. Values above 1 also require widening the wire format's
    /// metadata (the 3-bit `PE_src` tag must grow a hop field), which this
    /// model accounts for in the resource estimate, not the 64-bit codec.
    pub migration_hops: usize,
}

impl SchedulerConfig {
    /// The paper's configuration: 16 channels × 8 PEs, distance 10.
    pub fn paper() -> Self {
        SchedulerConfig {
            channels: 16,
            pes_per_channel: 8,
            dependency_distance: 10,
            migration_scan_limit: 256,
            migration_hops: 1,
        }
    }

    /// A reduced configuration handy for unit tests and worked examples
    /// (Fig. 2/4/5 use 4 PEs per channel).
    pub fn toy(channels: usize, pes_per_channel: usize, dependency_distance: usize) -> Self {
        SchedulerConfig {
            channels,
            pes_per_channel,
            dependency_distance,
            migration_scan_limit: 256,
            migration_hops: 1,
        }
    }

    /// Total PEs across all channels.
    pub fn total_pes(&self) -> usize {
        self.channels * self.pes_per_channel
    }

    /// Global PE index a row maps to (Eq. 1: `PE_id = row_id % TotalPEs`).
    pub fn pe_for_row(&self, row: usize) -> usize {
        row % self.total_pes()
    }

    /// Channel a row maps to (consecutive PEs are grouped into PEGs).
    pub fn channel_for_row(&self, row: usize) -> usize {
        self.pe_for_row(row) / self.pes_per_channel
    }

    /// PE index *within its channel* a row maps to.
    pub fn lane_for_row(&self, row: usize) -> usize {
        self.pe_for_row(row) % self.pes_per_channel
    }

    /// Per-PE URAM address of a row (the 15-bit `row` field of §3.2).
    pub fn local_row(&self, row: usize) -> usize {
        row / self.total_pes()
    }

    /// Validates the configuration against the wire format's bit budgets.
    pub fn is_valid(&self) -> bool {
        self.channels > 0
            && self.pes_per_channel > 0
            && self.pes_per_channel <= (1 << element::PE_SRC_BITS)
            && self.dependency_distance > 0
            && self.migration_hops >= 1
            && self.migration_hops < self.channels.max(2)
    }

    /// Ring distance from a migrated element's home channel to the channel
    /// that streams it (`0` for private elements).
    pub fn hop_for(&self, streaming_channel: usize, home_channel: usize) -> usize {
        (home_channel + self.channels - streaming_channel) % self.channels
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig::paper()
    }
}

/// One scheduled non-zero occupying a slot of a channel's data list.
///
/// `row` and `col` are *global* matrix coordinates; the wire format's local
/// encodings are derived when packing (see [`ChannelSchedule::data_list`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NzSlot {
    /// The non-zero value.
    pub value: f32,
    /// Global row index.
    pub row: usize,
    /// Global column index.
    pub col: usize,
    /// `true` if the element is streamed by the channel that owns its row.
    pub pvt: bool,
    /// For migrated elements: the lane the element was originally scheduled
    /// for in its home channel. 0 for private elements.
    pub pe_src: u8,
}

impl NzSlot {
    /// Creates a private slot for a row owned by the streaming channel.
    pub fn private(value: f32, row: usize, col: usize) -> Self {
        NzSlot {
            value,
            row,
            col,
            pvt: true,
            pe_src: 0,
        }
    }
}

/// The scheduled data list of one HBM channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelSchedule {
    /// Channel index.
    pub channel: usize,
    /// `grid[cycle][pe]`: the slot streamed to PE `pe` at cycle `cycle`.
    pub grid: Vec<Vec<Option<NzSlot>>>,
}

impl ChannelSchedule {
    /// Creates an empty schedule for a channel.
    pub fn new(channel: usize, pes: usize) -> Self {
        let _ = pes;
        ChannelSchedule {
            channel,
            grid: Vec::new(),
        }
    }

    /// Number of scheduled cycles (beats).
    pub fn cycles(&self) -> usize {
        self.grid.len()
    }

    /// Number of stall slots.
    pub fn stalls(&self) -> usize {
        self.grid.iter().flatten().filter(|s| s.is_none()).count()
    }

    /// Number of scheduled non-zeros.
    pub fn nonzeros(&self) -> usize {
        self.grid.iter().flatten().filter(|s| s.is_some()).count()
    }

    /// Stall slots per lane (PE), `lane -> count`.
    pub fn stalls_per_lane(&self, pes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; pes];
        for cycle in &self.grid {
            for (lane, slot) in cycle.iter().enumerate() {
                if slot.is_none() && lane < pes {
                    counts[lane] += 1;
                }
            }
        }
        counts
    }

    /// Removes trailing cycles that contain only stalls.
    pub fn trim_trailing_stalls(&mut self) {
        while self
            .grid
            .last()
            .is_some_and(|cycle| cycle.iter().all(|s| s.is_none()))
        {
            self.grid.pop();
        }
    }

    /// Pads the schedule with all-stall cycles up to `cycles` total.
    pub fn pad_to(&mut self, cycles: usize, pes: usize) {
        while self.grid.len() < cycles {
            self.grid.push(vec![None; pes]);
        }
    }

    /// Packs the schedule into the channel's 64-bit data list (row-major:
    /// cycle 0 lanes 0..P, cycle 1 lanes 0..P, ...), the exact stream the
    /// architecture consumes.
    ///
    /// # Panics
    ///
    /// Panics if a slot's local row or column overflows the wire format —
    /// callers must schedule one [`crate::window`] at a time for matrices
    /// wider than `W = 8192`.
    pub fn data_list(&self, config: &SchedulerConfig) -> Vec<u64> {
        let mut words = Vec::with_capacity(self.grid.len() * config.pes_per_channel);
        for cycle in &self.grid {
            for slot in cycle {
                match slot {
                    None => words.push(element::STALL_WORD),
                    Some(nz) => {
                        let e = SparseElement {
                            value: nz.value,
                            local_row: config.local_row(nz.row) as u16,
                            pvt: nz.pvt,
                            pe_src: nz.pe_src,
                            local_col: nz.col as u16,
                        };
                        words.push(e.pack());
                    }
                }
            }
        }
        words
    }
}

/// A complete schedule: one [`ChannelSchedule`] per channel.
///
/// Channel grids are stored *trimmed*: trailing all-stall cycles are
/// implicit. The synchronized-finish rule of §3.1 — every list padded to
/// the longest channel — is applied **virtually**: [`ScheduledMatrix::stalls`]
/// and the underutilization metrics count the implicit padding, and
/// [`ScheduledMatrix::data_lists_padded`] materializes it for the hardware
/// stream. Keeping the padding virtual matters: a single RAW-chain-bound
/// channel can be orders of magnitude longer than its siblings, and
/// physically padding all 16 grids to match would cost gigabytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledMatrix {
    /// The configuration the schedule was built for.
    pub config: SchedulerConfig,
    /// Per-channel data lists.
    pub channels: Vec<ChannelSchedule>,
    /// Rows of the source matrix.
    pub rows: usize,
    /// Columns of the source matrix.
    pub cols: usize,
    /// Non-zeros of the source matrix.
    pub nnz: usize,
}

impl ScheduledMatrix {
    /// Total stall slots across all channels, *including* the virtual
    /// padding that equalizes every list to the longest channel (§3.1):
    /// `Σ_c (stream_cycles × PEs − nonzeros_c)`.
    pub fn stalls(&self) -> usize {
        let cycles = self.stream_cycles();
        let pes = self.config.pes_per_channel;
        self.channels
            .iter()
            .map(|ch| cycles * pes - ch.nonzeros())
            .sum()
    }

    /// Total scheduled non-zeros across all channels (equals `nnz` for a
    /// conserving scheduler).
    pub fn scheduled_nonzeros(&self) -> usize {
        self.channels.iter().map(ChannelSchedule::nonzeros).sum()
    }

    /// PE underutilization per Eq. 4: `stalls / (nnz + stalls)`, in `[0, 1]`.
    pub fn underutilization(&self) -> f64 {
        let stalls = self.stalls() as f64;
        let nnz = self.scheduled_nonzeros() as f64;
        if stalls + nnz == 0.0 {
            0.0
        } else {
            stalls / (nnz + stalls)
        }
    }

    /// Underutilization of each channel's PEG, including the virtual
    /// padding to the longest channel.
    pub fn per_channel_underutilization(&self) -> Vec<f64> {
        let cycles = self.stream_cycles();
        let pes = self.config.pes_per_channel;
        self.channels
            .iter()
            .map(|ch| {
                let slots = cycles * pes;
                if slots == 0 {
                    0.0
                } else {
                    (slots - ch.nonzeros()) as f64 / slots as f64
                }
            })
            .collect()
    }

    /// Length of the (equalized) channel lists in cycles.
    pub fn stream_cycles(&self) -> usize {
        self.channels
            .iter()
            .map(ChannelSchedule::cycles)
            .max()
            .unwrap_or(0)
    }

    /// Packs every channel into its 64-bit data list, padded with stall
    /// words to the longest channel — the exact streams the hardware
    /// consumes (§3.1's synchronized finish).
    pub fn data_lists_padded(&self) -> Vec<Vec<u64>> {
        let cycles = self.stream_cycles();
        let pes = self.config.pes_per_channel;
        self.channels
            .iter()
            .map(|ch| {
                let mut words = ch.data_list(&self.config);
                words.resize(cycles * pes, crate::element::STALL_WORD);
                words
            })
            .collect()
    }

    /// Physically pads every channel grid to the longest channel (§3.1).
    ///
    /// The metrics already account for this padding virtually; call this
    /// only when downstream code needs uniform physical grids. Beware the
    /// memory cost on RAW-chain-bound schedules.
    pub fn equalize(&mut self) {
        let max = self.stream_cycles();
        let pes = self.config.pes_per_channel;
        for ch in &mut self.channels {
            ch.pad_to(max, pes);
        }
    }

    /// Checks the structural invariants every scheduler must uphold,
    /// returning the first violation as a typed [`ScheduleError`] carrying a
    /// stable [`RuleId`]:
    ///
    /// * **S002** — every source non-zero appears exactly once (duplicates
    ///   are reported even when the two copies live in *different* channels
    ///   with identical values);
    /// * **S003** — two slots of the same row never land in the same
    ///   destination PE within the RAW dependency distance.
    ///
    /// This is the fast first-error check schedulers assert against. The
    /// `chason-verify` crate runs the full rule set (S001–S006) and collects
    /// *all* violations instead of stopping at the first.
    pub fn validate(&self, source: &CooMatrix) -> Result<(), ScheduleError> {
        use std::collections::HashMap;
        // Conservation (S002). Key on (row, col) but remember where the
        // first copy was scheduled, so a duplicate — even one carrying the
        // identical value in another channel's lane — is reported with both
        // locations instead of silently colliding in the map.
        let mut scheduled: HashMap<(usize, usize), (f32, Location)> = HashMap::new();
        for ch in &self.channels {
            for (cycle, slots) in ch.grid.iter().enumerate() {
                for (lane, slot) in slots.iter().enumerate() {
                    let Some(nz) = slot else { continue };
                    let here = Location::slot(ch.channel, cycle, lane);
                    if let Some((prev_value, prev_loc)) =
                        scheduled.insert((nz.row, nz.col), (nz.value, here))
                    {
                        let same = if prev_value == nz.value {
                            " with an identical value"
                        } else {
                            ""
                        };
                        return Err(ScheduleError::new(
                            RuleId::S002,
                            here,
                            format!(
                                "entry ({}, {}) scheduled more than once{same}: first at {prev_loc}",
                                nz.row, nz.col
                            ),
                        ));
                    }
                }
            }
        }
        if scheduled.len() != source.nnz() {
            return Err(ScheduleError::new(
                RuleId::S002,
                Location::whole_artifact(),
                format!(
                    "scheduled {} of {} source non-zeros",
                    scheduled.len(),
                    source.nnz()
                ),
            ));
        }
        for &(r, c, v) in source.iter() {
            match scheduled.get(&(r, c)) {
                Some(&(sv, _)) if sv == v => {}
                Some(&(sv, loc)) => {
                    return Err(ScheduleError::new(
                        RuleId::S002,
                        loc,
                        format!("entry ({r}, {c}) value {sv} != source {v}"),
                    ))
                }
                None => {
                    return Err(ScheduleError::new(
                        RuleId::S002,
                        Location::whole_artifact(),
                        format!("entry ({r}, {c}) missing from schedule"),
                    ))
                }
            }
        }
        // RAW distance within each destination PE (S003).
        let d = self.config.dependency_distance;
        for ch in &self.channels {
            let pes = ch.grid.first().map_or(0, Vec::len);
            for lane in 0..pes {
                let mut last: HashMap<usize, usize> = HashMap::new();
                for (cycle, slots) in ch.grid.iter().enumerate() {
                    if let Some(slot) = slots.get(lane).copied().flatten() {
                        if let Some(&prev) = last.get(&slot.row) {
                            if cycle - prev < d {
                                return Err(ScheduleError::new(
                                    RuleId::S003,
                                    Location::slot(ch.channel, cycle, lane),
                                    format!(
                                        "RAW violation: row {} at cycles {} and {} (distance {})",
                                        slot.row, prev, cycle, d
                                    ),
                                ));
                            }
                        }
                        last.insert(slot.row, cycle);
                    }
                }
            }
        }
        Ok(())
    }

    /// The pre-`chason-verify` string-typed checker.
    #[deprecated(
        since = "0.1.0",
        note = "use `validate` for a typed first error, or `chason_verify::verify_schedule` \
                for the full collect-everything rule set"
    )]
    pub fn check_invariants(&self, source: &CooMatrix) -> Result<(), String> {
        self.validate(source).map_err(|e| e.to_string())
    }
}

/// A non-zero scheduling policy.
///
/// Implementations must conserve non-zeros and respect the RAW dependency
/// distance within every destination PE — see
/// [`ScheduledMatrix::validate`].
pub trait Scheduler {
    /// Human-readable name used in reports.
    fn name(&self) -> &'static str;

    /// Schedules every non-zero of `matrix` onto the channels of `config`.
    fn schedule(&self, matrix: &CooMatrix, config: &SchedulerConfig) -> ScheduledMatrix;
}

/// The rows owned by one PE lane, stored flat: one shared `(col, value)`
/// arena plus `(row, start, end)` spans into it, rows ascending, each row's
/// entries in ascending column order.
///
/// The previous layout, `Vec<(row, Vec<(col, value)>)>`, paid one heap
/// allocation (plus growth reallocations) per matrix row; planning pays
/// that cost once per column window, so on window-partitioned matrices it
/// dominated the scheduling profile. The flat arena allocates twice per
/// lane regardless of row count.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct FlatLaneRows {
    /// `(col, value)` entries of every row of the lane, grouped by row.
    pub entries: Vec<(usize, f32)>,
    /// Per row: `(row, start, end)` half-open span into `entries`.
    pub spans: Vec<(usize, usize, usize)>,
}

impl FlatLaneRows {
    /// Appends one entry, extending the current row's span or opening a new
    /// one. Entries of a row must arrive consecutively.
    pub fn push_entry(&mut self, row: usize, col: usize, value: f32) {
        match self.spans.last_mut() {
            Some((last_row, _, end)) if *last_row == row => *end += 1,
            _ => {
                let at = self.entries.len();
                self.spans.push((row, at, at + 1));
            }
        }
        self.entries.push((col, value));
    }

    /// Entries of the row behind `spans[idx]`.
    pub fn row_entries(&self, idx: usize) -> &[(usize, f32)] {
        let (_, start, end) = self.spans[idx];
        &self.entries[start..end]
    }
}

/// Reusable per-lane scheduling scratch ([`PeAware::schedule_lane`]): the
/// row cursors and last-emission cycles are cleared and refilled for each
/// lane instead of reallocated, which matters when planning schedules one
/// window after another.
#[derive(Debug, Default)]
pub(crate) struct LaneScratch {
    /// Next unconsumed index into `entries` per row span.
    pub(crate) cursor: Vec<usize>,
    /// Cycle of the row's previous emission (`usize::MAX` = never).
    pub(crate) last_cycle: Vec<usize>,
}

/// Cycle-block size for [`timelines_to_grid`]: 256 cycles × 8 lanes of
/// 16-byte slots is ~32 KiB of grid rows, small enough that a block's rows
/// stay cache-resident while every lane's timeline is copied into them.
const GRID_BLOCK_CYCLES: usize = 256;

/// Transposes per-lane slot timelines into the `grid[cycle][lane]` layout
/// shared by every scheduler, iterating in cycle blocks: within a block
/// each timeline is read sequentially and the block's grid rows are reused
/// while hot, instead of striding each lane across the full schedule.
pub(crate) fn timelines_to_grid(
    lane_timelines: &[Vec<Option<NzSlot>>],
) -> Vec<Vec<Option<NzSlot>>> {
    let lanes = lane_timelines.len();
    let cycles = lane_timelines.iter().map(Vec::len).max().unwrap_or(0);
    let mut grid: Vec<Vec<Option<NzSlot>>> = (0..cycles).map(|_| vec![None; lanes]).collect();
    for start in (0..cycles).step_by(GRID_BLOCK_CYCLES) {
        let end = cycles.min(start + GRID_BLOCK_CYCLES);
        for (lane, timeline) in lane_timelines.iter().enumerate() {
            if timeline.len() <= start {
                continue;
            }
            let stop = end.min(timeline.len());
            for (row, slot) in grid[start..stop].iter_mut().zip(&timeline[start..stop]) {
                row[lane] = *slot;
            }
        }
    }
    grid
}

/// Groups a matrix's non-zeros by owning (channel, lane, row), the shared
/// front-end of all three schedulers.
///
/// Returns `rows_by_pe[channel][lane]` as [`FlatLaneRows`]. A counting
/// pass sizes each lane's arena exactly, so the fill pass never
/// reallocates.
pub(crate) fn partition_rows(
    matrix: &CooMatrix,
    config: &SchedulerConfig,
) -> Vec<Vec<FlatLaneRows>> {
    let lanes = config.pes_per_channel;
    let mut nnz_per_pe = vec![0usize; config.total_pes()];
    let mut rows_per_pe = vec![0usize; config.total_pes()];
    let mut prev_row = usize::MAX;
    // COO iteration is (row, col)-sorted, so rows arrive grouped and in
    // ascending order per PE.
    for &(r, _, _) in matrix.iter() {
        let pe = config.pe_for_row(r);
        nnz_per_pe[pe] += 1;
        if r != prev_row {
            rows_per_pe[pe] += 1;
            prev_row = r;
        }
    }
    let mut by_pe: Vec<Vec<FlatLaneRows>> = (0..config.channels)
        .map(|ch| {
            (0..lanes)
                .map(|l| {
                    let pe = ch * lanes + l;
                    FlatLaneRows {
                        entries: Vec::with_capacity(nnz_per_pe[pe]),
                        spans: Vec::with_capacity(rows_per_pe[pe]),
                    }
                })
                .collect()
        })
        .collect();
    for &(r, c, v) in matrix.iter() {
        by_pe[config.channel_for_row(r)][config.lane_for_row(r)].push_entry(r, c, v);
    }
    by_pe
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_row_mapping_matches_eq1() {
        let cfg = SchedulerConfig::paper();
        assert_eq!(cfg.total_pes(), 128);
        assert_eq!(cfg.pe_for_row(0), 0);
        assert_eq!(cfg.pe_for_row(129), 1);
        assert_eq!(cfg.channel_for_row(0), 0);
        assert_eq!(cfg.channel_for_row(8), 1);
        assert_eq!(cfg.lane_for_row(9), 1);
        assert_eq!(cfg.local_row(128), 1);
        assert!(cfg.is_valid());
    }

    #[test]
    fn config_rejects_too_many_lanes_for_pe_src_bits() {
        let cfg = SchedulerConfig::toy(2, 9, 10);
        assert!(!cfg.is_valid(), "9 lanes cannot be tagged in 3 bits");
    }

    #[test]
    fn channel_schedule_counts() {
        let mut ch = ChannelSchedule::new(0, 2);
        ch.grid.push(vec![Some(NzSlot::private(1.0, 0, 0)), None]);
        ch.grid.push(vec![None, None]);
        assert_eq!(ch.cycles(), 2);
        assert_eq!(ch.stalls(), 3);
        assert_eq!(ch.nonzeros(), 1);
        assert_eq!(ch.stalls_per_lane(2), vec![1, 2]);
    }

    #[test]
    fn trim_removes_only_trailing_stall_cycles() {
        let mut ch = ChannelSchedule::new(0, 1);
        ch.grid.push(vec![None]);
        ch.grid.push(vec![Some(NzSlot::private(1.0, 0, 0))]);
        ch.grid.push(vec![None]);
        ch.grid.push(vec![None]);
        ch.trim_trailing_stalls();
        assert_eq!(ch.cycles(), 2);
        // Leading stall cycle survives.
        assert_eq!(ch.stalls(), 1);
    }

    #[test]
    fn data_list_round_trips_through_wire_format() {
        let cfg = SchedulerConfig::toy(1, 2, 10);
        let mut ch = ChannelSchedule::new(0, 2);
        ch.grid.push(vec![Some(NzSlot::private(2.5, 0, 3)), None]);
        let words = ch.data_list(&cfg);
        assert_eq!(words.len(), 2);
        let e = SparseElement::unpack(words[0]).unwrap();
        assert_eq!(e.value, 2.5);
        assert_eq!(e.local_col, 3);
        assert!(SparseElement::is_stall(words[1]));
    }

    #[test]
    fn underutilization_matches_eq4() {
        let cfg = SchedulerConfig::toy(1, 1, 10);
        let mut ch = ChannelSchedule::new(0, 1);
        ch.grid.push(vec![Some(NzSlot::private(1.0, 0, 0))]);
        ch.grid.push(vec![None]);
        ch.grid.push(vec![None]);
        let s = ScheduledMatrix {
            config: cfg,
            channels: vec![ch],
            rows: 1,
            cols: 1,
            nnz: 1,
        };
        assert!((s.underutilization() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule_has_zero_underutilization() {
        let s = ScheduledMatrix {
            config: SchedulerConfig::paper(),
            channels: Vec::new(),
            rows: 0,
            cols: 0,
            nnz: 0,
        };
        assert_eq!(s.underutilization(), 0.0);
        assert_eq!(s.stream_cycles(), 0);
    }

    #[test]
    fn partition_rows_groups_by_owner() {
        let cfg = SchedulerConfig::toy(2, 2, 10);
        // total_pes = 4: row 0 -> (0,0), row 1 -> (0,1), row 2 -> (1,0),
        // row 5 -> (0,1).
        let m = chason_sparse::CooMatrix::from_triplets(
            6,
            6,
            vec![
                (0, 1, 1.0),
                (1, 0, 2.0),
                (2, 2, 3.0),
                (5, 5, 4.0),
                (1, 3, 5.0),
            ],
        )
        .unwrap();
        let parts = partition_rows(&m, &cfg);
        assert_eq!(parts[0][0].spans.len(), 1); // row 0
        assert_eq!(parts[0][1].spans.len(), 2); // rows 1 and 5
        assert_eq!(parts[1][0].spans.len(), 1); // row 2
        assert_eq!(parts[0][1].row_entries(0).len(), 2); // row 1 has 2 entries
        assert_eq!(parts[0][1].row_entries(0), &[(0, 2.0), (3, 5.0)]);
        assert_eq!(parts[0][1].spans[1].0, 5);
        // The counting pass sized each arena exactly.
        for lane in parts.iter().flatten() {
            assert_eq!(lane.entries.len(), lane.entries.capacity());
        }
    }

    #[test]
    fn flat_lane_rows_extends_the_current_row_only() {
        let mut lane = FlatLaneRows::default();
        lane.push_entry(3, 0, 1.0);
        lane.push_entry(3, 2, 2.0);
        lane.push_entry(7, 1, 3.0);
        assert_eq!(lane.spans, vec![(3, 0, 2), (7, 2, 3)]);
        assert_eq!(lane.row_entries(0), &[(0, 1.0), (2, 2.0)]);
        assert_eq!(lane.row_entries(1), &[(1, 3.0)]);
    }

    #[test]
    fn timelines_to_grid_handles_uneven_lanes_across_blocks() {
        // Lane lengths straddle the block size (256) so both the blocked
        // interior and the ragged tails are exercised.
        let mk = |len: usize, row: usize| -> Vec<Option<NzSlot>> {
            (0..len)
                .map(|c| (c % 3 == 0).then(|| NzSlot::private(c as f32, row, c)))
                .collect()
        };
        let timelines = vec![mk(600, 0), mk(10, 1), mk(257, 2)];
        let grid = timelines_to_grid(&timelines);
        assert_eq!(grid.len(), 600);
        for (cycle, slots) in grid.iter().enumerate() {
            assert_eq!(slots.len(), 3);
            for (lane, t) in timelines.iter().enumerate() {
                assert_eq!(slots[lane], t.get(cycle).copied().flatten());
            }
        }
        assert!(timelines_to_grid(&[]).is_empty());
    }

    #[test]
    fn validate_detects_missing_entry() {
        let cfg = SchedulerConfig::toy(1, 1, 2);
        let m = chason_sparse::CooMatrix::from_triplets(1, 1, vec![(0, 0, 1.0)]).unwrap();
        let s = ScheduledMatrix {
            config: cfg,
            channels: vec![ChannelSchedule::new(0, 1)],
            rows: 1,
            cols: 1,
            nnz: 1,
        };
        let err = s.validate(&m).unwrap_err();
        assert_eq!(err.rule, RuleId::S002);
    }

    #[test]
    fn validate_detects_raw_violation_with_typed_rule() {
        let cfg = SchedulerConfig::toy(1, 1, 5);
        let m =
            chason_sparse::CooMatrix::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, 2.0)]).unwrap();
        let mut ch = ChannelSchedule::new(0, 1);
        ch.grid.push(vec![Some(NzSlot::private(1.0, 0, 0))]);
        ch.grid.push(vec![Some(NzSlot::private(2.0, 0, 1))]); // 1 cycle apart < 5
        let s = ScheduledMatrix {
            config: cfg,
            channels: vec![ch],
            rows: 1,
            cols: 2,
            nnz: 2,
        };
        let err = s.validate(&m).unwrap_err();
        assert_eq!(err.rule, RuleId::S003, "unexpected error: {err}");
        assert_eq!(err.location, Location::slot(0, 1, 0));
    }

    /// A value duplicated into *another channel* with the identical payload
    /// must still be flagged — the old checker's `(row, col)`-keyed map is
    /// retained but the error now names both scheduled locations.
    #[test]
    fn validate_detects_identical_duplicate_across_channels() {
        let cfg = SchedulerConfig::toy(2, 1, 2);
        // Row 0 is owned by channel 0; duplicate its sole entry into
        // channel 1 as a (tag-consistent-looking) migrated copy.
        let m = chason_sparse::CooMatrix::from_triplets(1, 1, vec![(0, 0, 3.5)]).unwrap();
        let mut ch0 = ChannelSchedule::new(0, 1);
        ch0.grid.push(vec![Some(NzSlot::private(3.5, 0, 0))]);
        let mut ch1 = ChannelSchedule::new(1, 1);
        ch1.grid.push(vec![Some(NzSlot {
            value: 3.5,
            row: 0,
            col: 0,
            pvt: false,
            pe_src: 0,
        })]);
        let s = ScheduledMatrix {
            config: cfg,
            channels: vec![ch0, ch1],
            rows: 1,
            cols: 1,
            nnz: 1,
        };
        let err = s.validate(&m).unwrap_err();
        assert_eq!(err.rule, RuleId::S002);
        assert!(
            err.message.contains("identical value"),
            "unexpected message: {}",
            err.message
        );
        assert!(err.message.contains("channel 0"), "{}", err.message);
        assert_eq!(err.location.channel, Some(1));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_check_invariants_shim_still_reports_strings() {
        let cfg = SchedulerConfig::toy(1, 1, 2);
        let m = chason_sparse::CooMatrix::from_triplets(1, 1, vec![(0, 0, 1.0)]).unwrap();
        let s = ScheduledMatrix {
            config: cfg,
            channels: vec![ChannelSchedule::new(0, 1)],
            rows: 1,
            cols: 1,
            nnz: 1,
        };
        let err = s.check_invariants(&m).unwrap_err();
        assert!(err.contains("S002"), "shim keeps the rule code: {err}");
    }
}
