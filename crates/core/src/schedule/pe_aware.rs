use super::{
    partition_rows, timelines_to_grid, ChannelSchedule, FlatLaneRows, LaneScratch, NzSlot,
    ScheduledMatrix, Scheduler, SchedulerConfig,
};
use chason_sparse::CooMatrix;

/// PE-aware out-of-order non-zero scheduling — Serpens' scheme (Fig. 2b).
///
/// Rows mapped to a PE are served **round-robin**: at every cycle the PE
/// emits the next value of the first eligible row, where a row is eligible
/// once `dependency_distance` cycles have passed since its previous value.
/// Interleaving independent rows hides the accumulator latency, but the
/// scheme is *intra-channel*: when a PE's rows run dry (or are empty, as in
/// skewed matrices) the scheduler must emit explicit zero slots — the stalls
/// that leave ~70% of PEs idle across SuiteSparse (Fig. 3) and that CrHCS
/// exists to fill.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeAware {
    _private: (),
}

impl PeAware {
    /// Creates the scheduler.
    pub fn new() -> Self {
        PeAware { _private: () }
    }

    /// Schedules one lane's rows round-robin, returning the slot timeline.
    ///
    /// Rows are consumed through cursors into the lane's flat entry arena
    /// — no queues are materialized — and `scratch` is reused across lanes
    /// (and across windows during planning) instead of reallocated.
    pub(crate) fn schedule_lane(
        lane: &FlatLaneRows,
        dependency_distance: usize,
        scratch: &mut LaneScratch,
    ) -> Vec<Option<NzSlot>> {
        let n = lane.spans.len();
        scratch.cursor.clear();
        scratch
            .cursor
            .extend(lane.spans.iter().map(|&(_, start, _)| start));
        scratch.last_cycle.clear();
        scratch.last_cycle.resize(n, usize::MAX);
        let mut remaining = lane.entries.len();
        let mut timeline = Vec::with_capacity(remaining);
        let mut rr = 0usize; // round-robin pointer
        let mut cycle = 0usize;
        while remaining > 0 {
            let mut emitted = false;
            for step in 0..n {
                let idx = (rr + step) % n;
                let (row, _, end) = lane.spans[idx];
                let cur = scratch.cursor[idx];
                if cur >= end {
                    continue; // row exhausted
                }
                let last = scratch.last_cycle[idx];
                if last != usize::MAX && cycle < last + dependency_distance {
                    continue; // RAW-blocked
                }
                let (col, value) = lane.entries[cur];
                timeline.push(Some(NzSlot::private(value, row, col)));
                scratch.cursor[idx] = cur + 1;
                scratch.last_cycle[idx] = cycle;
                remaining -= 1;
                rr = (idx + 1) % n;
                emitted = true;
                break;
            }
            if !emitted {
                timeline.push(None);
            }
            cycle += 1;
        }
        timeline
    }
}

impl Scheduler for PeAware {
    fn name(&self) -> &'static str {
        "pe-aware (serpens)"
    }

    fn schedule(&self, matrix: &CooMatrix, config: &SchedulerConfig) -> ScheduledMatrix {
        assert!(config.is_valid(), "invalid scheduler configuration");
        let by_pe = partition_rows(matrix, config);
        let d = config.dependency_distance;
        let mut scratch = LaneScratch::default();
        let mut channels = Vec::with_capacity(config.channels);
        for (ch_idx, lanes) in by_pe.iter().enumerate() {
            let lane_timelines: Vec<Vec<Option<NzSlot>>> = lanes
                .iter()
                .map(|rows| Self::schedule_lane(rows, d, &mut scratch))
                .collect();
            channels.push(ChannelSchedule {
                channel: ch_idx,
                grid: timelines_to_grid(&lane_timelines),
            });
        }
        ScheduledMatrix {
            config: *config,
            channels,
            rows: matrix.rows(),
            cols: matrix.cols(),
            nnz: matrix.nnz(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chason_sparse::generators::{power_law, uniform_random};
    use chason_sparse::CooMatrix;

    /// Two interleavable rows let the PE emit on consecutive cycles even
    /// with a long dependency distance (the Fig. 2b improvement).
    #[test]
    fn round_robin_interleaves_independent_rows() {
        let config = SchedulerConfig::toy(1, 4, 10);
        // Rows 0 and 4 both map to lane 0.
        let m = CooMatrix::from_triplets(
            8,
            2,
            vec![(0, 0, 1.0), (0, 1, 2.0), (4, 0, 3.0), (4, 1, 4.0)],
        )
        .unwrap();
        let s = PeAware::new().schedule(&m, &config);
        let lane0: Vec<(usize, usize)> = s.channels[0]
            .grid
            .iter()
            .enumerate()
            .filter_map(|(c, slots)| slots[0].map(|nz| (c, nz.row)))
            .collect();
        // cycle 0: row 0; cycle 1: row 4; then both blocked until D elapses.
        assert_eq!(lane0[0], (0, 0));
        assert_eq!(lane0[1], (1, 4));
        assert_eq!(lane0[2], (10, 0));
        assert_eq!(lane0[3], (11, 4));
        s.validate(&m).unwrap();
    }

    #[test]
    fn single_row_degrades_to_row_based_behaviour() {
        let config = SchedulerConfig::toy(1, 1, 10);
        let m =
            CooMatrix::from_triplets(1, 3, vec![(0, 0, 1.0), (0, 1, 2.0), (0, 2, 3.0)]).unwrap();
        let s = PeAware::new().schedule(&m, &config);
        assert_eq!(s.stream_cycles(), 21);
        s.validate(&m).unwrap();
    }

    #[test]
    fn enough_rows_fully_hide_the_latency() {
        // 10 singleton-entry rows on one PE with D = 10: zero stalls.
        let config = SchedulerConfig::toy(1, 1, 10);
        let triplets: Vec<_> = (0..10).map(|r| (r, 0, (r + 1) as f32)).collect();
        let m = CooMatrix::from_triplets(10, 1, triplets).unwrap();
        let s = PeAware::new().schedule(&m, &config);
        assert_eq!(s.stream_cycles(), 10);
        assert_eq!(s.stalls(), 0);
        s.validate(&m).unwrap();
    }

    #[test]
    fn never_beats_the_nz_per_cycle_bound_and_conserves() {
        let config = SchedulerConfig::toy(2, 2, 4);
        let m = uniform_random(64, 64, 300, 3);
        let s = PeAware::new().schedule(&m, &config);
        assert_eq!(s.scheduled_nonzeros(), 300);
        assert!(s.stream_cycles() * config.total_pes() >= 300);
        s.validate(&m).unwrap();
    }

    #[test]
    fn skewed_matrices_leave_many_stalls() {
        let config = SchedulerConfig::paper();
        let m = power_law(512, 512, 2000, 1.8, 13);
        let s = PeAware::new().schedule(&m, &config);
        assert!(
            s.underutilization() > 0.4,
            "expected heavy stalling on a skewed matrix, got {}",
            s.underutilization()
        );
        s.validate(&m).unwrap();
    }

    #[test]
    fn balanced_matrices_beat_skewed_ones() {
        let config = SchedulerConfig::paper();
        let balanced = uniform_random(2048, 2048, 40_000, 5);
        let skewed = power_law(2048, 2048, 40_000, 1.9, 5);
        let ub = PeAware::new()
            .schedule(&balanced, &config)
            .underutilization();
        let us = PeAware::new().schedule(&skewed, &config).underutilization();
        assert!(ub < us, "balanced {ub} should stall less than skewed {us}");
    }

    #[test]
    fn empty_matrix_is_fine() {
        let config = SchedulerConfig::paper();
        let s = PeAware::new().schedule(&CooMatrix::new(100, 100), &config);
        assert_eq!(s.stream_cycles(), 0);
        assert_eq!(s.stalls(), 0);
    }
}
