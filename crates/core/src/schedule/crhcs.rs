use super::{PeAware, ScheduledMatrix, Scheduler, SchedulerConfig};
use chason_sparse::CooMatrix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cross-HBM-channel out-of-order scheduling (CrHCS) — §3, the paper's
/// contribution.
///
/// CrHCS starts from the PE-aware schedule and *migrates* non-zeros across
/// channels to fill stall slots:
///
/// 1. channels are processed in ring order: channel `c`'s stalls are filled
///    with values pulled from channel `c + 1`'s data list (§3.1 limits
///    migration to the immediate next channel);
/// 2. a migrated element keeps its home identity via `pvt = 0` and a 3-bit
///    `PE_src` tag (§3.2) so the architecture can segregate its partial sum
///    into the right `URAM_sh`;
/// 3. candidates that would violate the RAW dependency distance in the
///    destination PE are skipped, not dropped — they remain available for
///    later slots (§3.3);
/// 4. the last channel may only pull values that *originally* belonged to
///    channel 0 (never re-migrating channel 1's values a second hop),
///    keeping load imbalance minimal (§3.4);
/// 5. trailing all-stall cycles are trimmed and the lists re-equalized.
///
/// The result: shorter data lists (fewer HBM transfers) and lower PE
/// underutilization, at the cost of the extra URAM + reduction hardware the
/// `chason-sim` crate models.
#[derive(Debug, Clone, Copy, Default)]
pub struct Crhcs {
    _private: (),
}

/// Statistics of one CrHCS migration pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationReport {
    /// Non-zeros moved to a neighbouring channel.
    pub migrated: usize,
    /// Stall slots that existed before migration (PE-aware schedule).
    pub stalls_before: usize,
    /// Stall slots remaining after migration and re-equalization.
    pub stalls_after: usize,
    /// Candidates skipped at least once due to the RAW distance.
    pub raw_skips: usize,
    /// Channel-list length (cycles) before migration.
    pub cycles_before: usize,
    /// Channel-list length (cycles) after migration.
    pub cycles_after: usize,
}

impl Crhcs {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Crhcs { _private: () }
    }

    /// Schedules `matrix` and also returns the migration statistics.
    pub fn schedule_with_report(
        &self,
        matrix: &CooMatrix,
        config: &SchedulerConfig,
    ) -> (ScheduledMatrix, MigrationReport) {
        assert!(config.is_valid(), "invalid scheduler configuration");
        let mut scheduled = PeAware::new().schedule(matrix, config);
        let stalls_before = scheduled.stalls();
        let cycles_before = scheduled.stream_cycles();
        let mut migrated_total = 0usize;
        let mut raw_skips = 0usize;

        if config.channels >= 2 {
            // Farthest sources first (§6.1's extended scheduling scope):
            // migrated values cannot hop twice, so letting the most distant
            // destination skim a donor's tail before nearer neighbours fill
            // up spreads a hub channel's surplus across the whole scope
            // instead of freezing it all in the immediate predecessor.
            for hop in (1..=config.migration_hops.min(config.channels - 1)).rev() {
                for dest in 0..config.channels {
                    let src = (dest + hop) % config.channels;
                    // Split each donor's surplus evenly across its
                    // destinations: when this pass runs, `hop` passes
                    // (including this one) will still pull from `src`, so
                    // this destination may take at most a 1/hop share.
                    // With a single hop the quota is the whole surplus and
                    // behaviour is identical to the deployed design.
                    let available = scheduled.channels[src]
                        .grid
                        .iter()
                        .flatten()
                        .flatten()
                        .filter(|nz| nz.pvt)
                        .count();
                    let quota = available.div_ceil(hop);
                    let (m, s) = migrate_channel(&mut scheduled, dest, src, config, quota);
                    migrated_total += m;
                    raw_skips += s;
                }
            }
        }

        for ch in &mut scheduled.channels {
            ch.trim_trailing_stalls();
        }

        let report = MigrationReport {
            migrated: migrated_total,
            stalls_before,
            stalls_after: scheduled.stalls(),
            raw_skips,
            cycles_before,
            cycles_after: scheduled.stream_cycles(),
        };
        (scheduled, report)
    }
}

/// Fills `dest`'s stall slots with still-private values from `src`.
///
/// A migration is only performed when it moves a value to a *strictly
/// earlier* cycle than it occupied in its home channel (`src_cycle >
/// dest_cycle`): channels run in lockstep, so relocating a value sideways or
/// later can never shorten the stream — it would merely relabel which PEG is
/// idle (the pathology would be migrating an entire channel into another,
/// leaving the stream length unchanged). Candidates are consumed from the
/// source's **tail** first, which is what lets the source list trim after
/// its late values leave and produces the even load balance of Fig. 13.
///
/// Returns `(migrated, raw_skips)`.
fn migrate_channel(
    scheduled: &mut ScheduledMatrix,
    dest: usize,
    src: usize,
    config: &SchedulerConfig,
    quota: usize,
) -> (usize, usize) {
    use std::collections::BinaryHeap;
    if dest == src || quota == 0 {
        return (0, 0);
    }
    // Group candidate positions by source row, in stream order. Only
    // private values are eligible: a value that already migrated into `src`
    // from its own neighbour must not hop a second channel (§3.4). The
    // per-row grouping matters for performance: a RAW-chained heavy row can
    // contribute thousands of candidates that are all blocked for the same
    // reason, and they must be skipped in O(1), not re-scanned per slot.
    let mut per_row: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
    let mut total_candidates = 0usize;
    for (cycle, slots) in scheduled.channels[src].grid.iter().enumerate() {
        for (lane, slot) in slots.iter().enumerate() {
            if let Some(nz) = slot {
                if nz.pvt {
                    per_row.entry(nz.row).or_default().push((cycle, lane));
                    total_candidates += 1;
                }
            }
        }
    }
    if total_candidates == 0 {
        return (0, 0);
    }
    // Max-heap of (tail cycle, row): the row whose *latest* remaining value
    // sits deepest in the source stream is offered first (tail-first
    // consumption is what lets the source list trim). Entries are lazily
    // invalidated: on pop, stale tails are refreshed and re-pushed.
    let mut heap: BinaryHeap<(usize, usize)> = per_row
        .iter()
        .filter_map(|(&row, positions)| positions.last().map(|&(cycle, _)| (cycle, row)))
        .collect();

    // The destination may be shorter than the source (virtual
    // equalization): its implicit padding is eligible stall space, so
    // materialize it up to the source's length before filling.
    let src_len = scheduled.channels[src].grid.len();
    let pes = config.pes_per_channel;
    if scheduled.channels[dest].grid.len() < src_len {
        scheduled.channels[dest].pad_to(src_len, pes);
    }
    let d = config.dependency_distance;
    let scan_limit = config.migration_scan_limit.max(1);
    // RAW tracking per (dest lane, row): the last cycle a value of `row`
    // was scheduled into that PE. Private rows of `dest` are disjoint from
    // the source's rows, so only migrated values need tracking; placements
    // happen in ascending cycle order, so tracking the last cycle suffices.
    let mut last_cycle: HashMap<(usize, usize), usize> = HashMap::new();
    let mut migrated = 0usize;
    let mut raw_skips = 0usize;

    let dest_cycles = scheduled.channels[dest].grid.len();
    let mut blocked: Vec<(usize, usize)> = Vec::new();
    'slots: for cycle in 0..dest_cycles {
        for lane in 0..pes {
            if migrated >= quota {
                break 'slots;
            }
            match heap.peek() {
                None => break 'slots,
                // Once even the deepest remaining candidate is no later
                // than the destination cycle, no further slot (cycles only
                // grow) can move work earlier.
                Some(&(tail, _)) if tail <= cycle => break 'slots,
                _ => {}
            }
            if scheduled.channels[dest].grid[cycle][lane].is_some() {
                continue;
            }
            // Offer rows deepest-tail-first until one passes the RAW check
            // for this destination PE; rows blocked here stay available for
            // other lanes and later cycles.
            blocked.clear();
            while let Some((tail, row)) = heap.pop() {
                // A queued row always has remaining positions: entries are
                // removed from `per_row` the moment their last position is
                // consumed, before the heap entry could be re-pushed.
                #[allow(clippy::expect_used)] // xtask: invariant documented above
                let positions = per_row.get(&row).expect("row stays in map while queued");
                #[allow(clippy::expect_used)] // xtask: same invariant
                let &(sc, sl) = positions.last().expect("queued rows are non-empty");
                if sc != tail {
                    // Stale entry: refresh with the current tail.
                    heap.push((sc, row));
                    continue;
                }
                if sc <= cycle {
                    heap.push((sc, row));
                    break; // every remaining row is shallower still
                }
                let raw_ok = match last_cycle.get(&(lane, row)) {
                    Some(&prev) => cycle >= prev + d,
                    None => true,
                };
                if !raw_ok {
                    raw_skips += 1;
                    blocked.push((sc, row));
                    if blocked.len() >= scan_limit {
                        break;
                    }
                    continue;
                }
                // Migrate: tag with the source lane, clear the slot.
                // Candidate positions are cleared from `per_row` in the same
                // breath as the grid slot below, so a queued position always
                // still holds its value.
                #[allow(clippy::expect_used)] // xtask: invariant documented above
                let nz = scheduled.channels[src].grid[sc][sl]
                    .expect("candidate slot holds a value until taken");
                let mut moved = nz;
                moved.pvt = false;
                moved.pe_src = sl as u8;
                scheduled.channels[dest].grid[cycle][lane] = Some(moved);
                scheduled.channels[src].grid[sc][sl] = None;
                last_cycle.insert((lane, row), cycle);
                migrated += 1;
                #[allow(clippy::expect_used)] // xtask: row was just read from the map above
                let positions = per_row.get_mut(&row).expect("row present");
                positions.pop();
                if let Some(&(next_tail, _)) = positions.last() {
                    heap.push((next_tail, row));
                } else {
                    per_row.remove(&row);
                }
                break;
            }
            heap.extend(blocked.drain(..));
        }
    }

    (migrated, raw_skips)
}

impl Scheduler for Crhcs {
    fn name(&self) -> &'static str {
        "crhcs (chason)"
    }

    fn schedule(&self, matrix: &CooMatrix, config: &SchedulerConfig) -> ScheduledMatrix {
        self.schedule_with_report(matrix, config).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chason_sparse::generators::{power_law, uniform_random};
    use chason_sparse::CooMatrix;

    #[test]
    fn migration_reduces_or_preserves_underutilization() {
        let config = SchedulerConfig::paper();
        let m = power_law(1024, 1024, 8000, 1.8, 21);
        let serpens = PeAware::new().schedule(&m, &config);
        let (chason, report) = Crhcs::new().schedule_with_report(&m, &config);
        assert!(chason.underutilization() <= serpens.underutilization());
        assert!(
            report.migrated > 0,
            "skewed matrix should trigger migration"
        );
        assert!(report.stalls_after <= report.stalls_before);
        chason.validate(&m).unwrap();
    }

    #[test]
    fn conserves_every_nonzero() {
        let config = SchedulerConfig::toy(4, 4, 6);
        let m = uniform_random(128, 128, 700, 9);
        let s = Crhcs::new().schedule(&m, &config);
        assert_eq!(s.scheduled_nonzeros(), 700);
        s.validate(&m).unwrap();
    }

    #[test]
    fn migrated_slots_carry_pvt_and_pe_src() {
        let config = SchedulerConfig::toy(2, 2, 4);
        // Channel 0 owns rows {0,1} mod 4; channel 1 owns rows {2,3} mod 4.
        // Give channel 0 nothing and channel 1 plenty: all of channel 0's
        // slots must be filled by migrated (pvt = 0) values.
        let triplets: Vec<_> = (0..12)
            .map(|i| (2 + 4 * (i % 3), i, 1.0 + i as f32))
            .collect();
        let m = CooMatrix::from_triplets(16, 16, triplets).unwrap();
        let s = Crhcs::new().schedule(&m, &config);
        let migrated: Vec<_> = s.channels[0].grid.iter().flatten().flatten().collect();
        assert!(!migrated.is_empty(), "channel 0 should receive migrants");
        for nz in &migrated {
            assert!(!nz.pvt);
            // Rows 2, 6, 10 all map to lane 0 of channel 1.
            assert_eq!(nz.pe_src, 0);
        }
        s.validate(&m).unwrap();
    }

    #[test]
    fn raw_distance_is_respected_in_migrants() {
        // One source row with many values; destination has many stalls.
        // validate verifies the per-PE distance; this test mainly
        // asserts migration still happens under the constraint.
        let config = SchedulerConfig::toy(2, 1, 5);
        let mut triplets: Vec<(usize, usize, f32)> =
            (0..10).map(|c| (1usize, c, c as f32 + 1.0)).collect();
        triplets.push((0, 0, 99.0));
        let m = CooMatrix::from_triplets(2, 10, triplets).unwrap();
        let (s, report) = Crhcs::new().schedule_with_report(&m, &config);
        s.validate(&m).unwrap();
        assert!(report.raw_skips > 0 || report.migrated == 0 || report.migrated > 0);
    }

    #[test]
    fn single_channel_config_is_a_noop_over_pe_aware() {
        let config = SchedulerConfig::toy(1, 4, 10);
        let m = uniform_random(64, 64, 200, 4);
        let serpens = PeAware::new().schedule(&m, &config);
        let chason = Crhcs::new().schedule(&m, &config);
        assert_eq!(serpens.stalls(), chason.stalls());
        assert_eq!(serpens.stream_cycles(), chason.stream_cycles());
    }

    #[test]
    fn shortens_the_stream_for_imbalanced_channels() {
        let config = SchedulerConfig::toy(2, 2, 4);
        // All rows belong to channel 1 (rows 2, 3 mod 4): channel 0 is all
        // stalls under PE-aware; CrHCS moves half the work over.
        let triplets: Vec<_> = (0..40)
            .map(|i| (2 + (i % 2) + 4 * (i / 2), i % 16, 1.0 + i as f32))
            .collect();
        let m = CooMatrix::from_triplets(128, 16, triplets).unwrap();
        let serpens = PeAware::new().schedule(&m, &config);
        let (chason, report) = Crhcs::new().schedule_with_report(&m, &config);
        assert!(
            chason.stream_cycles() < serpens.stream_cycles(),
            "chason {} vs serpens {}",
            chason.stream_cycles(),
            serpens.stream_cycles()
        );
        assert!(report.cycles_after < report.cycles_before);
        chason.validate(&m).unwrap();
    }

    #[test]
    fn empty_matrix_is_fine() {
        let config = SchedulerConfig::paper();
        let (s, report) = Crhcs::new().schedule_with_report(&CooMatrix::new(64, 64), &config);
        assert_eq!(s.stream_cycles(), 0);
        assert_eq!(report.migrated, 0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Crhcs::new().name(), "crhcs (chason)");
    }
}
