//! The diagnostic vocabulary shared by the schedule validators.
//!
//! Every invariant a schedule, plan, or configuration must uphold has a
//! stable *rule ID*. The IDs are the contract between `chason-core`'s fast
//! first-error [`crate::schedule::ScheduledMatrix::validate`], the
//! `chason-verify` crate's collect-everything static analyzer, the
//! `chason verify` CLI subcommand, and the mutation test suite — they never
//! change meaning once published.
//!
//! | ID | Checks | Paper |
//! |----|--------|-------|
//! | `S001` | wire-format packability: `local_row < 2^15`, `col < 8192`, `PE_src < 8`, value ≠ `+0.0` | §3.2 |
//! | `S002` | conservation: every source non-zero scheduled exactly once with its value | §3 |
//! | `S003` | RAW distance ≥ accumulator depth per destination PE | §3.3 |
//! | `S004` | neighbour-only migration within the hop budget (incl. §3.4's last-channel rule) | §3.1, §3.4 |
//! | `S005` | `pvt`/`PE_src` tags consistent with the element's home channel/lane | §3.2 |
//! | `S006` | channel-list shape: uniform lane width, trimmed-or-equalized lists | §3.1 |
//! | `P001` | plan coherence: fingerprint, config, pass/window bounds and stats | §4.1, §4.5 |
//! | `R001` | ScUG capacity: bank indices and URAM budget vs the device | §4.5, §6.1 |

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Stable identifier of one verification rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are documented by `title`/`paper_section`
pub enum RuleId {
    S001,
    S002,
    S003,
    S004,
    S005,
    S006,
    P001,
    R001,
}

impl RuleId {
    /// Every rule, in ID order (for documentation and CLI listings).
    pub const ALL: [RuleId; 8] = [
        RuleId::S001,
        RuleId::S002,
        RuleId::S003,
        RuleId::S004,
        RuleId::S005,
        RuleId::S006,
        RuleId::P001,
        RuleId::R001,
    ];

    /// The stable textual code (`"S001"`, ...).
    pub fn code(self) -> &'static str {
        match self {
            RuleId::S001 => "S001",
            RuleId::S002 => "S002",
            RuleId::S003 => "S003",
            RuleId::S004 => "S004",
            RuleId::S005 => "S005",
            RuleId::S006 => "S006",
            RuleId::P001 => "P001",
            RuleId::R001 => "R001",
        }
    }

    /// One-line summary of what the rule enforces.
    pub fn title(self) -> &'static str {
        match self {
            RuleId::S001 => "wire-format packability of every scheduled slot",
            RuleId::S002 => "conservation: every source non-zero scheduled exactly once",
            RuleId::S003 => "RAW dependency distance within every destination PE",
            RuleId::S004 => "migration only from ring neighbours within the hop budget",
            RuleId::S005 => "pvt/PE_src tags consistent with the home channel and lane",
            RuleId::S006 => "channel lists uniformly shaped and trimmed or equalized",
            RuleId::P001 => "plan artifact coherent with its fingerprint and config",
            RuleId::R001 => "ScUG capacity and URAM budget within the device",
        }
    }

    /// The paper section the rule models.
    pub fn paper_section(self) -> &'static str {
        match self {
            RuleId::S001 => "§3.2",
            RuleId::S002 => "§3",
            RuleId::S003 => "§3.3",
            RuleId::S004 => "§3.1/§3.4",
            RuleId::S005 => "§3.2",
            RuleId::S006 => "§3.1",
            RuleId::P001 => "§4.1/§4.5",
            RuleId::R001 => "§4.5/§6.1",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// The artifact is illegal: executing it would corrupt results or
    /// overflow hardware structures.
    Error,
    /// The artifact is suspicious or wasteful but executable.
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => f.write_str("error"),
            Severity::Warn => f.write_str("warning"),
        }
    }
}

/// Where in an artifact a diagnostic points (all coordinates optional: a
/// plan-level finding has none, a slot-level finding has all of them).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Location {
    /// Column-window index within a plan.
    pub window: Option<usize>,
    /// HBM channel index.
    pub channel: Option<usize>,
    /// Stream cycle (beat) within the channel's data list.
    pub cycle: Option<usize>,
    /// Lane (PE index within the channel).
    pub lane: Option<usize>,
}

impl Location {
    /// A location carrying no coordinates (artifact-level findings).
    pub fn whole_artifact() -> Self {
        Location::default()
    }

    /// A channel-level location.
    pub fn channel(channel: usize) -> Self {
        Location {
            channel: Some(channel),
            ..Location::default()
        }
    }

    /// A slot-level location.
    pub fn slot(channel: usize, cycle: usize, lane: usize) -> Self {
        Location {
            window: None,
            channel: Some(channel),
            cycle: Some(cycle),
            lane: Some(lane),
        }
    }

    /// The same location tagged with a plan window index.
    pub fn in_window(mut self, window: usize) -> Self {
        self.window = Some(window);
        self
    }

    /// Whether the location carries any coordinate at all.
    pub fn is_empty(&self) -> bool {
        *self == Location::default()
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::with_capacity(4);
        if let Some(w) = self.window {
            parts.push(format!("window {w}"));
        }
        if let Some(c) = self.channel {
            parts.push(format!("channel {c}"));
        }
        if let Some(c) = self.cycle {
            parts.push(format!("cycle {c}"));
        }
        if let Some(l) = self.lane {
            parts.push(format!("lane {l}"));
        }
        if parts.is_empty() {
            f.write_str("whole artifact")
        } else {
            f.write_str(&parts.join(", "))
        }
    }
}

/// A typed schedule-invariant violation: the first failure
/// [`crate::schedule::ScheduledMatrix::validate`] encounters.
///
/// Carries the stable [`RuleId`] so callers can branch on *which* invariant
/// broke instead of string-matching the message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleError {
    /// The violated rule.
    pub rule: RuleId,
    /// Where the violation sits.
    pub location: Location,
    /// Human-readable description.
    pub message: String,
}

impl ScheduleError {
    /// Creates an error for `rule` at `location`.
    pub fn new(rule: RuleId, location: Location, message: impl Into<String>) -> Self {
        ScheduleError {
            rule,
            location,
            message: message.into(),
        }
    }
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[{}]: {}", self.rule, self.message)?;
        if !self.location.is_empty() {
            write!(f, " ({})", self.location)?;
        }
        Ok(())
    }
}

impl Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_codes_are_stable_and_distinct() {
        let codes: Vec<&str> = RuleId::ALL.iter().map(|r| r.code()).collect();
        assert_eq!(
            codes,
            vec!["S001", "S002", "S003", "S004", "S005", "S006", "P001", "R001"]
        );
        for r in RuleId::ALL {
            assert!(!r.title().is_empty());
            assert!(r.paper_section().starts_with('§'));
            assert_eq!(format!("{r}"), r.code());
        }
    }

    #[test]
    fn location_renders_present_coordinates_only() {
        assert_eq!(Location::whole_artifact().to_string(), "whole artifact");
        assert_eq!(Location::channel(3).to_string(), "channel 3");
        assert_eq!(
            Location::slot(1, 14, 5).to_string(),
            "channel 1, cycle 14, lane 5"
        );
        assert_eq!(
            Location::slot(1, 14, 5).in_window(2).to_string(),
            "window 2, channel 1, cycle 14, lane 5"
        );
    }

    #[test]
    fn schedule_error_displays_rule_and_location() {
        let e = ScheduleError::new(RuleId::S003, Location::slot(0, 4, 1), "row 7 re-entered");
        let s = e.to_string();
        assert!(s.contains("error[S003]"), "{s}");
        assert!(s.contains("channel 0, cycle 4, lane 1"), "{s}");
        let bare = ScheduleError::new(RuleId::P001, Location::whole_artifact(), "nnz mismatch");
        assert!(!bare.to_string().contains("whole artifact"));
    }

    #[test]
    fn severity_orders_errors_first() {
        assert!(Severity::Error < Severity::Warn);
        assert_eq!(Severity::Error.to_string(), "error");
        assert_eq!(Severity::Warn.to_string(), "warning");
    }
}
