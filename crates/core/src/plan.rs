//! Reusable SpMV schedule plans.
//!
//! Scheduling dominates preprocessing cost, yet it depends only on the
//! matrix structure and the [`SchedulerConfig`] — not on the dense vector.
//! Iterative solvers therefore re-pay it on every iteration for nothing.
//! This module defines the *plan artifact* produced once per matrix: the
//! full per-window [`ScheduledMatrix`] list (grouped into row-partition
//! passes for matrices that exceed the partial-sum URAM capacity), the
//! window partition bounds, per-window stats, and a cache key combining a
//! fingerprint of the matrix with the scheduler configuration. Engines
//! consume a plan with `run_planned`, which executes without rescheduling
//! and reproduces the unplanned run bit for bit.

use crate::schedule::{ScheduledMatrix, SchedulerConfig};
use chason_sparse::CooMatrix;
use serde::{Deserialize, Serialize};

/// FNV-1a fingerprint of a matrix's dimensions and triplets.
///
/// Collisions are astronomically unlikely for distinct real matrices, and a
/// collision can at worst serve a stale schedule for a *different* matrix of
/// identical dimensions — detectable because plans carry their nnz — so a
/// 64-bit structural hash is an adequate cache identity.
pub fn matrix_fingerprint(matrix: &CooMatrix) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(matrix.rows() as u64);
    eat(matrix.cols() as u64);
    for &(r, c, v) in matrix.triplets() {
        eat(r as u64);
        eat(c as u64);
        eat(u64::from(v.to_bits()));
    }
    h
}

/// Identity of a plan in a cache: *which matrix* (by structural
/// fingerprint) scheduled under *which architecture*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlanKey {
    /// [`matrix_fingerprint`] of the source matrix.
    pub fingerprint: u64,
    /// Scheduler configuration the plan targets.
    pub config: SchedulerConfig,
}

impl PlanKey {
    /// Computes the key for `matrix` under `config`.
    pub fn new(matrix: &CooMatrix, config: SchedulerConfig) -> Self {
        PlanKey {
            fingerprint: matrix_fingerprint(matrix),
            config,
        }
    }
}

/// One scheduled column window of a pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanWindow {
    /// First source column covered (inclusive).
    pub col_start: usize,
    /// One past the last source column covered.
    pub col_end: usize,
    /// Non-zeros in this window.
    pub nnz: usize,
    /// Stall slots left after scheduling (virtual padding included).
    pub stalls: usize,
    /// Cycles the window occupies the stream (longest equalized channel).
    pub stream_cycles: usize,
    /// The window's schedule, ready to execute.
    pub schedule: ScheduledMatrix,
}

/// One row-partition pass of a plan (§4.5). Single-pass plans have one
/// entry covering every row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassPlan {
    /// First source row covered (inclusive).
    pub row_start: usize,
    /// One past the last source row covered.
    pub row_end: usize,
    /// Non-zeros in this pass.
    pub nnz: usize,
    /// The pass's column windows in stream order.
    pub windows: Vec<PlanWindow>,
}

impl PassPlan {
    /// Rows this pass covers.
    pub fn rows(&self) -> usize {
        self.row_end - self.row_start
    }
}

/// A complete reusable SpMV schedule plan for one (matrix, configuration)
/// pair: execute it any number of times against different dense vectors
/// without rescheduling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpmvPlan {
    /// Cache identity: matrix fingerprint + scheduler configuration.
    pub key: PlanKey,
    /// Engine family that produced (and may execute) the plan.
    pub engine: String,
    /// Column window width the plan was partitioned with.
    pub window: usize,
    /// Source matrix row count.
    pub rows: usize,
    /// Source matrix column count.
    pub cols: usize,
    /// Source matrix non-zero count.
    pub nnz: usize,
    /// Row-partition passes in row order.
    pub passes: Vec<PassPlan>,
}

impl SpmvPlan {
    /// Total column windows across all passes.
    pub fn window_count(&self) -> usize {
        self.passes.iter().map(|p| p.windows.len()).sum()
    }

    /// Total stall slots across all windows.
    pub fn stalls(&self) -> usize {
        self.passes
            .iter()
            .flat_map(|p| &p.windows)
            .map(|w| w.stalls)
            .sum()
    }

    /// Total stream cycles across all windows (before initiation-interval
    /// derating).
    pub fn stream_cycles(&self) -> usize {
        self.passes
            .iter()
            .flat_map(|p| &p.windows)
            .map(|w| w.stream_cycles)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chason_sparse::generators::uniform_random;

    #[test]
    fn fingerprint_is_structural() {
        let a = uniform_random(64, 64, 300, 9);
        let b = uniform_random(64, 64, 300, 9);
        assert_eq!(matrix_fingerprint(&a), matrix_fingerprint(&b));
        let c = uniform_random(64, 64, 300, 10);
        assert_ne!(matrix_fingerprint(&a), matrix_fingerprint(&c));
    }

    #[test]
    fn fingerprint_sees_dimensions_and_values() {
        let base = CooMatrix::from_triplets(4, 4, vec![(0, 0, 1.0)]).unwrap();
        let taller = CooMatrix::from_triplets(5, 4, vec![(0, 0, 1.0)]).unwrap();
        let other_value = CooMatrix::from_triplets(4, 4, vec![(0, 0, 2.0)]).unwrap();
        assert_ne!(matrix_fingerprint(&base), matrix_fingerprint(&taller));
        assert_ne!(matrix_fingerprint(&base), matrix_fingerprint(&other_value));
    }

    #[test]
    fn plan_key_distinguishes_configs() {
        let m = uniform_random(32, 32, 100, 1);
        let paper = PlanKey::new(&m, SchedulerConfig::paper());
        let toy = PlanKey::new(&m, SchedulerConfig::toy(2, 2, 4));
        assert_eq!(paper.fingerprint, toy.fingerprint);
        assert_ne!(paper, toy);
    }
}
