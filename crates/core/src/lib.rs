//! The Chasoň paper's primary contribution: non-zero scheduling for
//! HBM-based streaming SpMV accelerators, including **CrHCS** — cross-HBM
//! channel out-of-order scheduling with data migration.
//!
//! Three schedulers are provided, matching §2.2 and §3 of the paper:
//!
//! * [`schedule::RowBased`] — all non-zeros of a row go to the row's PE in
//!   order (Fig. 2a); RAW dependencies between consecutive values of the same
//!   row leave the accumulator pipeline almost empty.
//! * [`schedule::PeAware`] — Serpens' out-of-order scheme (Fig. 2b): rows
//!   mapped to a PE are served round-robin so independent rows hide the
//!   accumulator latency. Stalls remain whenever a PE's rows run dry.
//! * [`schedule::Crhcs`] — the contribution (Fig. 2c, §3): stall slots are
//!   filled by *migrating* non-zeros from the neighbouring HBM channel,
//!   tagged with `pvt`/`PE_src` flags so the architecture can segregate the
//!   partial sums.
//!
//! Supporting modules: [`element`] packs scheduled non-zeros into the 64-bit
//! wire format of §3.2; [`metrics`] computes PE underutilization (Eq. 4);
//! [`window`] partitions wide matrices into the `W = 8192` column segments
//! of §4.1.
//!
//! # Example
//!
//! ```
//! use chason_core::schedule::{Crhcs, PeAware, Scheduler, SchedulerConfig};
//! use chason_sparse::generators::power_law;
//!
//! let matrix = power_law(256, 256, 1500, 1.8, 7);
//! let config = SchedulerConfig::default();
//! let serpens = PeAware::new().schedule(&matrix, &config);
//! let chason = Crhcs::new().schedule(&matrix, &config);
//! // CrHCS fills stalls by migrating values across channels:
//! assert!(chason.underutilization() <= serpens.underutilization());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod diag;
pub mod element;
pub mod export;
pub mod metrics;
pub mod plan;
pub mod replan;
pub mod schedule;
pub mod shard;
pub mod viz;
pub mod window;

pub use cache::{CacheStats, LruCache};
pub use diag::{Location, RuleId, ScheduleError, Severity};
pub use element::SparseElement;
pub use plan::{matrix_fingerprint, PassPlan, PlanKey, PlanWindow, SpmvPlan};
pub use replan::{dirty_windows, ReplanError, ReplanReport};
pub use schedule::{
    ChannelSchedule, Crhcs, HybridRowSplit, NzSlot, PeAware, RowBased, ScheduledMatrix, Scheduler,
    SchedulerConfig,
};
pub use shard::ShardedPlan;
