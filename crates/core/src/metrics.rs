//! PE-underutilization metrics (Eq. 4) and scheduler comparisons.
//!
//! The paper's key metric is measured *offline* on the scheduled data lists:
//! every stall word in a channel list is one idle-PE instance, so
//!
//! ```text
//! underutilization % = Σ stalls / (NNZ + Σ stalls) × 100        (Eq. 4)
//! ```
//!
//! These helpers bundle the per-schedule numbers needed by the Figure 3 /
//! 11 / 12 / 13 experiment binaries.

use crate::schedule::{ScheduledMatrix, Scheduler, SchedulerConfig};
use chason_sparse::CooMatrix;
use serde::{Deserialize, Serialize};

/// Summary metrics of one schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleMetrics {
    /// Scheduler name.
    pub scheduler: String,
    /// Source-matrix non-zeros.
    pub nnz: usize,
    /// Total stall slots.
    pub stalls: usize,
    /// Stream length in cycles (equalized channel-list length).
    pub cycles: usize,
    /// PE underutilization in percent (Eq. 4).
    pub underutilization_pct: f64,
    /// Per-channel (per-PEG) underutilization in percent.
    pub per_peg_pct: Vec<f64>,
    /// Throughput upper bound in non-zeros per cycle per PE.
    pub nz_per_cycle_per_pe: f64,
}

impl ScheduleMetrics {
    /// Computes the metrics of a schedule produced by `scheduler_name`.
    pub fn from_schedule(scheduler_name: &str, schedule: &ScheduledMatrix) -> Self {
        let nnz = schedule.scheduled_nonzeros();
        let stalls = schedule.stalls();
        let cycles = schedule.stream_cycles();
        let total_pes = schedule.config.total_pes();
        let slots = cycles * total_pes;
        ScheduleMetrics {
            scheduler: scheduler_name.to_string(),
            nnz,
            stalls,
            cycles,
            underutilization_pct: schedule.underutilization() * 100.0,
            per_peg_pct: schedule
                .per_channel_underutilization()
                .iter()
                .map(|u| u * 100.0)
                .collect(),
            nz_per_cycle_per_pe: if slots == 0 {
                0.0
            } else {
                nnz as f64 / slots as f64
            },
        }
    }
}

/// Side-by-side comparison of two schedulers on the same matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerComparison {
    /// Metrics of the baseline scheduler.
    pub baseline: ScheduleMetrics,
    /// Metrics of the improved scheduler.
    pub improved: ScheduleMetrics,
    /// `baseline.cycles / improved.cycles` — the stream-length speedup the
    /// improved schedule enables at equal clock frequency.
    pub cycle_reduction: f64,
    /// `baseline` stalls minus `improved` stalls.
    pub stalls_removed: isize,
}

/// Runs two schedulers on a matrix and compares them.
///
/// # Example
///
/// ```
/// use chason_core::metrics::compare;
/// use chason_core::schedule::{Crhcs, PeAware, SchedulerConfig};
/// use chason_sparse::generators::power_law;
///
/// let m = power_law(256, 256, 2000, 1.8, 3);
/// let cmp = compare(&PeAware::new(), &Crhcs::new(), &m, &SchedulerConfig::default());
/// assert!(cmp.cycle_reduction >= 1.0);
/// ```
pub fn compare<A: Scheduler, B: Scheduler>(
    baseline: &A,
    improved: &B,
    matrix: &CooMatrix,
    config: &SchedulerConfig,
) -> SchedulerComparison {
    let b = baseline.schedule(matrix, config);
    let i = improved.schedule(matrix, config);
    let bm = ScheduleMetrics::from_schedule(baseline.name(), &b);
    let im = ScheduleMetrics::from_schedule(improved.name(), &i);
    let cycle_reduction = if im.cycles == 0 {
        1.0
    } else {
        bm.cycles as f64 / im.cycles as f64
    };
    SchedulerComparison {
        stalls_removed: bm.stalls as isize - im.stalls as isize,
        cycle_reduction,
        baseline: bm,
        improved: im,
    }
}

/// Aggregate metrics of scheduling a matrix one column window at a time
/// (§4.1) — how the hardware actually consumes wide matrices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedMetrics {
    /// Scheduler name.
    pub scheduler: String,
    /// Source-matrix non-zeros (summed across windows).
    pub nnz: usize,
    /// Stall slots summed across windows.
    pub stalls: usize,
    /// Stream cycles summed across windows.
    pub stream_cycles: usize,
    /// Number of column windows.
    pub windows: usize,
    /// Per-channel stalls summed across windows.
    pub per_channel_stalls: Vec<usize>,
    /// Per-channel scheduled non-zeros summed across windows.
    pub per_channel_nnz: Vec<usize>,
}

impl WindowedMetrics {
    /// PE underutilization per Eq. 4 over the whole run.
    pub fn underutilization_pct(&self) -> f64 {
        let total = self.nnz + self.stalls;
        if total == 0 {
            0.0
        } else {
            100.0 * self.stalls as f64 / total as f64
        }
    }

    /// Per-channel (PEG) underutilization percentages.
    pub fn per_peg_underutilization_pct(&self) -> Vec<f64> {
        self.per_channel_stalls
            .iter()
            .zip(&self.per_channel_nnz)
            .map(|(&s, &n)| {
                if s + n == 0 {
                    0.0
                } else {
                    100.0 * s as f64 / (s + n) as f64
                }
            })
            .collect()
    }
}

/// Schedules `matrix` window-by-window with `scheduler` and aggregates the
/// stall metrics — the offline measurement procedure of §5.3.
pub fn windowed_metrics<S: Scheduler>(
    scheduler: &S,
    matrix: &CooMatrix,
    config: &SchedulerConfig,
    window: usize,
) -> WindowedMetrics {
    let windows = crate::window::partition_columns(matrix, window);
    let mut out = WindowedMetrics {
        scheduler: scheduler.name().to_string(),
        nnz: 0,
        stalls: 0,
        stream_cycles: 0,
        windows: windows.len(),
        per_channel_stalls: vec![0; config.channels],
        per_channel_nnz: vec![0; config.channels],
    };
    for w in &windows {
        let s = scheduler.schedule(&w.matrix, config);
        let cycles = s.stream_cycles();
        out.nnz += s.scheduled_nonzeros();
        out.stalls += s.stalls();
        out.stream_cycles += cycles;
        for (i, ch) in s.channels.iter().enumerate() {
            // Per-channel stalls include the virtual padding to the
            // window's longest channel (§3.1).
            out.per_channel_stalls[i] += cycles * config.pes_per_channel - ch.nonzeros();
            out.per_channel_nnz[i] += ch.nonzeros();
        }
    }
    out
}

/// Structural insights into one schedule: where the stalls sit and how far
/// values migrated — the diagnostic view behind the Eq.-4 scalar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleInsights {
    /// Histogram of stall-run lengths per PE timeline: `run_lengths[k]` =
    /// number of maximal idle bursts of length `k + 1` (the last bucket
    /// aggregates longer runs).
    pub stall_run_lengths: Vec<usize>,
    /// Longest idle burst observed on any PE.
    pub longest_stall_run: usize,
    /// Non-zeros that were migrated (`pvt = 0`).
    pub migrated: usize,
    /// Migrated values per ring hop (`index 0` = hop 1).
    pub migrated_per_hop: Vec<usize>,
    /// Mean cycle distance a migrated value moved *earlier* relative to the
    /// stream length (0 when nothing migrated).
    pub mean_fill_position: f64,
}

/// Number of explicit stall-run buckets (runs of `BUCKETS` cycles or more
/// share the final bucket).
pub const STALL_RUN_BUCKETS: usize = 16;

/// Computes [`ScheduleInsights`] for a schedule.
pub fn schedule_insights(schedule: &ScheduledMatrix) -> ScheduleInsights {
    let config = &schedule.config;
    let mut run_lengths = vec![0usize; STALL_RUN_BUCKETS];
    let mut longest = 0usize;
    let mut migrated = 0usize;
    let mut migrated_per_hop = vec![0usize; config.channels.max(1)];
    let mut fill_positions = 0.0f64;
    let global = schedule.stream_cycles();
    for ch in &schedule.channels {
        let lanes = ch.grid.first().map_or(0, Vec::len);
        for lane in 0..lanes {
            let mut run = 0usize;
            for cycle in 0..global {
                let slot = ch.grid.get(cycle).and_then(|s| s[lane]);
                match slot {
                    None => run += 1,
                    Some(nz) => {
                        if run > 0 {
                            longest = longest.max(run);
                            run_lengths[(run - 1).min(STALL_RUN_BUCKETS - 1)] += 1;
                            run = 0;
                        }
                        if !nz.pvt {
                            migrated += 1;
                            let hop = config.hop_for(ch.channel, config.channel_for_row(nz.row));
                            if hop >= 1 {
                                migrated_per_hop[hop - 1] += 1;
                            }
                            if global > 0 {
                                fill_positions += cycle as f64 / global as f64;
                            }
                        }
                    }
                }
            }
            if run > 0 {
                longest = longest.max(run);
                run_lengths[(run - 1).min(STALL_RUN_BUCKETS - 1)] += 1;
            }
        }
    }
    migrated_per_hop.truncate(config.migration_hops.max(1));
    ScheduleInsights {
        stall_run_lengths: run_lengths,
        longest_stall_run: longest,
        migrated,
        migrated_per_hop,
        mean_fill_position: if migrated == 0 {
            0.0
        } else {
            fill_positions / migrated as f64
        },
    }
}

/// Geometric mean of a set of strictly positive values.
///
/// Values `<= 0` are skipped (they would poison the log sum); returns 0 when
/// no valid values remain.
pub fn geometric_mean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| *v > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        0.0
    } else {
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Crhcs, PeAware};
    use chason_sparse::generators::power_law;

    #[test]
    fn metrics_match_schedule_accessors() {
        let config = SchedulerConfig::paper();
        let m = power_law(512, 512, 3000, 1.7, 2);
        let s = PeAware::new().schedule(&m, &config);
        let metrics = ScheduleMetrics::from_schedule("pe-aware", &s);
        assert_eq!(metrics.nnz, 3000);
        assert_eq!(metrics.stalls, s.stalls());
        assert_eq!(metrics.per_peg_pct.len(), 16);
        assert!((metrics.underutilization_pct / 100.0 - s.underutilization()).abs() < 1e-12);
    }

    #[test]
    fn comparison_favors_crhcs_on_skewed_input() {
        let config = SchedulerConfig::paper();
        let m = power_law(1024, 1024, 6000, 1.9, 8);
        let cmp = compare(&PeAware::new(), &Crhcs::new(), &m, &config);
        assert!(cmp.cycle_reduction >= 1.0);
        assert!(cmp.stalls_removed >= 0);
        assert!(cmp.improved.underutilization_pct <= cmp.baseline.underutilization_pct);
    }

    #[test]
    fn nz_per_cycle_per_pe_is_bounded_by_one() {
        let config = SchedulerConfig::paper();
        let m = power_law(512, 512, 3000, 1.5, 4);
        let s = Crhcs::new().schedule(&m, &config);
        let metrics = ScheduleMetrics::from_schedule("crhcs", &s);
        assert!(metrics.nz_per_cycle_per_pe <= 1.0);
        assert!(metrics.nz_per_cycle_per_pe > 0.0);
    }

    #[test]
    fn windowed_metrics_match_single_window_for_narrow_matrices() {
        let config = SchedulerConfig::paper();
        let m = power_law(512, 512, 3000, 1.6, 6);
        let s = PeAware::new().schedule(&m, &config);
        let w = windowed_metrics(&PeAware::new(), &m, &config, 8192);
        assert_eq!(w.windows, 1);
        assert_eq!(w.nnz, s.scheduled_nonzeros());
        assert_eq!(w.stalls, s.stalls());
        assert!((w.underutilization_pct() / 100.0 - s.underutilization()).abs() < 1e-12);
    }

    #[test]
    fn windowed_metrics_cover_all_nonzeros_across_windows() {
        let config = SchedulerConfig::paper();
        let m = power_law(256, 2000, 4000, 1.5, 6);
        let w = windowed_metrics(&Crhcs::new(), &m, &config, 512);
        assert_eq!(w.windows, 4);
        assert_eq!(w.nnz, 4000);
        assert_eq!(w.per_channel_nnz.iter().sum::<usize>(), 4000);
        assert_eq!(w.per_channel_stalls.iter().sum::<usize>(), w.stalls);
    }

    #[test]
    fn insights_count_stall_runs_and_migrations() {
        let config = SchedulerConfig::toy(2, 2, 4);
        // Channel 1 rich, channel 0 poor: migration guaranteed.
        let triplets: Vec<_> = (0..20)
            .map(|i| (2 + (i % 2) + 4 * (i / 2), i % 8, 1.0 + i as f32))
            .collect();
        let m = chason_sparse::CooMatrix::from_triplets(64, 8, triplets).unwrap();
        let serpens = PeAware::new().schedule(&m, &config);
        let chason = Crhcs::new().schedule(&m, &config);
        let si = schedule_insights(&serpens);
        let ci = schedule_insights(&chason);
        assert_eq!(si.migrated, 0, "pe-aware never migrates");
        assert!(ci.migrated > 0);
        assert_eq!(ci.migrated_per_hop.iter().sum::<usize>(), ci.migrated);
        // CrHCS shortens the worst idle burst.
        assert!(ci.longest_stall_run <= si.longest_stall_run);
        assert!((0.0..=1.0).contains(&ci.mean_fill_position));
    }

    #[test]
    fn insights_on_empty_schedule_are_zero() {
        let config = SchedulerConfig::toy(2, 2, 4);
        let s = PeAware::new().schedule(&chason_sparse::CooMatrix::new(8, 8), &config);
        let i = schedule_insights(&s);
        assert_eq!(i.migrated, 0);
        assert_eq!(i.longest_stall_run, 0);
        assert_eq!(i.stall_run_lengths.iter().sum::<usize>(), 0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[0.0, -1.0]), 0.0);
        assert!((geometric_mean(&[5.0, 0.0]) - 5.0).abs() < 1e-12);
    }
}
