//! Column-window partitioning (§4.1).
//!
//! The dense vector `x` does not fit on chip, and the wire format carries
//! only 13 column bits, so the accelerator processes a matrix in segments of
//! `W = 8192` columns. Each window is scheduled independently; the engine
//! streams them back-to-back, reloading the on-chip `x` buffer between
//! windows.

use crate::element::WINDOW;
use chason_sparse::{CooMatrix, CscMatrix};
use serde::{Deserialize, Serialize};

/// One column window of a matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnWindow {
    /// Index of this window (0-based).
    pub index: usize,
    /// First source column covered (inclusive).
    pub col_start: usize,
    /// One past the last source column covered.
    pub col_end: usize,
    /// The window's entries as a matrix with columns rebased to
    /// `0..(col_end - col_start)`.
    pub matrix: CooMatrix,
}

impl ColumnWindow {
    /// Width of the window in columns.
    pub fn width(&self) -> usize {
        self.col_end - self.col_start
    }
}

/// Splits `matrix` into windows of at most `window` columns.
///
/// Rows are preserved; columns are rebased per window. Every source entry
/// appears in exactly one window.
///
/// # Panics
///
/// Panics if `window == 0`.
///
/// # Example
///
/// ```
/// use chason_core::window::partition_columns;
/// use chason_sparse::CooMatrix;
///
/// # fn main() -> Result<(), chason_sparse::SparseError> {
/// let m = CooMatrix::from_triplets(2, 10, vec![(0, 1, 1.0), (1, 9, 2.0)])?;
/// let windows = partition_columns(&m, 4);
/// assert_eq!(windows.len(), 3);
/// assert_eq!(windows[2].matrix.triplets(), &[(1, 1, 2.0)]); // col 9 -> 1
/// # Ok(())
/// # }
/// ```
pub fn partition_columns(matrix: &CooMatrix, window: usize) -> Vec<ColumnWindow> {
    assert!(window > 0, "window width must be positive");
    let cols = matrix.cols();
    if cols == 0 {
        return Vec::new();
    }
    let csc = CscMatrix::from(matrix);
    let mut windows = Vec::with_capacity(cols.div_ceil(window));
    let mut start = 0usize;
    let mut index = 0usize;
    while start < cols {
        let end = (start + window).min(cols);
        let triplets = csc.column_window(start, end);
        // `column_window` rebases columns into `0..end-start` and keeps rows
        // untouched, so the triplets cannot be out of range.
        #[allow(clippy::expect_used)] // xtask: invariant documented above
        let m = CooMatrix::from_triplets(matrix.rows(), end - start, triplets)
            .expect("window triplets are in range by construction");
        windows.push(ColumnWindow {
            index,
            col_start: start,
            col_end: end,
            matrix: m,
        });
        start = end;
        index += 1;
    }
    windows
}

/// Splits `matrix` into the paper's `W = 8192` column windows.
pub fn partition_paper_windows(matrix: &CooMatrix) -> Vec<ColumnWindow> {
    partition_columns(matrix, WINDOW)
}

/// Number of `W`-wide windows a matrix of `cols` columns needs.
pub fn window_count(cols: usize, window: usize) -> usize {
    if window == 0 {
        0
    } else {
        cols.div_ceil(window)
    }
}

/// One row partition of a matrix (§4.5: matrices whose per-PE row count
/// exceeds the partial-sum URAM capacity are split and fed in passes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowPartition {
    /// Index of this partition (0-based).
    pub index: usize,
    /// First source row covered (inclusive).
    pub row_start: usize,
    /// One past the last source row covered.
    pub row_end: usize,
    /// The partition's entries with rows rebased to `0..(row_end - row_start)`.
    ///
    /// The rebase offset is a multiple of the total PE count, so every row
    /// keeps its PE assignment (`row % total_PEs` is invariant) while its
    /// per-PE URAM address shrinks to fit.
    pub matrix: CooMatrix,
}

/// Splits `matrix` into row partitions of at most `max_rows_per_pe` rows
/// per PE for a machine with `total_pes` processing elements.
///
/// Every source entry appears in exactly one partition; results can be
/// computed per partition and concatenated.
///
/// # Panics
///
/// Panics if `max_rows_per_pe == 0` or `total_pes == 0`.
///
/// # Example
///
/// ```
/// use chason_core::window::partition_rows_capacity;
/// use chason_sparse::CooMatrix;
///
/// # fn main() -> Result<(), chason_sparse::SparseError> {
/// let m = CooMatrix::from_triplets(10, 2, vec![(0, 0, 1.0), (9, 1, 2.0)])?;
/// // 2 PEs, at most 2 rows per PE -> passes of 4 rows.
/// let parts = partition_rows_capacity(&m, 2, 2);
/// assert_eq!(parts.len(), 3);
/// assert_eq!(parts[2].matrix.triplets(), &[(1, 1, 2.0)]); // row 9 -> 1
/// # Ok(())
/// # }
/// ```
pub fn partition_rows_capacity(
    matrix: &CooMatrix,
    max_rows_per_pe: usize,
    total_pes: usize,
) -> Vec<RowPartition> {
    assert!(max_rows_per_pe > 0, "per-PE row capacity must be positive");
    assert!(total_pes > 0, "total PE count must be positive");
    let span = max_rows_per_pe * total_pes;
    let rows = matrix.rows();
    if rows == 0 {
        return Vec::new();
    }
    let parts = rows.div_ceil(span);
    let mut buckets: Vec<Vec<chason_sparse::Triplet>> = vec![Vec::new(); parts];
    for &(r, c, v) in matrix.iter() {
        let p = r / span;
        buckets[p].push((r - p * span, c, v));
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(index, triplets)| {
            let row_start = index * span;
            let row_end = ((index + 1) * span).min(rows);
            // Rows were rebased by a multiple of the span, so every triplet
            // fits `0..row_end-row_start` by construction.
            #[allow(clippy::expect_used)] // xtask: invariant documented above
            let m = CooMatrix::from_triplets(row_end - row_start, matrix.cols(), triplets)
                .expect("partition triplets are in range by construction");
            RowPartition {
                index,
                row_start,
                row_end,
                matrix: m,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chason_sparse::generators::uniform_random;

    #[test]
    fn windows_cover_every_entry_once() {
        let m = uniform_random(50, 100, 400, 5);
        let windows = partition_columns(&m, 16);
        let total: usize = windows.iter().map(|w| w.matrix.nnz()).sum();
        assert_eq!(total, 400);
        // Reconstituting global coordinates recovers the source.
        let mut rebuilt = Vec::new();
        for w in &windows {
            for &(r, c, v) in w.matrix.iter() {
                rebuilt.push((r, c + w.col_start, v));
            }
        }
        rebuilt.sort_by_key(|&(r, c, _)| (r, c));
        assert_eq!(rebuilt, m.triplets());
    }

    #[test]
    fn window_boundaries_are_contiguous() {
        let m = uniform_random(10, 100, 50, 1);
        let windows = partition_columns(&m, 30);
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[0].col_start, 0);
        assert_eq!(windows[3].col_end, 100);
        for pair in windows.windows(2) {
            assert_eq!(pair[0].col_end, pair[1].col_start);
        }
        assert_eq!(windows[3].width(), 10); // trailing partial window
    }

    #[test]
    fn narrow_matrix_is_a_single_window() {
        let m = uniform_random(10, 10, 20, 2);
        let windows = partition_paper_windows(&m);
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].matrix, m);
    }

    #[test]
    fn zero_column_matrix_has_no_windows() {
        let m = chason_sparse::CooMatrix::new(5, 0);
        assert!(partition_columns(&m, 8).is_empty());
    }

    #[test]
    fn window_count_math() {
        assert_eq!(window_count(8192, 8192), 1);
        assert_eq!(window_count(8193, 8192), 2);
        assert_eq!(window_count(0, 8192), 0);
        assert_eq!(window_count(10, 0), 0);
    }

    #[test]
    fn row_partitions_cover_every_entry_once() {
        let m = uniform_random(100, 20, 300, 4);
        let parts = partition_rows_capacity(&m, 3, 8); // spans of 24 rows
        assert_eq!(parts.len(), 100usize.div_ceil(24));
        let total: usize = parts.iter().map(|p| p.matrix.nnz()).sum();
        assert_eq!(total, 300);
        let mut rebuilt = Vec::new();
        for p in &parts {
            for &(r, c, v) in p.matrix.iter() {
                rebuilt.push((r + p.row_start, c, v));
            }
        }
        rebuilt.sort_by_key(|&(r, c, _)| (r, c));
        assert_eq!(rebuilt, m.triplets());
    }

    #[test]
    fn row_partitions_preserve_pe_assignment() {
        let m = uniform_random(64, 8, 120, 9);
        let total_pes = 8;
        for p in partition_rows_capacity(&m, 2, total_pes) {
            for &(r, _, _) in p.matrix.iter() {
                assert_eq!(
                    (r + p.row_start) % total_pes,
                    r % total_pes,
                    "rebase must not change the PE a row maps to"
                );
            }
        }
    }

    #[test]
    fn single_partition_when_capacity_suffices() {
        let m = uniform_random(16, 16, 40, 2);
        let parts = partition_rows_capacity(&m, 8, 4);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].matrix, m);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let m = chason_sparse::CooMatrix::new(4, 4);
        let _ = partition_rows_capacity(&m, 0, 4);
    }

    #[test]
    #[should_panic(expected = "window width must be positive")]
    fn zero_window_width_is_rejected() {
        let m = chason_sparse::CooMatrix::new(1, 1);
        let _ = partition_columns(&m, 0);
    }
}
