//! A bounded LRU cache with hit/miss/eviction counters.
//!
//! Schedule plans are the repo's most expensive derived artifact, and both
//! the iterative-solver backends and the `chason-serve` daemon want to keep
//! them around keyed by [`PlanKey`](crate::plan::PlanKey). The solvers
//! originally used a plain `HashMap`, which grows without bound in a
//! long-lived process — acceptable for one CLI invocation, not for a daemon
//! serving arbitrary matrices. [`LruCache`] is the shared replacement: a
//! fixed-capacity map that evicts the least-recently-used entry on insert
//! and counts hits, misses, and evictions so cache effectiveness is
//! observable (`chason client stats` surfaces these numbers).
//!
//! The implementation favours simplicity over asymptotics: recency is a
//! monotonic tick per entry and eviction scans for the minimum, so `insert`
//! is `O(len)`. Plan caches hold tens of entries, each worth milliseconds
//! of scheduling — the scan is noise. Not internally synchronized; wrap in
//! a `Mutex` to share across threads.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

/// Observable counters of an [`LruCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by inserts into a full cache.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot<V> {
    value: V,
    last_used: u64,
}

/// A bounded least-recently-used cache. See the module docs for the
/// intended use and complexity trade-offs.
pub struct LruCache<K, V> {
    map: HashMap<K, Slot<V>>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (clamped to at
    /// least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruCache {
            map: HashMap::with_capacity(capacity.min(1024)),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, marking the entry most-recently-used and recording a
    /// hit or miss.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                self.hits += 1;
                Some(&slot.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without touching recency or the hit/miss counters.
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.get(key).map(|slot| &slot.value)
    }

    /// Whether `key` is resident, without touching recency or counters.
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.contains_key(key)
    }

    /// Inserts (or replaces) an entry, evicting the least-recently-used one
    /// first when the cache is full. Returns the displaced entry: the
    /// previous value under `key`, or the evicted (key, value) pair.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.map.get_mut(&key) {
            slot.last_used = tick;
            let old = std::mem::replace(&mut slot.value, value);
            return Some((key, old));
        }
        let evicted = if self.map.len() >= self.capacity {
            self.evict_lru()
        } else {
            None
        };
        self.map.insert(
            key,
            Slot {
                value,
                last_used: tick,
            },
        );
        evicted
    }

    /// Looks up `key` and, on a miss, builds the value with `make` and
    /// inserts it (evicting if needed). Returns a reference to the cached
    /// value either way.
    pub fn get_or_insert_with(&mut self, key: K, make: impl FnOnce() -> V) -> &V {
        if self.get(&key).is_none() {
            let value = make();
            self.insert(key.clone(), value);
        }
        // The entry is resident by construction.
        #[allow(clippy::expect_used)] // inserted on the line above
        let slot = self.map.get(&key).expect("entry resident after insert");
        &slot.value
    }

    fn evict_lru(&mut self) -> Option<(K, V)> {
        let victim = self
            .map
            .iter()
            .min_by_key(|(_, slot)| slot.last_used)
            .map(|(k, _)| k.clone())?;
        let slot = self.map.remove(&victim)?;
        self.evictions += 1;
        Some((victim, slot.value))
    }

    /// Removes an entry, returning its value.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.remove(key).map(|slot| slot.value)
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the cache's counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.map.len(),
            capacity: self.capacity,
        }
    }
}

impl<K: Eq + Hash, V> std::fmt::Debug for LruCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCache")
            .field("len", &self.map.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("evictions", &self.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        assert!(cache.insert("a", 1).is_none());
        assert!(cache.insert("b", 2).is_none());
        assert_eq!(cache.get("a"), Some(&1)); // "b" is now the LRU entry
        let evicted = cache.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert!(cache.contains("a") && cache.contains("c"));
        assert!(!cache.contains("b"));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn counters_track_hits_misses_evictions() {
        let mut cache = LruCache::new(1);
        assert_eq!(cache.get("x"), None);
        cache.insert("x", 10);
        assert_eq!(cache.get("x"), Some(&10));
        cache.insert("y", 20); // evicts x
        assert_eq!(cache.get("x"), None);
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.evictions),
            (1, 2, 1),
            "{stats:?}"
        );
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!((stats.len, stats.capacity), (1, 1));
    }

    #[test]
    fn replacing_a_key_returns_the_old_value_without_eviction() {
        let mut cache = LruCache::new(1);
        cache.insert("k", 1);
        assert_eq!(cache.insert("k", 2), Some(("k", 1)));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.peek("k"), Some(&2));
    }

    #[test]
    fn peek_does_not_disturb_recency_or_counters() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.peek("a"), Some(&1));
        // "a" is still the LRU entry because peek did not bump it.
        assert_eq!(cache.insert("c", 3), Some(("a", 1)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }

    #[test]
    fn get_or_insert_with_builds_once() {
        let mut cache = LruCache::new(4);
        let mut builds = 0;
        for _ in 0..3 {
            let v = *cache.get_or_insert_with(7u32, || {
                builds += 1;
                42u64
            });
            assert_eq!(v, 42);
        }
        assert_eq!(builds, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut cache = LruCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(1, 1);
        cache.insert(2, 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&2));
    }

    #[test]
    fn remove_and_clear() {
        let mut cache = LruCache::new(4);
        cache.insert(1, "one");
        cache.insert(2, "two");
        assert_eq!(cache.remove(&1), Some("one"));
        assert_eq!(cache.remove(&1), None);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 0, "remove/clear are not evictions");
    }

    /// Version-aware plan-cache key shape: `(fingerprint, version, config)`
    /// as used by `chason-serve` for dynamic matrices.
    type VersionedKey = (u64, u64, u8);

    #[test]
    fn multi_version_pressure_evicts_least_recent_version() {
        let mut cache: LruCache<VersionedKey, &'static str> = LruCache::new(3);
        // Three versions of the same matrix fill the cache.
        cache.insert((0xabc, 0, 0), "v0");
        cache.insert((0xabc, 1, 0), "v1");
        cache.insert((0xabc, 2, 0), "v2");
        // Touch v0 and v2 so v1 is the least recently used version.
        assert!(cache.get(&(0xabc, 0, 0)).is_some());
        assert!(cache.get(&(0xabc, 2, 0)).is_some());
        let evicted = cache.insert((0xdef, 0, 0), "other");
        assert_eq!(evicted, Some(((0xabc, 1, 0), "v1")));
        assert!(cache.contains(&(0xabc, 0, 0)));
        assert!(cache.contains(&(0xabc, 2, 0)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn update_invalidation_counts_a_miss_then_a_hit() {
        let mut cache: LruCache<VersionedKey, &'static str> = LruCache::new(4);
        cache.insert((7, 0, 0), "plan-v0");
        assert!(cache.get(&(7, 0, 0)).is_some());
        // An update bumps the version; the old plan no longer matches.
        assert!(cache.get(&(7, 1, 0)).is_none());
        cache.insert((7, 1, 0), "plan-v1");
        assert!(cache.get(&(7, 1, 0)).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        // Explicit invalidation of the superseded version frees residency
        // without counting as an eviction.
        assert_eq!(cache.remove(&(7, 0, 0)), Some("plan-v0"));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn versions_of_one_matrix_do_not_collide_across_configs() {
        let mut cache: LruCache<VersionedKey, u32> = LruCache::new(8);
        cache.insert((9, 0, 0), 100);
        cache.insert((9, 0, 1), 200);
        cache.insert((9, 1, 0), 101);
        assert_eq!(cache.get(&(9, 0, 0)), Some(&100));
        assert_eq!(cache.get(&(9, 0, 1)), Some(&200));
        assert_eq!(cache.get(&(9, 1, 0)), Some(&101));
        assert_eq!(cache.len(), 3);
    }
}
