//! Malformed-input corpus for the binary artifact readers.
//!
//! `chason-serve` feeds `read_plan` bytes straight off a socket, so the
//! readers must hard-fail with a typed [`ExportError`] on *any* input —
//! truncated, bit-flipped, or count-bombed — without panicking and without
//! allocating proportionally to attacker-declared counts.

use chason_core::export::{read_plan, read_schedule, write_plan, write_schedule, ExportError};
use chason_core::plan::{PassPlan, PlanKey, PlanWindow, SpmvPlan};
use chason_core::schedule::{Crhcs, Scheduler, SchedulerConfig};
use chason_sparse::generators::power_law;

fn sample_plan_bytes() -> Vec<u8> {
    let m = power_law(64, 64, 300, 1.7, 5);
    let config = SchedulerConfig::toy(4, 4, 6);
    let schedule = Crhcs::new().schedule(&m, &config);
    let stalls = schedule.stalls();
    let stream_cycles = schedule.stream_cycles();
    let plan = SpmvPlan {
        key: PlanKey::new(&m, config),
        engine: "chason".to_string(),
        window: 8192,
        rows: 64,
        cols: 64,
        nnz: 300,
        passes: vec![PassPlan {
            row_start: 0,
            row_end: 64,
            nnz: 300,
            windows: vec![PlanWindow {
                col_start: 0,
                col_end: 64,
                nnz: 300,
                stalls,
                stream_cycles,
                schedule,
            }],
        }],
    };
    let mut buf = Vec::new();
    write_plan(&mut buf, &plan).unwrap();
    buf
}

fn sample_schedule_bytes() -> Vec<u8> {
    let m = power_law(64, 64, 300, 1.7, 5);
    let schedule = Crhcs::new().schedule(&m, &SchedulerConfig::toy(4, 4, 6));
    let mut buf = Vec::new();
    write_schedule(&mut buf, &schedule).unwrap();
    buf
}

/// Deterministic PRNG for the mutation corpus (SplitMix64).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[test]
fn every_truncation_of_a_plan_is_a_typed_error() {
    let bytes = sample_plan_bytes();
    // Every strict prefix must fail cleanly; step 1 for the header region
    // (where field boundaries live), a coarser stride over the slot data.
    let fine_region = 256.min(bytes.len());
    let lengths = (0..fine_region).chain((fine_region..bytes.len()).step_by(7));
    for len in lengths {
        match read_plan(&bytes[..len]) {
            Err(ExportError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "len {len}")
            }
            Err(_) => {} // a truncated count field may decode as garbage first
            Ok(_) => panic!("truncated plan of {len} bytes parsed successfully"),
        }
    }
}

#[test]
fn every_truncation_of_a_schedule_is_a_typed_error() {
    let bytes = sample_schedule_bytes();
    for len in (0..bytes.len()).step_by(3) {
        assert!(
            read_schedule(&bytes[..len]).is_err(),
            "truncated schedule of {len} bytes parsed"
        );
    }
}

#[test]
fn random_byte_corruptions_never_panic() {
    let bytes = sample_plan_bytes();
    let mut rng = SplitMix64(0x5eed);
    for _ in 0..4000 {
        let mut corrupted = bytes.clone();
        let pos = (rng.next() as usize) % corrupted.len();
        let val = rng.next() as u8;
        corrupted[pos] = val;
        // Either outcome is fine; what must never happen is a panic or an
        // unbounded allocation. (Corruptions in slot payload bytes can
        // still decode to a structurally valid plan.)
        let _ = read_plan(&corrupted[..]);
    }
}

#[test]
fn random_multi_byte_corruptions_never_panic() {
    let bytes = sample_plan_bytes();
    let mut rng = SplitMix64(0xfeed_beef);
    for _ in 0..1000 {
        let mut corrupted = bytes.clone();
        for _ in 0..1 + (rng.next() % 8) {
            let pos = (rng.next() as usize) % corrupted.len();
            corrupted[pos] = rng.next() as u8;
        }
        let _ = read_plan(&corrupted[..]);
    }
}

#[test]
fn count_bomb_fails_fast_without_allocating() {
    // A CHPL header that declares the format cap of 2^20 passes and then
    // ends. Before the hardening this pre-allocated per declared count;
    // now it must fail with clean truncation after reading ~0 bytes.
    let mut bytes = sample_plan_bytes();
    // pass count offset: magic 4 + version 4 + fingerprint 8 + config 20 +
    // engine len 4 + "chason" 6 + window/rows/cols/nnz 32 = 78.
    bytes.truncate(78);
    bytes.extend_from_slice(&(1u64 << 20).to_le_bytes());
    let err = read_plan(&bytes[..]).unwrap_err();
    assert!(matches!(err, ExportError::Io(_)), "{err}");

    // One past the cap is rejected as Oversized before any read.
    let mut bytes = sample_plan_bytes();
    bytes.truncate(78);
    bytes.extend_from_slice(&((1u64 << 20) + 1).to_le_bytes());
    let err = read_plan(&bytes[..]).unwrap_err();
    assert!(
        matches!(
            err,
            ExportError::Oversized {
                what: "pass",
                got: _,
                cap: _
            }
        ),
        "{err}"
    );
}

#[test]
fn schedule_cycle_bomb_fails_fast_without_allocating() {
    // CHSN header declaring 2^30 cycles with no list data: the implied
    // 2^30 × pes word count is under the format cap, so the reader must
    // hit truncation (not an allocation abort) almost immediately.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"CHSN");
    bytes.extend_from_slice(&1u32.to_le_bytes()); // version
    for v in [4u32, 4, 6, 1] {
        bytes.extend_from_slice(&v.to_le_bytes()); // channels/pes/distance/hops
    }
    for v in [64u64, 64, 300, 1 << 30] {
        bytes.extend_from_slice(&v.to_le_bytes()); // rows/cols/nnz/cycles
    }
    let err = read_schedule(&bytes[..]).unwrap_err();
    assert!(matches!(err, ExportError::Io(_)), "{err}");
}

#[test]
fn oversized_engine_name_is_rejected() {
    let mut bytes = sample_plan_bytes();
    // engine-name length field offset: magic 4 + version 4 + fingerprint 8
    // + config 20 = 36.
    bytes[36..40].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = read_plan(&bytes[..]).unwrap_err();
    assert!(err.to_string().contains("engine name"), "{err}");
}

#[test]
fn foreign_containers_are_rejected_with_bad_magic() {
    let plan = sample_plan_bytes();
    let schedule = sample_schedule_bytes();
    // Feeding each container to the other reader is a magic failure.
    assert!(matches!(
        read_plan(&schedule[..]).unwrap_err(),
        ExportError::BadMagic { expected: "CHPL" }
    ));
    assert!(matches!(
        read_schedule(&plan[..]).unwrap_err(),
        ExportError::BadMagic { expected: "CHSN" }
    ));
    assert!(read_plan(&b""[..]).is_err());
    assert!(read_schedule(&b"CH"[..]).is_err());
}

#[test]
fn export_error_converts_to_io_error() {
    let err = read_plan(&b"XXXXXXXX"[..]).unwrap_err();
    let io_err: std::io::Error = err.into();
    assert_eq!(io_err.kind(), std::io::ErrorKind::InvalidData);
}
