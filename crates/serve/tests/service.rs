//! End-to-end tests of the CHSP service over real sockets on ephemeral
//! ports: happy path, malformed and oversized frames, queue-full
//! shedding, mid-request disconnects, and graceful shutdown draining.

use chason_serve::client::Client;
use chason_serve::proto::{
    decode_reply, encode_request, read_frame_blocking, write_frame, Engine, ErrorCode, Reply,
    Request, SolverKind, DEFAULT_MAX_FRAME,
};
use chason_serve::server::{ServeConfig, Server};
use chason_testutil::spd_system;
use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

fn start(config: ServeConfig) -> Server {
    Server::start(config).expect("server binds an ephemeral port")
}

fn small_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    }
}

/// Sends one raw frame and reads one raw reply on a bare socket.
fn raw_round_trip(stream: &mut TcpStream, payload: &[u8]) -> Reply {
    write_frame(stream, payload).expect("write frame");
    let reply = read_frame_blocking(stream, DEFAULT_MAX_FRAME).expect("read reply frame");
    decode_reply(&reply).expect("decode reply")
}

#[test]
fn happy_path_load_spmv_solve_plan_stats_over_concurrent_clients() {
    let server = start(small_config());
    let addr = server.local_addr();
    let handles: Vec<_> = (0..3)
        .map(|i| {
            thread::spawn(move || {
                let (a, b) = spd_system(64 + 8 * i, 40 + i as u64);
                let mut client = Client::connect(addr).expect("connect");
                let (handle, _) = client.load_matrix(&a).expect("load");

                // SpMV on every backend matches the local reference.
                let expected = a.spmv(&b);
                for engine in [Engine::Cpu, Engine::Chason, Engine::Serpens] {
                    let (y, _, simulated) = client.spmv(handle, engine, b.clone()).expect("spmv");
                    assert_eq!(y.len(), expected.len());
                    for (got, want) in y.iter().zip(&expected) {
                        assert!((got - want).abs() <= 1e-3 * want.abs().max(1.0));
                    }
                    if engine == Engine::Cpu {
                        assert_eq!(simulated, 0);
                    } else {
                        assert!(simulated > 0, "{engine:?} must report modeled time");
                    }
                }

                // Both solvers converge on the SPD system.
                for solver in [SolverKind::Cg, SolverKind::Jacobi] {
                    let outcome = client
                        .solve(handle, Engine::Chason, solver, 200, 1e-4, b.clone())
                        .expect("solve");
                    assert!(
                        outcome.converged,
                        "{solver:?} residual {}",
                        outcome.residual
                    );
                    assert!(outcome.simulated_nanos > 0);
                }

                // The plan artifact is a valid CHPL container for this matrix.
                let bytes = client.plan(handle, Engine::Chason).expect("plan");
                let plan = chason_core::export::read_plan(&bytes[..]).expect("artifact decodes");
                assert_eq!(plan.nnz, a.nnz());
                handle
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let stats = server.stats();
    assert_eq!(stats.requests_spmv, 9);
    assert_eq!(stats.requests_solve, 6);
    assert_eq!(stats.requests_plan, 3);
    assert_eq!(stats.matrices_resident, 3);
    assert!(
        stats.plan_cache_hits > 0,
        "solve iterations and repeat spmv must hit the shared plan cache: {stats:?}"
    );
    assert_eq!(stats.shed, 0);

    let mut client = Client::connect(addr).expect("connect");
    // The Prometheus-style exposition is served inline and agrees with the
    // Stats counters.
    let metrics = client.metrics().expect("metrics");
    assert!(
        metrics.contains("chsp_requests_spmv_total 9"),
        "exposition must carry the spmv counter:\n{metrics}"
    );
    assert!(metrics.contains("# TYPE chsp_service_micros histogram"));
    assert!(metrics.contains("chsp_matrices_resident 3"));
    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn repeat_loads_are_idempotent_and_unknown_handles_are_typed_errors() {
    let server = start(small_config());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let (a, _) = spd_system(32, 5);
    let (h1, fresh1) = client.load_matrix(&a).expect("load");
    let (h2, fresh2) = client.load_matrix(&a).expect("reload");
    assert_eq!(h1, h2);
    assert!(fresh1 && !fresh2);

    let err = client
        .spmv(0xdead_beef, Engine::Cpu, vec![1.0; 32])
        .unwrap_err();
    match err {
        chason_serve::client::ClientError::Server { code, .. } => {
            assert_eq!(code, ErrorCode::UnknownHandle)
        }
        other => panic!("expected UnknownHandle, got {other}"),
    }

    // An explicit zero value is unschedulable (§3.2 reserves the zero word).
    let reply = client
        .request(&Request::LoadMatrix {
            rows: 2,
            cols: 2,
            triplets: vec![(0, 0, 1.0), (1, 1, 0.0)],
        })
        .expect("request");
    assert!(
        matches!(&reply, Reply::Error { code: ErrorCode::BadRequest, message }
            if message.contains("unschedulable")),
        "{reply:?}"
    );

    // A rectangular solve is rejected up front instead of panicking a worker.
    let reply = client
        .request(&Request::LoadMatrix {
            rows: 2,
            cols: 3,
            triplets: vec![(0, 0, 1.0), (1, 2, 2.0)],
        })
        .expect("request");
    let Reply::Loaded { handle, .. } = reply else {
        panic!("{reply:?}")
    };
    let err = client
        .solve(handle, Engine::Cpu, SolverKind::Cg, 5, 1e-3, vec![1.0, 1.0])
        .unwrap_err();
    match err {
        chason_serve::client::ClientError::Server { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("square"), "{message}");
        }
        other => panic!("expected BadRequest, got {other}"),
    }

    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn malformed_frame_gets_a_typed_error_and_the_connection_survives() {
    let server = start(small_config());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // Garbage opcode.
    match raw_round_trip(&mut stream, &[0x6f, 1, 2, 3]) {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::MalformedFrame),
        other => panic!("{other:?}"),
    }
    // Truncated body: Spmv opcode with nothing after it.
    match raw_round_trip(&mut stream, &[0x02]) {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::MalformedFrame),
        other => panic!("{other:?}"),
    }
    // The same connection still serves valid requests.
    match raw_round_trip(&mut stream, &encode_request(&Request::Stats)) {
        Reply::Stats(snapshot) => assert_eq!(snapshot.requests_stats, 1),
        other => panic!("{other:?}"),
    }

    server.shutdown();
    server.join();
}

#[test]
fn oversized_frame_is_refused_and_the_connection_closed() {
    let server = start(ServeConfig {
        max_frame_len: 1024,
        ..small_config()
    });
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Declare a 1 MiB payload against a 1 KiB cap; the reply must arrive
    // before any payload bytes are sent.
    stream
        .write_all(&(1_048_576u32).to_le_bytes())
        .expect("send header");
    let reply = read_frame_blocking(&mut stream, DEFAULT_MAX_FRAME).expect("read reply");
    match decode_reply(&reply).expect("decode") {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::FrameTooLarge),
        other => panic!("{other:?}"),
    }
    // The server cannot resynchronize, so it hangs up: the next read sees
    // EOF.
    assert!(read_frame_blocking(&mut stream, DEFAULT_MAX_FRAME).is_err());

    server.shutdown();
    server.join();
}

#[test]
fn full_queue_sheds_with_busy_and_keeps_the_connection() {
    let server = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        retry_after_ms: 7,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    // Occupy the single worker…
    let w1 = thread::spawn(move || {
        Client::connect(addr)
            .expect("connect")
            .sleep(600)
            .expect("sleep 1")
    });
    thread::sleep(Duration::from_millis(150));
    // …and fill the single queue slot.
    let w2 = thread::spawn(move || {
        Client::connect(addr)
            .expect("connect")
            .sleep(600)
            .expect("sleep 2")
    });
    thread::sleep(Duration::from_millis(150));

    let mut probe = Client::connect(addr).expect("connect");
    match probe
        .request(&Request::Sleep { millis: 1 })
        .expect("request")
    {
        Reply::Busy { retry_after_ms } => assert_eq!(retry_after_ms, 7),
        other => panic!("expected Busy, got {other:?}"),
    }
    // Shedding must not cost the connection: stats still works inline, and
    // records the shed.
    let stats = probe.stats().expect("stats after Busy");
    assert!(stats.shed >= 1, "{stats:?}");
    assert!(stats.queue_depth_hwm >= 1, "{stats:?}");

    // Once the backlog drains, the same connection's work is accepted.
    w1.join().expect("sleeper 1");
    w2.join().expect("sleeper 2");
    probe.sleep(1).expect("accepted after drain");

    probe.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn mid_request_disconnects_leave_the_server_healthy() {
    let server = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    // Disconnect mid-frame: header promises 100 bytes, only 10 arrive.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&100u32.to_le_bytes()).expect("header");
        stream.write_all(&[0u8; 10]).expect("partial payload");
    } // dropped here

    // Disconnect while a request is in flight: the worker's reply goes
    // nowhere, which must not hurt the pool.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write_frame(
            &mut stream,
            &encode_request(&Request::Sleep { millis: 200 }),
        )
        .expect("send sleep");
    } // dropped before the reply

    thread::sleep(Duration::from_millis(400));
    let mut client = Client::connect(addr).expect("connect");
    client.sleep(1).expect("worker pool still alive");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests_sleep, 2);

    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn shutdown_drains_in_flight_work_before_exiting() {
    let server = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    // A slow request in flight…
    let in_flight = thread::spawn(move || {
        Client::connect(addr)
            .expect("connect")
            .sleep(500)
            .expect("in-flight request must be answered during drain")
    });
    thread::sleep(Duration::from_millis(100));

    // …while another connection asks for shutdown.
    let mut closer = Client::connect(addr).expect("connect");
    closer.shutdown().expect("shutdown acknowledged");

    // The in-flight request completes (drain), then everything exits.
    in_flight.join().expect("drained request");
    server.join();

    // The listener is gone: new connections are refused or reset.
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut stream) => raw_is_dead(&mut stream),
    };
    assert!(refused, "server must stop accepting after drain");
}

/// After shutdown the OS may still complete a TCP handshake on the dead
/// listener's backlog; a request on such a socket must fail.
fn raw_is_dead(stream: &mut TcpStream) -> bool {
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .expect("set timeout");
    if write_frame(stream, &encode_request(&Request::Stats)).is_err() {
        return true;
    }
    read_frame_blocking(stream, DEFAULT_MAX_FRAME).is_err()
}

#[test]
fn updates_interleave_with_spmv_on_one_connection_without_stale_plans() {
    use chason_sparse::generators::uniform_random;
    use chason_sparse::MatrixDelta;

    let server = start(small_config());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Wide enough for three column windows under the paper's W = 8192, so
    // a splice re-schedules a strict subset of windows.
    let m0 = uniform_random(128, 20_000, 4_000, 11);
    let (handle, fresh) = client.load_matrix(&m0).expect("load");
    assert!(fresh);
    let x: Vec<f32> = (0..m0.cols()).map(|i| ((i % 13) as f32) - 6.0).collect();

    let check = |client: &mut Client, reference: &chason_sparse::CooMatrix| {
        let expected = reference.spmv(&x);
        for engine in [Engine::Cpu, Engine::Chason, Engine::Serpens] {
            let (y, _, _) = client.spmv(handle, engine, x.clone()).expect("spmv");
            for (row, (got, want)) in y.iter().zip(&expected).enumerate() {
                assert!(
                    (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                    "{engine:?} row {row}: got {got}, want {want}"
                );
            }
        }
    };

    // Warm every engine's plan against version 0.
    check(&mut client, &m0);

    // Delta 1: revalue the first explicit entry by a large factor (so a
    // stale plan would produce a visibly wrong row), delete the last, and
    // insert at a vacant coordinate.
    let triplets: Vec<(usize, usize, f32)> = m0.iter().copied().collect();
    let &(r0, c0, v0) = triplets.first().expect("non-empty matrix");
    let &(r1, c1, _) = triplets.last().expect("non-empty matrix");
    let vacant_col = (0..m0.cols())
        .find(|&c| !triplets.iter().any(|&(r, tc, _)| r == 0 && tc == c))
        .expect("a vacant coordinate in row 0");

    let mut delta = MatrixDelta::for_matrix(&m0);
    delta.push_revalue(r0, c0, v0 * 64.0).expect("revalue");
    delta.push_delete(r1, c1).expect("delete");
    delta.push_insert(0, vacant_col, 2.5).expect("insert");
    let m1 = delta.apply(&m0).expect("reference apply");

    let outcome = client
        .update(
            handle,
            vec![(0, vacant_col as u64, 2.5)],
            vec![(r0 as u64, c0 as u64, v0 * 64.0)],
            vec![(r1 as u64, c1 as u64)],
        )
        .expect("update");
    assert_eq!(outcome.version, 1);
    assert_eq!(outcome.nnz, m1.nnz() as u64);
    // Both simulated engines had warm plans; both must have been spliced,
    // touching some but not every window.
    assert_eq!(outcome.plans_spliced, 2);
    assert!(outcome.windows_replanned >= 1);
    assert!(outcome.windows_total >= 3);
    assert!(outcome.windows_replanned < outcome.plans_spliced as u64 * outcome.windows_total);

    // The very next products on the same connection see version 1.
    check(&mut client, &m1);

    // Delta 2 against the updated matrix: put the deleted entry back.
    let mut delta2 = MatrixDelta::for_matrix(&m1);
    delta2.push_insert(r1, c1, -3.75).expect("insert back");
    let m2 = delta2.apply(&m1).expect("reference apply");
    let outcome2 = client
        .update(handle, vec![(r1 as u64, c1 as u64, -3.75)], vec![], vec![])
        .expect("second update");
    assert_eq!(outcome2.version, 2);
    assert_eq!(outcome2.nnz, m2.nnz() as u64);
    check(&mut client, &m2);

    // Bad deltas are typed errors and leave the resident version alone.
    for (ins, rev, del) in [
        // Insert over an existing entry.
        (vec![(r0 as u64, c0 as u64, 1.0)], vec![], vec![]),
        // Revalue of a vacant coordinate (row 1 may hold it: pick far row).
        (vec![], vec![(u64::MAX, 0, 1.0)], vec![]),
        // Unschedulable explicit zero.
        (vec![], vec![(r0 as u64, c0 as u64, 0.0)], vec![]),
    ] {
        let err = client.update(handle, ins, rev, del).expect_err("bad delta");
        assert!(
            matches!(
                err,
                chason_serve::client::ClientError::Server {
                    code: ErrorCode::BadRequest,
                    ..
                }
            ),
            "wanted BadRequest, got {err}"
        );
    }
    check(&mut client, &m2);

    let stats = client.stats().expect("stats");
    // Acceptance counters count every queued Update, rejected ones
    // included: 2 applied + 3 refused.
    assert_eq!(stats.requests_update, 5);
    assert_eq!(stats.plans_spliced, outcome.plans_spliced as u64 + 2);
    assert!(stats.replan_windows >= stats.plans_spliced);

    client.shutdown().expect("shutdown");
    server.join();
}
