//! Format-compat fixtures: the CHSP `Stats` reply byte layout is pinned
//! against a committed golden, so refactors of the server-side stats
//! plumbing (or a careless field reorder) cannot silently change the wire
//! format a CHSP v1 client depends on.

use chason_conformance::golden::check_or_bless_bytes;
use chason_serve::proto::{
    decode_reply, encode_reply, encode_request, Reply, Request, StatsSnapshot,
};
use std::path::Path;

/// Every field gets a distinct value, so any reordering or dropped word
/// moves at least one byte of the golden.
fn pinned_snapshot() -> StatsSnapshot {
    StatsSnapshot {
        uptime_millis: 101,
        requests_load: 202,
        requests_spmv: 303,
        requests_solve: 404,
        requests_plan: 505,
        requests_stats: 606,
        requests_sleep: 707,
        shed: 808,
        batched: 909,
        queue_depth_hwm: 1_010,
        plan_cache_hits: 1_111,
        plan_cache_misses: 1_212,
        plan_cache_evictions: 1_313,
        plan_cache_len: 1_414,
        plan_cache_capacity: 1_515,
        matrices_resident: 1_616,
        matrix_evictions: 1_717,
        service_p50_micros: 1_818,
        service_p99_micros: 1_919,
        service_max_micros: 2_020,
        service_samples: 2_121,
        queue_p50_micros: 2_222,
        queue_p99_micros: 2_323,
        queue_max_micros: 2_424,
        requests_update: 2_525,
        plans_spliced: 2_626,
        replan_windows: 2_727,
    }
}

fn golden_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../tests/golden/{name}"))
}

#[test]
fn stats_reply_bytes_are_pinned() {
    let wire = encode_reply(&Reply::Stats(pinned_snapshot()));
    // Structure first: opcode byte plus 27 little-endian u64 words. New
    // fields only ever append: the 2026-08 re-blesses added three
    // queue-wait words (p50, p99, max) and then three dynamic-matrix words
    // (update requests, plan splices, replanned windows); every earlier
    // prefix is byte-identical to the previous fixtures.
    assert_eq!(wire.len(), 1 + 27 * 8);
    assert_eq!(wire[0], 0x85);
    if let Err(err) = check_or_bless_bytes(&golden_path("stats_reply.bin"), &wire) {
        panic!("{err}");
    }
    // And the pinned bytes still decode to the same snapshot.
    assert_eq!(
        decode_reply(&wire).expect("pinned reply decodes"),
        Reply::Stats(pinned_snapshot())
    );
}

#[test]
fn update_request_bytes_are_pinned() {
    // One op of each kind with asymmetric coordinates, so a swapped
    // row/col, reordered section, or dropped count moves the golden.
    let wire = encode_request(&Request::Update {
        handle: 0x1122_3344_5566_7788,
        inserts: vec![(9, 2, 1.5)],
        revalues: vec![(3, 8, -2.25)],
        deletes: vec![(4, 7)],
    });
    // opcode + handle + three u64 counts + 2 triplets @ 20 + 1 coord @ 16.
    assert_eq!(wire.len(), 1 + 8 + 24 + 2 * 20 + 16);
    assert_eq!(wire[0], 0x09);
    if let Err(err) = check_or_bless_bytes(&golden_path("update_request.bin"), &wire) {
        panic!("{err}");
    }
    let decoded = chason_serve::proto::decode_request(&wire).expect("pinned request decodes");
    assert_eq!(encode_request(&decoded), wire);
}

#[test]
fn updated_reply_bytes_are_pinned() {
    let wire = encode_reply(&Reply::Updated {
        version: 11,
        nnz: 22,
        plans_spliced: 2,
        windows_replanned: 33,
        windows_total: 44,
    });
    // opcode + version + nnz + plans_spliced(u32) + replanned + total.
    assert_eq!(wire.len(), 1 + 8 + 8 + 4 + 8 + 8);
    assert_eq!(wire[0], 0x8A);
    if let Err(err) = check_or_bless_bytes(&golden_path("updated_reply.bin"), &wire) {
        panic!("{err}");
    }
    assert_eq!(
        decode_reply(&wire).expect("pinned reply decodes"),
        Reply::Updated {
            version: 11,
            nnz: 22,
            plans_spliced: 2,
            windows_replanned: 33,
            windows_total: 44,
        }
    );
}

#[test]
fn metrics_frames_use_the_reserved_opcodes() {
    assert_eq!(encode_request(&Request::Metrics), [0x08]);
    let wire = encode_reply(&Reply::MetricsText {
        text: "chsp_shed_total 0\n".to_string(),
    });
    assert_eq!(wire[0], 0x89);
    assert_eq!(
        decode_reply(&wire).expect("metrics reply decodes"),
        Reply::MetricsText {
            text: "chsp_shed_total 0\n".to_string()
        }
    );
}
