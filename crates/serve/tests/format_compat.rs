//! Format-compat fixtures: the CHSP `Stats` reply byte layout is pinned
//! against a committed golden, so refactors of the server-side stats
//! plumbing (or a careless field reorder) cannot silently change the wire
//! format a CHSP v1 client depends on.

use chason_conformance::golden::check_or_bless_bytes;
use chason_serve::proto::{
    decode_reply, encode_reply, encode_request, Reply, Request, StatsSnapshot,
};
use std::path::Path;

/// Every field gets a distinct value, so any reordering or dropped word
/// moves at least one byte of the golden.
fn pinned_snapshot() -> StatsSnapshot {
    StatsSnapshot {
        uptime_millis: 101,
        requests_load: 202,
        requests_spmv: 303,
        requests_solve: 404,
        requests_plan: 505,
        requests_stats: 606,
        requests_sleep: 707,
        shed: 808,
        batched: 909,
        queue_depth_hwm: 1_010,
        plan_cache_hits: 1_111,
        plan_cache_misses: 1_212,
        plan_cache_evictions: 1_313,
        plan_cache_len: 1_414,
        plan_cache_capacity: 1_515,
        matrices_resident: 1_616,
        matrix_evictions: 1_717,
        service_p50_micros: 1_818,
        service_p99_micros: 1_919,
        service_max_micros: 2_020,
        service_samples: 2_121,
        queue_p50_micros: 2_222,
        queue_p99_micros: 2_323,
        queue_max_micros: 2_424,
    }
}

fn golden_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../tests/golden/{name}"))
}

#[test]
fn stats_reply_bytes_are_pinned() {
    let wire = encode_reply(&Reply::Stats(pinned_snapshot()));
    // Structure first: opcode byte plus 24 little-endian u64 words. The
    // 2026-08 golden re-bless appended three queue-wait words (p50, p99,
    // max) when queue wait was split out of service time; the first 21
    // words are byte-identical to the previous fixture.
    assert_eq!(wire.len(), 1 + 24 * 8);
    assert_eq!(wire[0], 0x85);
    if let Err(err) = check_or_bless_bytes(&golden_path("stats_reply.bin"), &wire) {
        panic!("{err}");
    }
    // And the pinned bytes still decode to the same snapshot.
    assert_eq!(
        decode_reply(&wire).expect("pinned reply decodes"),
        Reply::Stats(pinned_snapshot())
    );
}

#[test]
fn metrics_frames_use_the_reserved_opcodes() {
    assert_eq!(encode_request(&Request::Metrics), [0x08]);
    let wire = encode_reply(&Reply::MetricsText {
        text: "chsp_shed_total 0\n".to_string(),
    });
    assert_eq!(wire[0], 0x89);
    assert_eq!(
        decode_reply(&wire).expect("metrics reply decodes"),
        Reply::MetricsText {
            text: "chsp_shed_total 0\n".to_string()
        }
    );
}
