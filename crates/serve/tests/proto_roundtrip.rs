//! Property tests: every CHSP frame type survives an encode/decode round
//! trip.
//!
//! The round-trip law is stated on the wire bytes —
//! `encode(decode(encode(m))) == encode(m)` — rather than on the decoded
//! values, so NaN float payloads (where `PartialEq` would lie) are covered
//! bit-exactly.

use chason_serve::proto::{
    decode_reply, decode_request, encode_reply, encode_request, read_frame_blocking, write_frame,
    Engine, ErrorCode, Reply, Request, SolverKind, StatsSnapshot,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn floats(bits: &[u32]) -> Vec<f32> {
    bits.iter().map(|&b| f32::from_bits(b)).collect()
}

fn snapshot_from(words: &[u64]) -> StatsSnapshot {
    StatsSnapshot {
        uptime_millis: words[0],
        requests_load: words[1],
        requests_spmv: words[2],
        requests_solve: words[3],
        requests_plan: words[4],
        requests_stats: words[5],
        requests_sleep: words[6],
        shed: words[7],
        batched: words[8],
        queue_depth_hwm: words[9],
        plan_cache_hits: words[10],
        plan_cache_misses: words[11],
        plan_cache_evictions: words[12],
        plan_cache_len: words[13],
        plan_cache_capacity: words[14],
        matrices_resident: words[15],
        matrix_evictions: words[16],
        service_p50_micros: words[17],
        service_p99_micros: words[18],
        service_max_micros: words[19],
        service_samples: words[20],
        queue_p50_micros: words[21],
        queue_p99_micros: words[22],
        queue_max_micros: words[23],
        requests_update: words[24],
        plans_spliced: words[25],
        replan_windows: words[26],
    }
}

const MESSAGES: [&str; 4] = ["", "queue full", "no such matrix", "Ω non-ascii detail ✓"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_request_variant_round_trips(
        selector in 0usize..9,
        handle in any::<u64>(),
        dims in (1u64..5000, 1u64..5000),
        engine_code in 0u8..3,
        solver_code in 0u8..2,
        max_iterations in any::<u32>(),
        tolerance_bits in any::<u64>(),
        value_bits in vec(any::<u32>(), 0..12),
        coords in vec((0u64..5000, 0u64..5000, any::<u32>()), 0..12),
        bare_coords in vec((0u64..5000, 0u64..5000), 0..12),
        millis in any::<u32>(),
    ) {
        let engine = Engine::from_code(engine_code).unwrap();
        let request = match selector {
            0 => Request::LoadMatrix {
                rows: dims.0,
                cols: dims.1,
                triplets: coords
                    .iter()
                    .map(|&(r, c, v)| (r, c, f32::from_bits(v)))
                    .collect(),
            },
            1 => Request::Spmv { handle, engine, x: floats(&value_bits) },
            2 => Request::Solve {
                handle,
                engine,
                solver: SolverKind::from_code(solver_code).unwrap(),
                max_iterations,
                tolerance: f64::from_bits(tolerance_bits),
                b: floats(&value_bits),
            },
            3 => Request::Plan { handle, engine },
            4 => Request::Stats,
            5 => Request::Shutdown,
            6 => Request::Metrics,
            7 => Request::Update {
                handle,
                inserts: coords
                    .iter()
                    .map(|&(r, c, v)| (r, c, f32::from_bits(v)))
                    .collect(),
                revalues: coords
                    .iter()
                    .rev()
                    .map(|&(r, c, v)| (c, r, f32::from_bits(v)))
                    .collect(),
                deletes: bare_coords,
            },
            _ => Request::Sleep { millis },
        };
        let wire = encode_request(&request);
        let decoded = decode_request(&wire).expect("encoded request must decode");
        prop_assert_eq!(encode_request(&decoded), wire);
    }

    #[test]
    fn every_reply_variant_round_trips(
        selector in 0usize..10,
        words in vec(any::<u64>(), 27),
        flag in any::<bool>(),
        value_bits in vec(any::<u32>(), 0..12),
        artifact in vec(any::<u8>(), 0..64),
        residual_bits in any::<u64>(),
        retry_after_ms in any::<u32>(),
        error_code in 1u8..10,
        message_index in 0usize..4,
    ) {
        let reply = match selector {
            0 => Reply::Loaded {
                handle: words[0],
                rows: words[1],
                cols: words[2],
                nnz: words[3],
                fresh: flag,
                version: words[8],
            },
            1 => Reply::Vector {
                y: floats(&value_bits),
                service_micros: words[4],
                simulated_nanos: words[5],
            },
            2 => Reply::Solved {
                solution: floats(&value_bits),
                iterations: words[6],
                residual: f64::from_bits(residual_bits),
                converged: flag,
                service_micros: words[7],
                simulated_nanos: words[8],
            },
            3 => Reply::PlanArtifact { bytes: artifact },
            4 => Reply::Stats(snapshot_from(&words)),
            5 => Reply::Done,
            6 => Reply::Busy { retry_after_ms },
            7 => Reply::MetricsText {
                text: MESSAGES[message_index].to_string(),
            },
            8 => Reply::Updated {
                version: words[9],
                nnz: words[10],
                plans_spliced: retry_after_ms,
                windows_replanned: words[11],
                windows_total: words[12],
            },
            _ => Reply::Error {
                code: ErrorCode::from_code(error_code).unwrap(),
                message: MESSAGES[message_index].to_string(),
            },
        };
        let wire = encode_reply(&reply);
        let decoded = decode_reply(&wire).expect("encoded reply must decode");
        prop_assert_eq!(encode_reply(&decoded), wire);
    }

    #[test]
    fn framing_round_trips_and_truncations_fail(
        payload in vec(any::<u8>(), 0..300),
        cut in any::<u64>(),
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        prop_assert_eq!(wire.len(), payload.len() + 4);
        let read = read_frame_blocking(&mut wire.as_slice(), 4096).expect("frame must read back");
        prop_assert_eq!(read, payload);
        // Any strict prefix must fail to read as a complete frame.
        let cut = (cut as usize) % wire.len();
        let truncated = &wire[..cut];
        prop_assert!(read_frame_blocking(&mut &truncated[..], 4096).is_err());
    }

    #[test]
    fn random_payload_bytes_never_panic_the_decoders(
        payload in vec(any::<u8>(), 0..200),
    ) {
        // Result is irrelevant; the property is "no panic, no unbounded
        // allocation" on arbitrary input.
        let _ = decode_request(&payload);
        let _ = decode_reply(&payload);
    }

    #[test]
    fn corrupted_encodings_never_panic(
        selector in 0usize..4,
        flip_at in any::<u64>(),
        flip_to in any::<u8>(),
        value_bits in vec(any::<u32>(), 1..8),
    ) {
        let wire = match selector {
            0 => encode_request(&Request::Spmv {
                handle: 9,
                engine: Engine::Chason,
                x: floats(&value_bits),
            }),
            1 => encode_reply(&Reply::Error {
                code: ErrorCode::BadRequest,
                message: "detail".to_string(),
            }),
            2 => encode_request(&Request::Update {
                handle: 9,
                inserts: vec![(1, 2, f32::from_bits(value_bits[0]))],
                revalues: vec![(3, 4, f32::from_bits(value_bits[0]))],
                deletes: vec![(5, 6)],
            }),
            _ => encode_reply(&Reply::Stats(StatsSnapshot::default())),
        };
        let mut corrupted = wire;
        let at = (flip_at as usize) % corrupted.len();
        corrupted[at] = flip_to;
        let _ = decode_request(&corrupted);
        let _ = decode_reply(&corrupted);
    }
}
