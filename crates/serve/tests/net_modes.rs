//! `--net` dual-mode coverage: the async readiness loop (the default) and
//! the classic thread-per-connection listener must behave identically at
//! the wire — including idle-timeout accounting, where the clock resets
//! on any *completed* frame (a reply going out), not only on request
//! dispatch. A request that runs longer than the idle timeout must still
//! get its reply, and the connection must stay usable afterwards.

use chason_serve::proto::{
    decode_reply, encode_request, read_frame_blocking, write_frame, Reply, Request,
    DEFAULT_MAX_FRAME,
};
use chason_serve::server::{ServeConfig, Server};
use chason_serve::NetMode;
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

fn start_with(net: NetMode, idle_timeout: Duration) -> Server {
    Server::start(ServeConfig {
        workers: 2,
        idle_timeout,
        net,
        ..ServeConfig::default()
    })
    .expect("server binds an ephemeral port")
}

/// Sends one raw frame and reads one raw reply on a bare socket.
fn raw_round_trip(stream: &mut TcpStream, request: &Request) -> Reply {
    write_frame(stream, &encode_request(request)).expect("write frame");
    let reply = read_frame_blocking(stream, DEFAULT_MAX_FRAME).expect("read reply frame");
    decode_reply(&reply).expect("decode reply")
}

/// A request that runs longer than the idle timeout is not reaped
/// mid-flight, and — the accounting fix — the idle clock restarts when
/// its reply completes, not when the request was dispatched: a follow-up
/// sent within one timeout of the *reply* (but more than one timeout
/// after the dispatch) still succeeds.
fn long_request_then_followup(net: NetMode) {
    let server = start_with(net, Duration::from_millis(600));
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // Sleep 500 ms: most of the idle window burns while the worker runs.
    let reply = raw_round_trip(&mut stream, &Request::Sleep { millis: 500 });
    assert!(matches!(reply, Reply::Done), "{reply:?}");

    // 400 ms of silence: within 600 ms of the reply, but ~900 ms past the
    // dispatch. A dispatch-anchored clock would have reaped us by now.
    thread::sleep(Duration::from_millis(400));
    let reply = raw_round_trip(&mut stream, &Request::Stats);
    assert!(matches!(reply, Reply::Stats(_)), "{reply:?}");

    let reply = raw_round_trip(&mut stream, &Request::Shutdown);
    assert!(matches!(reply, Reply::Done), "{reply:?}");
    server.join();
}

#[test]
fn async_idle_clock_resets_on_completed_frames() {
    long_request_then_followup(NetMode::Async);
}

#[test]
fn threads_idle_clock_resets_on_completed_frames() {
    long_request_then_followup(NetMode::Threads);
}

/// The reset-on-completion fix must not break reaping itself: a
/// connection with no traffic at all is still closed after the timeout.
fn silent_connection_is_reaped(net: NetMode) {
    let server = start_with(net, Duration::from_millis(250));
    let addr = server.local_addr().to_string();
    let mut stream = TcpStream::connect(&addr).expect("connect");
    thread::sleep(Duration::from_millis(1000));
    // The reap may surface as a write error (EPIPE) or as EOF on the
    // reply read, depending on how fast the FIN propagates.
    let outcome = write_frame(&mut stream, &encode_request(&Request::Stats))
        .map_err(|_| ())
        .and_then(|()| read_frame_blocking(&mut stream, DEFAULT_MAX_FRAME).map_err(|_| ()));
    assert!(outcome.is_err(), "idle connection was not reaped");

    let mut fresh = TcpStream::connect(&addr).expect("reconnect");
    let reply = raw_round_trip(&mut fresh, &Request::Shutdown);
    assert!(matches!(reply, Reply::Done), "{reply:?}");
    server.join();
}

#[test]
fn async_silent_connection_is_reaped() {
    silent_connection_is_reaped(NetMode::Async);
}

#[test]
fn threads_silent_connection_is_reaped() {
    silent_connection_is_reaped(NetMode::Threads);
}

/// With async now the default, the threaded listener keeps explicit
/// happy-path coverage of its own.
#[test]
fn threads_mode_serves_the_happy_path() {
    let server = start_with(NetMode::Threads, Duration::from_secs(30));
    let addr = server.local_addr().to_string();
    let mut client = chason_serve::client::Client::connect(&addr).expect("connect");
    let matrix = chason_testutil::spd_system(24, 3).0;
    let (handle, fresh) = client.load_matrix(&matrix).expect("load");
    assert!(fresh);
    let (y, _, _) = client
        .spmv(handle, chason_serve::proto::Engine::Chason, vec![1.0; 24])
        .expect("spmv");
    assert_eq!(y.len(), 24);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests_spmv, 1);
    client.shutdown().expect("shutdown");
    server.join();
}
