//! The CHSP connection front end, shared by `chason serve` and
//! `chason route`.
//!
//! Both daemons accept the same wire protocol, answer
//! `Stats`/`Metrics`/`Shutdown` inline, refuse queued work while
//! draining, and shed with [`Reply::Busy`] when their bounded worker
//! queue is full. This module captures that contract once, behind the
//! [`ChspFrontend`] trait, and provides both transports over it:
//!
//! * [`serve_connection_threaded`] — the original thread-per-connection
//!   loop (`--net threads`), one blocking socket per client.
//! * [`ChspService`] — the same request handling as a
//!   [`chason_net::Service`], run by the readiness event loop
//!   (`--net async`), where one thread multiplexes every connection and
//!   requests may be pipelined.
//!
//! The two are byte-identical at the wire: replies are written strictly
//! in per-connection request order (the event loop re-orders worker
//! completions by sequence number), shedding and drain refusals carry the
//! same error codes, and the idle-timeout clock resets on any completed
//! frame in either direction — so a client cannot tell which front end it
//! is talking to.

use crate::proto::{
    decode_request, encode_reply, write_frame, ErrorCode, FrameEvent, FrameReader, ProtoError,
    Reply, Request,
};
use chason_net::server::{FrameOutcome, NetConfig, NetServer};
use chason_net::{LoopHandle, Service};
use chason_telemetry::metrics::Registry;
use std::net::{TcpListener, TcpStream};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often a blocked connection read wakes up to re-check the shutdown
/// flag and idle deadline (threaded front end only).
pub const READ_TICK: Duration = Duration::from_millis(100);

/// Where a worker's reply goes: back to the blocking connection thread,
/// or into the event loop's completion queue under the frame's sequence
/// number.
pub enum ReplySink {
    /// Threaded front end: the connection thread blocks on the receiver.
    Thread(mpsc::Sender<Reply>),
    /// Async front end: the worker encodes the reply itself (off the
    /// loop thread) and completes the `(conn, seq)` slot.
    Async {
        /// Completion handle into the event loop.
        handle: LoopHandle,
        /// Connection the frame arrived on.
        conn: u64,
        /// Per-connection sequence number of the frame.
        seq: u64,
    },
}

impl ReplySink {
    /// Delivers the reply. A gone receiver (client disconnected) is not
    /// an error.
    pub fn send(self, reply: &Reply) {
        match self {
            ReplySink::Thread(tx) => {
                let _ = tx.send(reply.clone());
            }
            ReplySink::Async { handle, conn, seq } => {
                handle.complete(conn, seq, encode_reply(reply));
            }
        }
    }
}

impl std::fmt::Debug for ReplySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplySink::Thread(_) => f.write_str("ReplySink::Thread"),
            ReplySink::Async { conn, seq, .. } => f
                .debug_struct("ReplySink::Async")
                .field("conn", conn)
                .field("seq", seq)
                .finish(),
        }
    }
}

/// A unit of queued work: the decoded request plus where its reply goes.
#[derive(Debug)]
pub struct Job {
    /// The decoded request.
    pub request: Request,
    /// Reply destination.
    pub reply_tx: ReplySink,
    /// Enqueue time, for the queue-wait histogram.
    pub received: Instant,
}

/// What became of an enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Queued; a worker will deliver the reply through the job's sink.
    Accepted,
    /// Queue full; the job was shed (the implementation counted it) and
    /// the caller replies [`Reply::Busy`].
    Shed,
    /// The worker pool is gone; the caller replies `ShuttingDown` and
    /// closes.
    Disconnected,
}

/// The pieces of a CHSP daemon the connection layer needs: inline
/// replies, drain state, and the worker queue. `chason serve` and
/// `chason route` each implement this once and get both front ends.
pub trait ChspFrontend: Send + Sync + 'static {
    /// Answers `Stats` (implementations bump their own counter).
    fn stats_reply(&self) -> Reply;
    /// Answers `Metrics` (implementations bump their own counter).
    fn metrics_reply(&self) -> Reply;
    /// A wire `Shutdown` arrived: set the drain flag and do any
    /// daemon-specific fan-out (the router forwards to its shards here)
    /// BEFORE the `Done` acknowledgement is sent.
    fn on_wire_shutdown(&self);
    /// Whether the daemon is draining (new queued work is refused).
    fn is_draining(&self) -> bool;
    /// Human-readable drain refusal (`"server is draining"` /
    /// `"router is draining"`).
    fn draining_message(&self) -> String;
    /// Back-off hint carried by [`Reply::Busy`].
    fn retry_after_ms(&self) -> u32;
    /// Offers a job to the bounded worker queue; never blocks. A `Shed`
    /// return has already been counted in the daemon's shed statistics.
    fn enqueue(&self, job: Job) -> EnqueueOutcome;
    /// How long a connection may sit idle before the daemon hangs up.
    fn idle_timeout(&self) -> Duration;
    /// Per-connection write timeout (threaded front end; the async loop
    /// bounds slow writers with backpressure plus the idle reap instead).
    fn write_timeout(&self) -> Duration;
    /// Largest accepted frame payload.
    fn max_frame_len(&self) -> usize;
}

fn send_reply(stream: &mut TcpStream, reply: &Reply) -> std::io::Result<()> {
    match write_frame(stream, &encode_reply(reply)) {
        Ok(()) => Ok(()),
        Err(ProtoError::Io(e)) => Err(e),
        // An un-frameable reply (> u32::MAX bytes) cannot reach the peer;
        // surface it as data corruption so the connection is dropped.
        Err(other) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            other.to_string(),
        )),
    }
}

fn frame_too_large_reply(len: u64, cap: u64) -> Reply {
    Reply::Error {
        code: ErrorCode::FrameTooLarge,
        message: format!("frame of {len} bytes exceeds the {cap}-byte cap"),
    }
}

/// The thread-per-connection loop: one blocking socket, one request at a
/// time, replies written inline.
///
/// The idle clock resets on any *completed frame* — a request arriving or
/// a reply being written — not only on request dispatch, so a connection
/// whose single request runs longer than the idle timeout is not reaped
/// out from under the reply.
///
/// # Errors
///
/// Socket I/O failures; callers treat any return as "connection over".
pub fn serve_connection_threaded<F: ChspFrontend>(
    mut stream: TcpStream,
    frontend: &F,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TICK))?;
    stream.set_write_timeout(Some(frontend.write_timeout()))?;
    stream.set_nodelay(true)?;
    let mut reader = FrameReader::new(frontend.max_frame_len());
    let mut last_activity = Instant::now();
    loop {
        let event = match reader.poll(&mut stream) {
            Ok(event) => event,
            Err(ProtoError::FrameTooLarge { len, cap }) => {
                // The stream cannot be resynchronized past an oversized
                // frame; reply, then hang up.
                let _ = send_reply(&mut stream, &frame_too_large_reply(len, cap));
                return Ok(());
            }
            Err(_) => return Ok(()), // disconnect (mid-frame EOF included)
        };
        let payload = match event {
            FrameEvent::Frame(payload) => payload,
            FrameEvent::Eof => return Ok(()),
            FrameEvent::Timeout => {
                if frontend.is_draining() && !reader.mid_frame() {
                    return Ok(());
                }
                if last_activity.elapsed() > frontend.idle_timeout() {
                    return Ok(()); // idle connection reclaimed
                }
                continue;
            }
        };
        let request = match decode_request(&payload) {
            Ok(request) => request,
            Err(err) => {
                // A malformed payload poisons only itself; the connection
                // continues at the next frame boundary.
                send_reply(
                    &mut stream,
                    &Reply::Error {
                        code: ErrorCode::MalformedFrame,
                        message: err.to_string(),
                    },
                )?;
                last_activity = Instant::now();
                continue;
            }
        };
        match request {
            Request::Stats => {
                send_reply(&mut stream, &frontend.stats_reply())?;
            }
            Request::Metrics => {
                send_reply(&mut stream, &frontend.metrics_reply())?;
            }
            Request::Shutdown => {
                frontend.on_wire_shutdown();
                let local = stream.local_addr()?;
                send_reply(&mut stream, &Reply::Done)?;
                // Nudge the listener out of `accept` so it can join.
                let _ = TcpStream::connect(local);
                return Ok(());
            }
            request => {
                if frontend.is_draining() {
                    send_reply(
                        &mut stream,
                        &Reply::Error {
                            code: ErrorCode::ShuttingDown,
                            message: frontend.draining_message(),
                        },
                    )?;
                    return Ok(());
                }
                let (reply_tx, reply_rx) = mpsc::channel();
                let job = Job {
                    request,
                    reply_tx: ReplySink::Thread(reply_tx),
                    received: Instant::now(),
                };
                match frontend.enqueue(job) {
                    EnqueueOutcome::Accepted => {
                        let reply = reply_rx.recv().unwrap_or(Reply::Error {
                            code: ErrorCode::Internal,
                            message: "worker dropped the request".to_string(),
                        });
                        send_reply(&mut stream, &reply)?;
                    }
                    EnqueueOutcome::Shed => {
                        send_reply(
                            &mut stream,
                            &Reply::Busy {
                                retry_after_ms: frontend.retry_after_ms(),
                            },
                        )?;
                    }
                    EnqueueOutcome::Disconnected => {
                        send_reply(
                            &mut stream,
                            &Reply::Error {
                                code: ErrorCode::ShuttingDown,
                                message: "worker pool has stopped".to_string(),
                            },
                        )?;
                        return Ok(());
                    }
                }
            }
        }
        // The reply above completed a frame; the connection is active.
        last_activity = Instant::now();
    }
}

/// The blocking accept loop of the threaded front end: spawns one
/// `serve_connection_threaded` thread per client and joins them on exit.
pub fn threaded_listener_loop<F: ChspFrontend>(
    listener: &TcpListener,
    frontend: &Arc<F>,
    conn_thread_name: &str,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if frontend.is_draining() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let frontend = Arc::clone(frontend);
        let spawned = thread::Builder::new()
            .name(conn_thread_name.to_string())
            .spawn(move || {
                let _ = serve_connection_threaded(stream, &*frontend);
            });
        if let Ok(handle) = spawned {
            connections.push(handle);
        }
        // Reap finished connection threads so a long-lived server does not
        // accumulate handles.
        connections.retain(|h| !h.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// The same request handling as a [`chason_net::Service`]: run by the
/// readiness event loop, so one thread serves every connection and
/// clients may pipeline.
pub struct ChspService<F> {
    frontend: Arc<F>,
    handle: LoopHandle,
}

impl<F: ChspFrontend> Service for ChspService<F> {
    fn on_frame(&mut self, conn: u64, seq: u64, payload: Vec<u8>) -> FrameOutcome {
        let request = match decode_request(&payload) {
            Ok(request) => request,
            Err(err) => {
                return FrameOutcome::Reply(encode_reply(&Reply::Error {
                    code: ErrorCode::MalformedFrame,
                    message: err.to_string(),
                }));
            }
        };
        match request {
            Request::Stats => FrameOutcome::Reply(encode_reply(&self.frontend.stats_reply())),
            Request::Metrics => FrameOutcome::Reply(encode_reply(&self.frontend.metrics_reply())),
            Request::Shutdown => {
                // Daemon-specific fan-out first (mirrors the threaded
                // ordering: "Done" acknowledges a completed drain start),
                // then stop the loop's accept thread and begin the drain.
                self.frontend.on_wire_shutdown();
                self.handle.begin_drain();
                FrameOutcome::ReplyThenClose(encode_reply(&Reply::Done))
            }
            request => {
                if self.frontend.is_draining() {
                    return FrameOutcome::ReplyThenClose(encode_reply(&Reply::Error {
                        code: ErrorCode::ShuttingDown,
                        message: self.frontend.draining_message(),
                    }));
                }
                let job = Job {
                    request,
                    reply_tx: ReplySink::Async {
                        handle: self.handle.clone(),
                        conn,
                        seq,
                    },
                    received: Instant::now(),
                };
                match self.frontend.enqueue(job) {
                    EnqueueOutcome::Accepted => FrameOutcome::Pending,
                    EnqueueOutcome::Shed => FrameOutcome::Reply(encode_reply(&Reply::Busy {
                        retry_after_ms: self.frontend.retry_after_ms(),
                    })),
                    EnqueueOutcome::Disconnected => {
                        FrameOutcome::ReplyThenClose(encode_reply(&Reply::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "worker pool has stopped".to_string(),
                        }))
                    }
                }
            }
        }
    }

    fn on_oversized(&mut self, _conn: u64, len: u64, cap: u64) -> Option<Vec<u8>> {
        Some(encode_reply(&frame_too_large_reply(len, cap)))
    }
}

/// Starts the readiness-loop front end over `frontend`, registering
/// `net_*` metrics into `registry` (the daemon's own registry, so one
/// `Metrics` reply exposes both families).
///
/// # Errors
///
/// Poller or thread-spawn failures.
pub fn start_async_frontend<F: ChspFrontend>(
    listener: TcpListener,
    frontend: Arc<F>,
    registry: &Registry,
) -> std::io::Result<NetServer> {
    let config = NetConfig {
        idle_timeout: frontend.idle_timeout(),
        max_frame_len: frontend.max_frame_len(),
        ..NetConfig::default()
    };
    NetServer::start(listener, config, registry, move |handle| ChspService {
        frontend,
        handle,
    })
}
