//! Server-side counters behind [`Reply::Stats`](crate::proto::Reply).
//!
//! Counters are lock-free atomics so the request hot path never contends;
//! the only lock guards a fixed-size ring of recent service times, touched
//! once per completed request and once per `Stats` snapshot. Percentiles
//! are computed over the ring (the last [`SERVICE_WINDOW`] requests), not
//! the full history — a daemon's tail latency should reflect current
//! behaviour, not its first hour.

use crate::proto::StatsSnapshot;
use chason_core::cache::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many recent service-time samples feed the percentile estimates.
pub const SERVICE_WINDOW: usize = 4096;

/// Request-type counters a connection thread bumps when it accepts work.
#[derive(Debug, Default)]
pub struct RequestCounters {
    /// `LoadMatrix` accepted.
    pub load: AtomicU64,
    /// `Spmv` accepted.
    pub spmv: AtomicU64,
    /// `Solve` accepted.
    pub solve: AtomicU64,
    /// `Plan` accepted.
    pub plan: AtomicU64,
    /// `Stats` served inline.
    pub stats: AtomicU64,
    /// `Sleep` accepted.
    pub sleep: AtomicU64,
}

#[derive(Debug)]
struct ServiceRing {
    samples: Vec<u64>,
    next: usize,
}

/// All mutable server telemetry; shared by every connection and worker
/// thread.
#[derive(Debug)]
pub struct ServerStats {
    started: Instant,
    /// Per-opcode acceptance counters.
    pub requests: RequestCounters,
    /// Requests rejected with `Busy`.
    pub shed: AtomicU64,
    /// Extra same-matrix SpMVs executed by piggybacking on a dequeued
    /// request.
    pub batched: AtomicU64,
    /// Highest queue depth observed at enqueue time.
    pub queue_depth_hwm: AtomicU64,
    /// Service-time samples recorded since start.
    pub service_samples: AtomicU64,
    ring: Mutex<ServiceRing>,
}

impl ServerStats {
    /// Creates zeroed counters with the clock starting now.
    pub fn new() -> Self {
        ServerStats {
            started: Instant::now(),
            requests: RequestCounters::default(),
            shed: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            queue_depth_hwm: AtomicU64::new(0),
            service_samples: AtomicU64::new(0),
            ring: Mutex::new(ServiceRing {
                samples: Vec::with_capacity(SERVICE_WINDOW),
                next: 0,
            }),
        }
    }

    /// Records one completed request's service time (queue wait +
    /// execution).
    pub fn record_service_micros(&self, micros: u64) {
        self.service_samples.fetch_add(1, Ordering::Relaxed);
        let mut ring = lock_unpoisoned(&self.ring);
        if ring.samples.len() < SERVICE_WINDOW {
            ring.samples.push(micros);
        } else {
            let slot = ring.next;
            ring.samples[slot] = micros;
        }
        ring.next = (ring.next + 1) % SERVICE_WINDOW;
    }

    /// Raises the queue-depth high-water mark to `depth` if it is higher.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_depth_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// Assembles the wire snapshot from these counters plus the two
    /// caches' state (sampled by the caller under the cache locks).
    pub fn snapshot(
        &self,
        plan_cache: CacheStats,
        matrices_resident: u64,
        matrix_evictions: u64,
    ) -> StatsSnapshot {
        let (p50, p99, max) = self.service_percentiles();
        StatsSnapshot {
            uptime_millis: self.started.elapsed().as_millis() as u64,
            requests_load: self.requests.load.load(Ordering::Relaxed),
            requests_spmv: self.requests.spmv.load(Ordering::Relaxed),
            requests_solve: self.requests.solve.load(Ordering::Relaxed),
            requests_plan: self.requests.plan.load(Ordering::Relaxed),
            requests_stats: self.requests.stats.load(Ordering::Relaxed),
            requests_sleep: self.requests.sleep.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batched: self.batched.load(Ordering::Relaxed),
            queue_depth_hwm: self.queue_depth_hwm.load(Ordering::Relaxed),
            plan_cache_hits: plan_cache.hits,
            plan_cache_misses: plan_cache.misses,
            plan_cache_evictions: plan_cache.evictions,
            plan_cache_len: plan_cache.len as u64,
            plan_cache_capacity: plan_cache.capacity as u64,
            matrices_resident,
            matrix_evictions,
            service_p50_micros: p50,
            service_p99_micros: p99,
            service_max_micros: max,
            service_samples: self.service_samples.load(Ordering::Relaxed),
        }
    }

    fn service_percentiles(&self) -> (u64, u64, u64) {
        let ring = lock_unpoisoned(&self.ring);
        percentiles(&ring.samples)
    }
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new()
    }
}

/// (p50, p99, max) of `samples` in their own unit; zeros when empty.
pub fn percentiles(samples: &[u64]) -> (u64, u64, u64) {
    if samples.is_empty() {
        return (0, 0, 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let at = |p: usize| sorted[(sorted.len() - 1) * p / 100];
    (at(50), at(99), sorted[sorted.len() - 1])
}

/// Locks a mutex, continuing through poisoning: these are telemetry
/// structures, and a panicking worker must not take observability down
/// with it.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_distribution() {
        let samples: Vec<u64> = (1..=100).collect();
        let (p50, p99, max) = percentiles(&samples);
        assert_eq!((p50, p99, max), (50, 99, 100));
        assert_eq!(percentiles(&[]), (0, 0, 0));
        assert_eq!(percentiles(&[7]), (7, 7, 7));
    }

    #[test]
    fn ring_keeps_only_the_recent_window() {
        let stats = ServerStats::new();
        // Fill the window with large values, then overwrite with small ones.
        for _ in 0..SERVICE_WINDOW {
            stats.record_service_micros(1_000_000);
        }
        for _ in 0..SERVICE_WINDOW {
            stats.record_service_micros(10);
        }
        let (p50, p99, max) = stats.service_percentiles();
        assert_eq!((p50, p99, max), (10, 10, 10), "old samples must age out");
        assert_eq!(
            stats.service_samples.load(Ordering::Relaxed),
            2 * SERVICE_WINDOW as u64
        );
    }

    #[test]
    fn snapshot_reflects_counters() {
        let stats = ServerStats::new();
        stats.requests.spmv.fetch_add(3, Ordering::Relaxed);
        stats.shed.fetch_add(2, Ordering::Relaxed);
        stats.observe_queue_depth(5);
        stats.observe_queue_depth(3); // lower: must not regress the HWM
        stats.record_service_micros(40);
        let snap = stats.snapshot(
            CacheStats {
                hits: 8,
                misses: 2,
                evictions: 1,
                len: 1,
                capacity: 4,
            },
            6,
            1,
        );
        assert_eq!(snap.requests_spmv, 3);
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.queue_depth_hwm, 5);
        assert_eq!(snap.plan_cache_hits, 8);
        assert!((snap.plan_hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(snap.matrices_resident, 6);
        assert_eq!(snap.service_p50_micros, 40);
        assert_eq!(snap.requests_executed(), 3);
    }
}
