//! Server-side metrics behind [`Reply::Stats`](crate::proto::Reply) and
//! the Prometheus-style exposition behind
//! [`Reply::MetricsText`](crate::proto::Reply).
//!
//! All counters live in a [`chason_telemetry`] [`Registry`] under the
//! `chsp_*` namespace (DESIGN.md §10); the struct fields here are `Arc`
//! handles resolved once at startup, so the request hot path is a relaxed
//! atomic op with no name lookup and no lock. Service times feed a
//! fixed-bucket [`Histogram`] — quantiles are power-of-two upper-bound
//! estimates clamped to the exact observed maximum, over the full history
//! rather than a sliding window.

use crate::proto::StatsSnapshot;
use chason_core::cache::CacheStats;
use chason_telemetry::metrics::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;
use std::time::Instant;

pub use chason_telemetry::lock_unpoisoned;

/// Request-type counters a connection thread bumps when it accepts work.
#[derive(Debug)]
pub struct RequestCounters {
    /// `LoadMatrix` accepted (`chsp_requests_load_total`).
    pub load: Arc<Counter>,
    /// `Spmv` accepted (`chsp_requests_spmv_total`).
    pub spmv: Arc<Counter>,
    /// `Solve` accepted (`chsp_requests_solve_total`).
    pub solve: Arc<Counter>,
    /// `Plan` accepted (`chsp_requests_plan_total`).
    pub plan: Arc<Counter>,
    /// `Stats` served inline (`chsp_requests_stats_total`).
    pub stats: Arc<Counter>,
    /// `Sleep` accepted (`chsp_requests_sleep_total`).
    pub sleep: Arc<Counter>,
    /// `Metrics` served inline (`chsp_requests_metrics_total`).
    pub metrics: Arc<Counter>,
    /// `Update` accepted (`chsp_requests_update_total`).
    pub update: Arc<Counter>,
}

impl RequestCounters {
    fn new(registry: &Registry) -> Self {
        RequestCounters {
            load: registry.counter("chsp_requests_load_total"),
            spmv: registry.counter("chsp_requests_spmv_total"),
            solve: registry.counter("chsp_requests_solve_total"),
            plan: registry.counter("chsp_requests_plan_total"),
            stats: registry.counter("chsp_requests_stats_total"),
            sleep: registry.counter("chsp_requests_sleep_total"),
            metrics: registry.counter("chsp_requests_metrics_total"),
            update: registry.counter("chsp_requests_update_total"),
        }
    }
}

/// All mutable server telemetry; shared by every connection and worker
/// thread.
#[derive(Debug)]
pub struct ServerStats {
    started: Instant,
    registry: Registry,
    /// Per-opcode acceptance counters.
    pub requests: RequestCounters,
    /// Requests rejected with `Busy` (`chsp_shed_total`).
    pub shed: Arc<Counter>,
    /// Extra same-matrix SpMVs executed by piggybacking on a dequeued
    /// request (`chsp_batched_total`).
    pub batched: Arc<Counter>,
    /// Cached plans incrementally respliced after matrix updates
    /// (`chsp_plans_spliced_total`).
    pub plans_spliced: Arc<Counter>,
    /// Column windows re-scheduled across all splices
    /// (`chsp_replan_windows_total`).
    pub replan_windows: Arc<Counter>,
    queue_depth_hwm: Arc<Gauge>,
    service: Arc<Histogram>,
    queue_wait: Arc<Histogram>,
}

impl ServerStats {
    /// Creates zeroed counters with the clock starting now.
    pub fn new() -> Self {
        let registry = Registry::new();
        let requests = RequestCounters::new(&registry);
        let shed = registry.counter("chsp_shed_total");
        let batched = registry.counter("chsp_batched_total");
        let plans_spliced = registry.counter("chsp_plans_spliced_total");
        let replan_windows = registry.counter("chsp_replan_windows_total");
        let queue_depth_hwm = registry.gauge("chsp_queue_depth_hwm");
        let service = registry.histogram("chsp_service_micros");
        let queue_wait = registry.histogram("chsp_queue_wait_micros");
        ServerStats {
            started: Instant::now(),
            registry,
            requests,
            shed,
            batched,
            plans_spliced,
            replan_windows,
            queue_depth_hwm,
            service,
            queue_wait,
        }
    }

    /// The registry every `chsp_*` metric lives in. A frontend embedding
    /// these stats (e.g. the CHSP router) registers its own metrics here
    /// so one `Metrics` reply exposes both families.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records one completed request's execution time (queue wait
    /// excluded — that goes to [`record_queue_wait_micros`]).
    ///
    /// [`record_queue_wait_micros`]: ServerStats::record_queue_wait_micros
    pub fn record_service_micros(&self, micros: u64) {
        self.service.record(micros);
    }

    /// Records how long one request sat in the queue before a worker
    /// dequeued it.
    pub fn record_queue_wait_micros(&self, micros: u64) {
        self.queue_wait.record(micros);
    }

    /// Raises the queue-depth high-water mark to `depth` if it is higher.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_depth_hwm.observe_max(depth);
    }

    /// Assembles the wire snapshot from these counters plus the two
    /// caches' state (sampled by the caller under the cache locks).
    pub fn snapshot(
        &self,
        plan_cache: CacheStats,
        matrices_resident: u64,
        matrix_evictions: u64,
    ) -> StatsSnapshot {
        StatsSnapshot {
            uptime_millis: self.started.elapsed().as_millis() as u64,
            requests_load: self.requests.load.get(),
            requests_spmv: self.requests.spmv.get(),
            requests_solve: self.requests.solve.get(),
            requests_plan: self.requests.plan.get(),
            requests_stats: self.requests.stats.get(),
            requests_sleep: self.requests.sleep.get(),
            shed: self.shed.get(),
            batched: self.batched.get(),
            queue_depth_hwm: self.queue_depth_hwm.get(),
            plan_cache_hits: plan_cache.hits,
            plan_cache_misses: plan_cache.misses,
            plan_cache_evictions: plan_cache.evictions,
            plan_cache_len: plan_cache.len as u64,
            plan_cache_capacity: plan_cache.capacity as u64,
            matrices_resident,
            matrix_evictions,
            service_p50_micros: self.service.quantile(0.50),
            service_p99_micros: self.service.quantile(0.99),
            service_max_micros: self.service.max(),
            service_samples: self.service.count(),
            queue_p50_micros: self.queue_wait.quantile(0.50),
            queue_p99_micros: self.queue_wait.quantile(0.99),
            queue_max_micros: self.queue_wait.max(),
            requests_update: self.requests.update.get(),
            plans_spliced: self.plans_spliced.get(),
            replan_windows: self.replan_windows.get(),
        }
    }

    /// Renders the full registry as Prometheus-style text, first copying
    /// the caller-sampled cache state and uptime into gauges so every
    /// `Stats` field also appears in the exposition.
    pub fn render_exposition(
        &self,
        plan_cache: CacheStats,
        matrices_resident: u64,
        matrix_evictions: u64,
    ) -> String {
        let set = |name: &str, value: u64| self.registry.gauge(name).set(value);
        set(
            "chsp_uptime_millis",
            self.started.elapsed().as_millis() as u64,
        );
        set("chsp_plan_cache_hits", plan_cache.hits);
        set("chsp_plan_cache_misses", plan_cache.misses);
        set("chsp_plan_cache_evictions", plan_cache.evictions);
        set("chsp_plan_cache_len", plan_cache.len as u64);
        set("chsp_plan_cache_capacity", plan_cache.capacity as u64);
        set("chsp_matrices_resident", matrices_resident);
        set("chsp_matrix_evictions", matrix_evictions);
        self.registry.render_prometheus()
    }
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new()
    }
}

#[cfg(all(test, not(feature = "telemetry-off")))]
mod tests {
    use super::*;

    fn cache_stats() -> CacheStats {
        CacheStats {
            hits: 8,
            misses: 2,
            evictions: 1,
            len: 1,
            capacity: 4,
        }
    }

    #[test]
    fn snapshot_reflects_counters() {
        let stats = ServerStats::new();
        stats.requests.spmv.add(3);
        stats.shed.add(2);
        stats.observe_queue_depth(5);
        stats.observe_queue_depth(3); // lower: must not regress the HWM
        stats.record_service_micros(40);
        stats.record_queue_wait_micros(7);
        let snap = stats.snapshot(cache_stats(), 6, 1);
        assert_eq!(snap.requests_spmv, 3);
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.queue_depth_hwm, 5);
        assert_eq!(snap.plan_cache_hits, 8);
        assert!((snap.plan_hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(snap.matrices_resident, 6);
        // A single sample is exact at every quantile (clamped to the max).
        assert_eq!(snap.service_p50_micros, 40);
        assert_eq!(snap.service_p99_micros, 40);
        assert_eq!(snap.service_max_micros, 40);
        assert_eq!(snap.service_samples, 1);
        // Queue wait is tracked separately, not folded into service time.
        assert_eq!(snap.queue_p50_micros, 7);
        assert_eq!(snap.queue_max_micros, 7);
        assert_eq!(snap.requests_executed(), 3);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let stats = ServerStats::new();
        for micros in 1..=1000u64 {
            stats.record_service_micros(micros);
        }
        let snap = stats.snapshot(cache_stats(), 0, 0);
        // Estimates are power-of-two upper bounds: at or above the true
        // quantile, never above the exact maximum.
        assert!((500..=1000).contains(&snap.service_p50_micros));
        assert!((990..=1000).contains(&snap.service_p99_micros));
        assert_eq!(snap.service_max_micros, 1000);
        assert_eq!(snap.service_samples, 1000);
    }

    #[test]
    fn exposition_covers_every_snapshot_field() {
        let stats = ServerStats::new();
        stats.requests.load.add(1);
        stats.requests.metrics.add(2);
        stats.batched.add(4);
        stats.observe_queue_depth(7);
        stats.record_service_micros(100);
        stats.record_queue_wait_micros(9);
        let text = stats.render_exposition(cache_stats(), 6, 1);
        for needle in [
            "chsp_requests_load_total 1",
            "chsp_requests_metrics_total 2",
            "chsp_batched_total 4",
            "chsp_queue_depth_hwm 7",
            "chsp_plan_cache_hits 8",
            "chsp_matrices_resident 6",
            "chsp_service_micros_count 1",
            "chsp_service_micros_max 100",
            "# TYPE chsp_service_micros histogram",
            "chsp_queue_wait_micros_count 1",
            "chsp_queue_wait_micros_max 9",
            "# TYPE chsp_queue_wait_micros histogram",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
