//! Blocking CHSP client used by `chason client`, the load generator, and
//! the integration tests.

use crate::proto::{
    decode_reply, encode_request, load_request, read_frame_blocking, write_frame, Engine,
    ErrorCode, ProtoError, Reply, Request, SolverKind, StatsSnapshot, DEFAULT_MAX_FRAME,
};
use chason_sparse::CooMatrix;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-visible failure of one request.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(io::Error),
    /// The server's bytes did not decode as a CHSP reply.
    Proto(ProtoError),
    /// The server shed the request; retry after the hinted delay.
    Busy {
        /// Server's suggested back-off.
        retry_after_ms: u32,
    },
    /// Every attempt allowed by the client's [`RetryPolicy`] came back
    /// [`Reply::Busy`].
    RetriesExhausted {
        /// Attempts made (including the first send).
        attempts: u32,
        /// The last `Busy` reply's suggested back-off.
        retry_after_ms: u32,
    },
    /// The server answered with a typed error.
    Server {
        /// Failure class.
        code: ErrorCode,
        /// Server-rendered detail.
        message: String,
    },
    /// The server answered with a reply of the wrong type for the
    /// request.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy; retry after {retry_after_ms} ms")
            }
            ClientError::RetriesExhausted {
                attempts,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "server still busy after {attempts} attempts; last hint: retry after {retry_after_ms} ms"
                )
            }
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected reply: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(e) => ClientError::Io(e),
            other => ClientError::Proto(other),
        }
    }
}

/// Outcome of [`Client::solve`].
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Final iterate.
    pub solution: Vec<f32>,
    /// Iterations performed.
    pub iterations: u64,
    /// Final relative residual.
    pub residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Server-side service time in microseconds.
    pub service_micros: u64,
    /// Modeled accelerator time in nanoseconds.
    pub simulated_nanos: u64,
}

/// Outcome of [`Client::update`].
#[derive(Debug, Clone, Copy)]
pub struct UpdateOutcome {
    /// The matrix's new version (1 for the first update).
    pub version: u64,
    /// Non-zero count after the delta.
    pub nnz: u64,
    /// Cached plans incrementally respliced by this update.
    pub plans_spliced: u32,
    /// Column windows re-scheduled across those splices.
    pub windows_replanned: u64,
    /// Total column windows per plan (splice denominator).
    pub windows_total: u64,
}

/// Bounded retry with exponential back-off and deterministic jitter for
/// [`Reply::Busy`] replies.
///
/// Each attempt `n` (0-based) sleeps for
/// `max(server_hint, jittered(base_delay_ms << n))` capped at
/// `max_delay_ms`, where `jittered` picks a value in the upper half of the
/// exponential window from a SplitMix64 stream seeded by `seed` — so two
/// clients created with different seeds desynchronise instead of
/// stampeding the server in lockstep, and a test re-running with the same
/// seed sees identical sleeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total send attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Back-off for the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Upper bound on any single sleep, in milliseconds.
    pub max_delay_ms: u64,
    /// Jitter stream seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 10,
            max_delay_ms: 500,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based), honoring the
    /// server's hint. Pure: the jitter comes from `state`, which the
    /// caller advances.
    pub fn backoff_ms(&self, attempt: u32, hint_ms: u32, state: &mut u64) -> u64 {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(20))
            .clamp(1, self.max_delay_ms);
        // Jitter into [exp/2, exp] so the exponential shape survives but
        // concurrent clients spread out.
        let low = exp / 2;
        let jittered = low + splitmix64(state) % (exp - low + 1);
        jittered.max(u64::from(hint_ms)).min(self.max_delay_ms)
    }
}

/// A blocking CHSP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
    retry: Option<RetryPolicy>,
    retry_state: u64,
}

impl Client {
    /// Connects and configures socket timeouts.
    ///
    /// Retries are off by default: a [`Reply::Busy`] surfaces as
    /// [`ClientError::Busy`]. Opt in with [`Client::set_retry`] or
    /// [`Client::with_retry`].
    ///
    /// # Errors
    ///
    /// I/O failures connecting.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
            retry: None,
            retry_state: 0,
        })
    }

    /// Builder-style [`Client::set_retry`].
    #[must_use]
    pub fn with_retry(mut self, policy: Option<RetryPolicy>) -> Client {
        self.set_retry(policy);
        self
    }

    /// Enables (or disables, with `None`) automatic retry of `Busy`
    /// replies for every typed helper. With a policy installed, a request
    /// that is still shed after `max_attempts` sends fails with
    /// [`ClientError::RetriesExhausted`].
    pub fn set_retry(&mut self, policy: Option<RetryPolicy>) {
        self.retry_state = policy.map_or(0, |p| p.seed);
        self.retry = policy;
    }

    /// Sends one request and reads its raw reply ([`Reply::Busy`] and
    /// [`Reply::Error`] included — the typed helpers map them to
    /// [`ClientError`]).
    ///
    /// # Errors
    ///
    /// Connection and decode failures.
    pub fn request(&mut self, request: &Request) -> Result<Reply, ClientError> {
        write_frame(&mut self.stream, &encode_request(request))?;
        let payload = read_frame_blocking(&mut self.stream, self.max_frame)?;
        Ok(decode_reply(&payload)?)
    }

    fn expect(&mut self, request: &Request) -> Result<Reply, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.request(request)? {
                Reply::Busy { retry_after_ms } => {
                    let Some(policy) = self.retry else {
                        return Err(ClientError::Busy { retry_after_ms });
                    };
                    attempt += 1;
                    if attempt >= policy.max_attempts.max(1) {
                        return Err(ClientError::RetriesExhausted {
                            attempts: attempt,
                            retry_after_ms,
                        });
                    }
                    let sleep_ms =
                        policy.backoff_ms(attempt - 1, retry_after_ms, &mut self.retry_state);
                    std::thread::sleep(Duration::from_millis(sleep_ms));
                }
                Reply::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                reply => return Ok(reply),
            }
        }
    }

    /// Uploads a matrix; returns `(handle, fresh)`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn load_matrix(&mut self, matrix: &CooMatrix) -> Result<(u64, bool), ClientError> {
        match self.expect(&load_request(matrix))? {
            Reply::Loaded { handle, fresh, .. } => Ok((handle, fresh)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Computes `y = A·x`; returns `(y, service_micros, simulated_nanos)`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn spmv(
        &mut self,
        handle: u64,
        engine: Engine,
        x: Vec<f32>,
    ) -> Result<(Vec<f32>, u64, u64), ClientError> {
        match self.expect(&Request::Spmv { handle, engine, x })? {
            Reply::Vector {
                y,
                service_micros,
                simulated_nanos,
            } => Ok((y, service_micros, simulated_nanos)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Runs an iterative solve of `A·x = b`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    #[allow(clippy::too_many_arguments)]
    pub fn solve(
        &mut self,
        handle: u64,
        engine: Engine,
        solver: SolverKind,
        max_iterations: u32,
        tolerance: f64,
        b: Vec<f32>,
    ) -> Result<SolveOutcome, ClientError> {
        let request = Request::Solve {
            handle,
            engine,
            solver,
            max_iterations,
            tolerance,
            b,
        };
        match self.expect(&request)? {
            Reply::Solved {
                solution,
                iterations,
                residual,
                converged,
                service_micros,
                simulated_nanos,
            } => Ok(SolveOutcome {
                solution,
                iterations,
                residual,
                converged,
                service_micros,
                simulated_nanos,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Applies a delta batch to a resident matrix (see
    /// [`Request::Update`]); the handle is unchanged, the version bumps.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn update(
        &mut self,
        handle: u64,
        inserts: Vec<(u64, u64, f32)>,
        revalues: Vec<(u64, u64, f32)>,
        deletes: Vec<(u64, u64)>,
    ) -> Result<UpdateOutcome, ClientError> {
        let request = Request::Update {
            handle,
            inserts,
            revalues,
            deletes,
        };
        match self.expect(&request)? {
            Reply::Updated {
                version,
                nnz,
                plans_spliced,
                windows_replanned,
                windows_total,
            } => Ok(UpdateOutcome {
                version,
                nnz,
                plans_spliced,
                windows_replanned,
                windows_total,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the CHPL plan artifact for a resident matrix.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn plan(&mut self, handle: u64, engine: Engine) -> Result<Vec<u8>, ClientError> {
        match self.expect(&Request::Plan { handle, engine })? {
            Reply::PlanArtifact { bytes } => Ok(bytes),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.expect(&Request::Stats)? {
            Reply::Stats(snapshot) => Ok(snapshot),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the server's metrics registry as Prometheus-style text.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.expect(&Request::Metrics)? {
            Reply::MetricsText { text } => Ok(text),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.expect(&Request::Shutdown)? {
            Reply::Done => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Occupies a worker for `millis` (diagnostic; see
    /// [`Request::Sleep`]).
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn sleep(&mut self, millis: u32) -> Result<(), ClientError> {
        match self.expect(&Request::Sleep { millis })? {
            Reply::Done => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 10,
            max_delay_ms: 100,
            seed: 42,
        };
        let mut state = policy.seed;
        let mut prev_window = 0u64;
        for attempt in 0..6 {
            let ms = policy.backoff_ms(attempt, 0, &mut state);
            let window = (10u64 << attempt).min(100);
            assert!(
                ms >= window / 2 && ms <= window,
                "attempt {attempt}: {ms} outside [{}, {window}]",
                window / 2
            );
            assert!(window >= prev_window);
            prev_window = window;
        }
    }

    #[test]
    fn backoff_honors_server_hint() {
        let policy = RetryPolicy::default();
        let mut state = policy.seed;
        // Hint above the exponential window wins.
        assert!(policy.backoff_ms(0, 200, &mut state) >= 200);
        // But never beyond the cap.
        assert_eq!(policy.backoff_ms(0, 10_000, &mut state), 500);
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let (mut a, mut b) = (policy.seed, policy.seed);
        for attempt in 0..5 {
            assert_eq!(
                policy.backoff_ms(attempt, 0, &mut a),
                policy.backoff_ms(attempt, 0, &mut b)
            );
        }
        // Different seeds give a different jitter stream somewhere.
        let (mut c, mut d) = (1u64, 2u64);
        let diverged = (0..8)
            .any(|n| policy.backoff_ms(n % 4, 0, &mut c) != policy.backoff_ms(n % 4, 0, &mut d));
        assert!(diverged);
    }
}
