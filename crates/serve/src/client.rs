//! Blocking CHSP client used by `chason client`, the load generator, and
//! the integration tests.

use crate::proto::{
    decode_reply, encode_request, load_request, read_frame_blocking, write_frame, Engine,
    ErrorCode, ProtoError, Reply, Request, SolverKind, StatsSnapshot, DEFAULT_MAX_FRAME,
};
use chason_sparse::CooMatrix;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-visible failure of one request.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(io::Error),
    /// The server's bytes did not decode as a CHSP reply.
    Proto(ProtoError),
    /// The server shed the request; retry after the hinted delay.
    Busy {
        /// Server's suggested back-off.
        retry_after_ms: u32,
    },
    /// The server answered with a typed error.
    Server {
        /// Failure class.
        code: ErrorCode,
        /// Server-rendered detail.
        message: String,
    },
    /// The server answered with a reply of the wrong type for the
    /// request.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy; retry after {retry_after_ms} ms")
            }
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected reply: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(e) => ClientError::Io(e),
            other => ClientError::Proto(other),
        }
    }
}

/// Outcome of [`Client::solve`].
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Final iterate.
    pub solution: Vec<f32>,
    /// Iterations performed.
    pub iterations: u64,
    /// Final relative residual.
    pub residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Server-side service time in microseconds.
    pub service_micros: u64,
    /// Modeled accelerator time in nanoseconds.
    pub simulated_nanos: u64,
}

/// Outcome of [`Client::update`].
#[derive(Debug, Clone, Copy)]
pub struct UpdateOutcome {
    /// The matrix's new version (1 for the first update).
    pub version: u64,
    /// Non-zero count after the delta.
    pub nnz: u64,
    /// Cached plans incrementally respliced by this update.
    pub plans_spliced: u32,
    /// Column windows re-scheduled across those splices.
    pub windows_replanned: u64,
    /// Total column windows per plan (splice denominator).
    pub windows_total: u64,
}

/// A blocking CHSP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connects and configures socket timeouts.
    ///
    /// # Errors
    ///
    /// I/O failures connecting.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Sends one request and reads its raw reply ([`Reply::Busy`] and
    /// [`Reply::Error`] included — the typed helpers map them to
    /// [`ClientError`]).
    ///
    /// # Errors
    ///
    /// Connection and decode failures.
    pub fn request(&mut self, request: &Request) -> Result<Reply, ClientError> {
        write_frame(&mut self.stream, &encode_request(request))?;
        let payload = read_frame_blocking(&mut self.stream, self.max_frame)?;
        Ok(decode_reply(&payload)?)
    }

    fn expect(&mut self, request: &Request) -> Result<Reply, ClientError> {
        match self.request(request)? {
            Reply::Busy { retry_after_ms } => Err(ClientError::Busy { retry_after_ms }),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            reply => Ok(reply),
        }
    }

    /// Uploads a matrix; returns `(handle, fresh)`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn load_matrix(&mut self, matrix: &CooMatrix) -> Result<(u64, bool), ClientError> {
        match self.expect(&load_request(matrix))? {
            Reply::Loaded { handle, fresh, .. } => Ok((handle, fresh)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Computes `y = A·x`; returns `(y, service_micros, simulated_nanos)`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn spmv(
        &mut self,
        handle: u64,
        engine: Engine,
        x: Vec<f32>,
    ) -> Result<(Vec<f32>, u64, u64), ClientError> {
        match self.expect(&Request::Spmv { handle, engine, x })? {
            Reply::Vector {
                y,
                service_micros,
                simulated_nanos,
            } => Ok((y, service_micros, simulated_nanos)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Runs an iterative solve of `A·x = b`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    #[allow(clippy::too_many_arguments)]
    pub fn solve(
        &mut self,
        handle: u64,
        engine: Engine,
        solver: SolverKind,
        max_iterations: u32,
        tolerance: f64,
        b: Vec<f32>,
    ) -> Result<SolveOutcome, ClientError> {
        let request = Request::Solve {
            handle,
            engine,
            solver,
            max_iterations,
            tolerance,
            b,
        };
        match self.expect(&request)? {
            Reply::Solved {
                solution,
                iterations,
                residual,
                converged,
                service_micros,
                simulated_nanos,
            } => Ok(SolveOutcome {
                solution,
                iterations,
                residual,
                converged,
                service_micros,
                simulated_nanos,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Applies a delta batch to a resident matrix (see
    /// [`Request::Update`]); the handle is unchanged, the version bumps.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn update(
        &mut self,
        handle: u64,
        inserts: Vec<(u64, u64, f32)>,
        revalues: Vec<(u64, u64, f32)>,
        deletes: Vec<(u64, u64)>,
    ) -> Result<UpdateOutcome, ClientError> {
        let request = Request::Update {
            handle,
            inserts,
            revalues,
            deletes,
        };
        match self.expect(&request)? {
            Reply::Updated {
                version,
                nnz,
                plans_spliced,
                windows_replanned,
                windows_total,
            } => Ok(UpdateOutcome {
                version,
                nnz,
                plans_spliced,
                windows_replanned,
                windows_total,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the CHPL plan artifact for a resident matrix.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn plan(&mut self, handle: u64, engine: Engine) -> Result<Vec<u8>, ClientError> {
        match self.expect(&Request::Plan { handle, engine })? {
            Reply::PlanArtifact { bytes } => Ok(bytes),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.expect(&Request::Stats)? {
            Reply::Stats(snapshot) => Ok(snapshot),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the server's metrics registry as Prometheus-style text.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.expect(&Request::Metrics)? {
            Reply::MetricsText { text } => Ok(text),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.expect(&Request::Shutdown)? {
            Reply::Done => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Occupies a worker for `millis` (diagnostic; see
    /// [`Request::Sleep`]).
    ///
    /// # Errors
    ///
    /// [`ClientError`] variants as for every typed helper.
    pub fn sleep(&mut self, millis: u32) -> Result<(), ClientError> {
        match self.expect(&Request::Sleep { millis })? {
            Reply::Done => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
