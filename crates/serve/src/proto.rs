//! CHSP v1 — the Chasoň service wire protocol.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by the payload. The payload's first byte is an opcode; the
//! rest is the fixed field layout documented on each variant. Frames are
//! symmetric (requests and replies share the framing), length-capped, and
//! self-contained — a reader never needs lookahead beyond the declared
//! length, and a malformed payload poisons only its own frame, not the
//! connection.
//!
//! Large payloads (matrices, plans) reuse the repo's existing binary
//! vocabulary: a `Plan` reply carries a verbatim `CHPL` artifact
//! ([`chason_core::export::write_plan`]), so a client can persist it or
//! feed it back to any offline tool that already speaks CHPL.

use chason_sparse::CooMatrix;
use std::fmt;
use std::io::{self, Read, Write};

/// Default ceiling on a frame's payload length (64 MiB) — enough for a
/// ~3M-non-zero matrix upload, small enough that a hostile length prefix
/// cannot make the server allocate without bound.
pub const DEFAULT_MAX_FRAME: usize = 64 << 20;

/// Pre-allocation ceiling for declared element counts: capacity beyond
/// this grows only as bytes are actually decoded.
const PREALLOC_LIMIT: usize = 4096;

/// Failure while framing or decoding a CHSP message.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying socket/stream failed.
    Io(io::Error),
    /// A frame declared a payload longer than the negotiated cap.
    FrameTooLarge {
        /// Declared payload length.
        len: u64,
        /// The cap it violated.
        cap: u64,
    },
    /// The payload bytes do not decode as the declared message.
    Malformed(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "CHSP I/O failed: {e}"),
            ProtoError::FrameTooLarge { len, cap } => {
                write!(f, "frame payload of {len} bytes exceeds the {cap}-byte cap")
            }
            ProtoError::Malformed(msg) => write!(f, "malformed CHSP payload: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Which execution backend a request targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Serial CSR on the host CPU (no plan cache involvement).
    Cpu,
    /// The simulated Chasoň accelerator (CrHCS scheduling).
    Chason,
    /// The simulated Serpens baseline (PE-aware scheduling).
    Serpens,
}

impl Engine {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            Engine::Cpu => 0,
            Engine::Chason => 1,
            Engine::Serpens => 2,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<Engine> {
        match code {
            0 => Some(Engine::Cpu),
            1 => Some(Engine::Chason),
            2 => Some(Engine::Serpens),
            _ => None,
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Engine> {
        match name {
            "cpu" => Some(Engine::Cpu),
            "chason" => Some(Engine::Chason),
            "serpens" => Some(Engine::Serpens),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Cpu => "cpu",
            Engine::Chason => "chason",
            Engine::Serpens => "serpens",
        }
    }
}

/// Which iterative solver a [`Request::Solve`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Conjugate gradient (SPD systems).
    Cg,
    /// Jacobi iteration (diagonally dominant systems).
    Jacobi,
}

impl SolverKind {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            SolverKind::Cg => 0,
            SolverKind::Jacobi => 1,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<SolverKind> {
        match code {
            0 => Some(SolverKind::Cg),
            1 => Some(SolverKind::Jacobi),
            _ => None,
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<SolverKind> {
        match name {
            "cg" => Some(SolverKind::Cg),
            "jacobi" => Some(SolverKind::Jacobi),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Cg => "cg",
            SolverKind::Jacobi => "jacobi",
        }
    }
}

/// Typed failure codes carried by [`Reply::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The payload did not decode; the frame is discarded, the connection
    /// survives.
    MalformedFrame,
    /// The opcode byte is not a CHSP v1 request.
    UnknownOpcode,
    /// No matrix with the given handle is resident (it may have been
    /// evicted — re-send `LoadMatrix`).
    UnknownHandle,
    /// The request is well-formed but semantically invalid (dimension
    /// mismatch, unsolvable system, unschedulable values).
    BadRequest,
    /// The server failed internally while executing the request.
    Internal,
    /// The frame's declared length exceeds the server's cap; the server
    /// cannot resynchronize, so it closes the connection after this reply.
    FrameTooLarge,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// A router could not reach a backend shard needed by the request
    /// (connection refused, broken mid-request, or health-checked down).
    ShardUnavailable,
    /// A router's scatter reached only part of the shard set, or shard
    /// replies disagreed (e.g. diverging matrix versions after an update);
    /// the gathered result was discarded rather than returned truncated.
    PartialGather,
}

impl ErrorCode {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            ErrorCode::MalformedFrame => 1,
            ErrorCode::UnknownOpcode => 2,
            ErrorCode::UnknownHandle => 3,
            ErrorCode::BadRequest => 4,
            ErrorCode::Internal => 5,
            ErrorCode::FrameTooLarge => 6,
            ErrorCode::ShuttingDown => 7,
            ErrorCode::ShardUnavailable => 8,
            ErrorCode::PartialGather => 9,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<ErrorCode> {
        match code {
            1 => Some(ErrorCode::MalformedFrame),
            2 => Some(ErrorCode::UnknownOpcode),
            3 => Some(ErrorCode::UnknownHandle),
            4 => Some(ErrorCode::BadRequest),
            5 => Some(ErrorCode::Internal),
            6 => Some(ErrorCode::FrameTooLarge),
            7 => Some(ErrorCode::ShuttingDown),
            8 => Some(ErrorCode::ShardUnavailable),
            9 => Some(ErrorCode::PartialGather),
            _ => None,
        }
    }
}

/// A client-to-server CHSP message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Uploads a matrix; the reply's handle (the structural fingerprint)
    /// names it in subsequent requests. Layout: `rows u64, cols u64,
    /// nnz u64, nnz × (row u64, col u64, value f32)`.
    LoadMatrix {
        /// Row count.
        rows: u64,
        /// Column count.
        cols: u64,
        /// Explicit triplets.
        triplets: Vec<(u64, u64, f32)>,
    },
    /// Computes `y = A·x` on a resident matrix. Layout: `handle u64,
    /// engine u8, n u64, n × f32`.
    Spmv {
        /// Matrix handle from a `Loaded` reply.
        handle: u64,
        /// Execution backend.
        engine: Engine,
        /// Dense input vector.
        x: Vec<f32>,
    },
    /// Runs an iterative solve of `A·x = b`. Layout: `handle u64,
    /// engine u8, solver u8, max_iterations u32, tolerance f64, n u64,
    /// n × f32`.
    Solve {
        /// Matrix handle from a `Loaded` reply.
        handle: u64,
        /// Execution backend for the inner SpMV products.
        engine: Engine,
        /// Which solver to run.
        solver: SolverKind,
        /// Iteration cap.
        max_iterations: u32,
        /// Relative-residual convergence tolerance.
        tolerance: f64,
        /// Right-hand side.
        b: Vec<f32>,
    },
    /// Requests the `CHPL` plan artifact for a resident matrix under the
    /// given engine. Layout: `handle u64, engine u8`.
    Plan {
        /// Matrix handle from a `Loaded` reply.
        handle: u64,
        /// Engine family the plan targets (`Cpu` is invalid here).
        engine: Engine,
    },
    /// Requests the server's counters. Served inline (never queued, never
    /// shed), so observability survives overload.
    Stats,
    /// Requests the full metrics registry as Prometheus-style text
    /// exposition. Served inline, like `Stats`.
    Metrics,
    /// Asks the server to drain in-flight work and exit.
    Shutdown,
    /// Diagnostic: occupies a worker for the given duration. Used by the
    /// integration tests and load generator to provoke queue-full
    /// shedding deterministically. Layout: `millis u32`.
    Sleep {
        /// How long the worker sleeps.
        millis: u32,
    },
    /// Applies a delta batch to a resident matrix: insert new entries,
    /// revalue or delete existing ones. The handle stays the same; the
    /// matrix's version is bumped and cached plans are incrementally
    /// respliced (dirty windows only) or rebuilt on next use. Layout:
    /// `handle u64, n_ins u64, n_rev u64, n_del u64,
    /// n_ins × (row u64, col u64, value f32),
    /// n_rev × (row u64, col u64, value f32),
    /// n_del × (row u64, col u64)`.
    Update {
        /// Matrix handle from a `Loaded` reply.
        handle: u64,
        /// Entries to insert (coordinates must be vacant).
        inserts: Vec<(u64, u64, f32)>,
        /// Entries to revalue (coordinates must exist).
        revalues: Vec<(u64, u64, f32)>,
        /// Entries to delete (coordinates must exist).
        deletes: Vec<(u64, u64)>,
    },
}

/// A server-to-client CHSP message.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A matrix is resident under `handle`.
    Loaded {
        /// Structural fingerprint; the matrix's name in later requests.
        handle: u64,
        /// Row count as parsed.
        rows: u64,
        /// Column count as parsed.
        cols: u64,
        /// Non-zero count as parsed.
        nnz: u64,
        /// Whether this upload inserted the matrix (`false`: it was
        /// already resident and the upload was a no-op).
        fresh: bool,
        /// Current version of the resident lineage the handle names: 0
        /// for a fresh (or never-updated) matrix, bumped by every
        /// `Update`. Lets a frontend detect that a handle now names
        /// content that has diverged from the triplets it just sent.
        version: u64,
    },
    /// The result vector of a `Spmv`.
    Vector {
        /// `y = A·x`.
        y: Vec<f32>,
        /// Wall-clock execution time on the server (queue wait excluded).
        service_micros: u64,
        /// Modeled accelerator latency (0 for the CPU backend).
        simulated_nanos: u64,
    },
    /// The outcome of a `Solve`.
    Solved {
        /// Final iterate.
        solution: Vec<f32>,
        /// Iterations performed.
        iterations: u64,
        /// Final relative residual.
        residual: f64,
        /// Whether the tolerance was reached.
        converged: bool,
        /// Wall-clock execution time on the server (queue wait excluded).
        service_micros: u64,
        /// Accumulated modeled SpMV latency (0 for the CPU backend).
        simulated_nanos: u64,
    },
    /// A verbatim `CHPL` plan artifact.
    PlanArtifact {
        /// The artifact bytes ([`chason_core::export::read_plan`] decodes
        /// them).
        bytes: Vec<u8>,
    },
    /// The server's counters.
    Stats(StatsSnapshot),
    /// The metrics registry rendered as Prometheus-style text exposition.
    /// Layout: `len u32, len × UTF-8 bytes`.
    MetricsText {
        /// The exposition text ([`chason_telemetry::metrics::Registry::render_prometheus`]).
        text: String,
    },
    /// Acknowledges `Shutdown` / `Sleep`.
    Done,
    /// The request was shed: the worker queue is full. The connection
    /// survives; retry after the hinted delay.
    Busy {
        /// Suggested client back-off.
        retry_after_ms: u32,
    },
    /// The request failed.
    Error {
        /// Typed failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Acknowledges an `Update`: the matrix advanced to `version`. Layout:
    /// `version u64, nnz u64, plans_spliced u32, windows_replanned u64,
    /// windows_total u64`.
    Updated {
        /// The matrix's new version (1 for the first update).
        version: u64,
        /// Non-zero count after the delta.
        nnz: u64,
        /// Cached plans that were incrementally respliced (rather than
        /// invalidated) by this update.
        plans_spliced: u32,
        /// Column windows re-scheduled across those splices.
        windows_replanned: u64,
        /// Total column windows per plan (splice denominator).
        windows_total: u64,
    },
}

/// A point-in-time copy of every server counter, as carried by
/// [`Reply::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Milliseconds since the server started.
    pub uptime_millis: u64,
    /// `LoadMatrix` requests accepted into the queue.
    pub requests_load: u64,
    /// `Spmv` requests accepted into the queue.
    pub requests_spmv: u64,
    /// `Solve` requests accepted into the queue.
    pub requests_solve: u64,
    /// `Plan` requests accepted into the queue.
    pub requests_plan: u64,
    /// `Stats` requests served (inline).
    pub requests_stats: u64,
    /// `Sleep` requests accepted into the queue.
    pub requests_sleep: u64,
    /// Requests rejected with `Busy` because the queue was full.
    pub shed: u64,
    /// Extra SpMV requests executed by piggybacking on another request's
    /// plan resolution (same-matrix batching).
    pub batched: u64,
    /// Highest queue depth observed.
    pub queue_depth_hwm: u64,
    /// Plan-cache lookups served from cache.
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that had to schedule.
    pub plan_cache_misses: u64,
    /// Plans displaced by inserts into a full cache.
    pub plan_cache_evictions: u64,
    /// Plans currently resident.
    pub plan_cache_len: u64,
    /// Plan-cache capacity.
    pub plan_cache_capacity: u64,
    /// Matrices currently resident.
    pub matrices_resident: u64,
    /// Matrices displaced by inserts into a full cache.
    pub matrix_evictions: u64,
    /// Median execution time (queue wait excluded), in microseconds.
    pub service_p50_micros: u64,
    /// 99th-percentile execution time.
    pub service_p99_micros: u64,
    /// Worst execution time.
    pub service_max_micros: u64,
    /// Execution-time samples recorded since start.
    pub service_samples: u64,
    /// Median time a request waited in the queue before a worker picked
    /// it up, in microseconds.
    pub queue_p50_micros: u64,
    /// 99th-percentile queue wait.
    pub queue_p99_micros: u64,
    /// Worst queue wait.
    pub queue_max_micros: u64,
    /// `Update` requests accepted into the queue.
    pub requests_update: u64,
    /// Cached plans incrementally respliced (rather than rebuilt) after
    /// matrix updates.
    pub plans_spliced: u64,
    /// Column windows re-scheduled across all plan splices.
    pub replan_windows: u64,
}

impl StatsSnapshot {
    /// Fraction of plan lookups served from cache.
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / total as f64
        }
    }

    /// Total requests accepted for execution (shed and inline stats
    /// excluded).
    pub fn requests_executed(&self) -> u64 {
        self.requests_load
            + self.requests_spmv
            + self.requests_solve
            + self.requests_plan
            + self.requests_sleep
            + self.requests_update
    }

    const FIELDS: usize = 27;

    fn to_words(self) -> [u64; Self::FIELDS] {
        [
            self.uptime_millis,
            self.requests_load,
            self.requests_spmv,
            self.requests_solve,
            self.requests_plan,
            self.requests_stats,
            self.requests_sleep,
            self.shed,
            self.batched,
            self.queue_depth_hwm,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.plan_cache_evictions,
            self.plan_cache_len,
            self.plan_cache_capacity,
            self.matrices_resident,
            self.matrix_evictions,
            self.service_p50_micros,
            self.service_p99_micros,
            self.service_max_micros,
            self.service_samples,
            self.queue_p50_micros,
            self.queue_p99_micros,
            self.queue_max_micros,
            self.requests_update,
            self.plans_spliced,
            self.replan_windows,
        ]
    }

    fn from_words(w: [u64; Self::FIELDS]) -> StatsSnapshot {
        StatsSnapshot {
            uptime_millis: w[0],
            requests_load: w[1],
            requests_spmv: w[2],
            requests_solve: w[3],
            requests_plan: w[4],
            requests_stats: w[5],
            requests_sleep: w[6],
            shed: w[7],
            batched: w[8],
            queue_depth_hwm: w[9],
            plan_cache_hits: w[10],
            plan_cache_misses: w[11],
            plan_cache_evictions: w[12],
            plan_cache_len: w[13],
            plan_cache_capacity: w[14],
            matrices_resident: w[15],
            matrix_evictions: w[16],
            service_p50_micros: w[17],
            service_p99_micros: w[18],
            service_max_micros: w[19],
            service_samples: w[20],
            queue_p50_micros: w[21],
            queue_p99_micros: w[22],
            queue_max_micros: w[23],
            requests_update: w[24],
            plans_spliced: w[25],
            replan_windows: w[26],
        }
    }

    /// Renders the snapshot as the aligned table `chason client stats`
    /// prints.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: String| {
            out.push_str(&format!("{k:<22}: {v}\n"));
        };
        line(
            "uptime",
            format!("{:.1} s", self.uptime_millis as f64 / 1e3),
        );
        line(
            "requests executed",
            format!(
                "{} (load {}, spmv {}, solve {}, plan {}, sleep {}, update {})",
                self.requests_executed(),
                self.requests_load,
                self.requests_spmv,
                self.requests_solve,
                self.requests_plan,
                self.requests_sleep,
                self.requests_update
            ),
        );
        line("stats served inline", self.requests_stats.to_string());
        line("shed (queue full)", self.shed.to_string());
        line("batched spmv", self.batched.to_string());
        line("queue depth hwm", self.queue_depth_hwm.to_string());
        line(
            "plan cache",
            format!(
                "{} hits / {} misses ({:.1}% hit rate), {} evictions, {}/{} resident",
                self.plan_cache_hits,
                self.plan_cache_misses,
                self.plan_hit_rate() * 100.0,
                self.plan_cache_evictions,
                self.plan_cache_len,
                self.plan_cache_capacity
            ),
        );
        line(
            "matrices resident",
            format!(
                "{} ({} evictions)",
                self.matrices_resident, self.matrix_evictions
            ),
        );
        line(
            "plan splices",
            format!(
                "{} ({} windows replanned)",
                self.plans_spliced, self.replan_windows
            ),
        );
        line(
            "service time",
            format!(
                "p50 {} us, p99 {} us, max {} us over {} samples",
                self.service_p50_micros,
                self.service_p99_micros,
                self.service_max_micros,
                self.service_samples
            ),
        );
        line(
            "queue wait",
            format!(
                "p50 {} us, p99 {} us, max {} us",
                self.queue_p50_micros, self.queue_p99_micros, self.queue_max_micros
            ),
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

const OP_LOAD: u8 = 0x01;
const OP_SPMV: u8 = 0x02;
const OP_SOLVE: u8 = 0x03;
const OP_PLAN: u8 = 0x04;
const OP_STATS: u8 = 0x05;
const OP_SHUTDOWN: u8 = 0x06;
const OP_SLEEP: u8 = 0x07;
const OP_METRICS: u8 = 0x08;
const OP_UPDATE: u8 = 0x09;

const RP_LOADED: u8 = 0x81;
const RP_VECTOR: u8 = 0x82;
const RP_SOLVED: u8 = 0x83;
const RP_PLAN: u8 = 0x84;
const RP_STATS: u8 = 0x85;
const RP_DONE: u8 = 0x86;
const RP_BUSY: u8 = 0x87;
const RP_ERROR: u8 = 0x88;
const RP_METRICS: u8 = 0x89;
const RP_UPDATED: u8 = 0x8A;

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Malformed(format!(
                "payload underrun: wanted {n} more bytes, have {}",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32, ProtoError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f32_vec(&mut self, what: &str) -> Result<Vec<f32>, ProtoError> {
        let n = self.u64()? as usize;
        if self.remaining() != n.saturating_mul(4) {
            return Err(ProtoError::Malformed(format!(
                "{what}: declared {n} f32 values but {} payload bytes remain",
                self.remaining()
            )));
        }
        let mut v = Vec::with_capacity(n.min(PREALLOC_LIMIT));
        for _ in 0..n {
            v.push(self.f32()?);
        }
        Ok(v)
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() != 0 {
            return Err(ProtoError::Malformed(format!(
                "{} trailing bytes after message",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32_vec(buf: &mut Vec<u8>, v: &[f32]) {
    put_u64(buf, v.len() as u64);
    for &x in v {
        put_u32(buf, x.to_bits());
    }
}

/// Encodes a request payload (framing is [`write_frame`]'s job).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    match req {
        Request::LoadMatrix {
            rows,
            cols,
            triplets,
        } => {
            buf.push(OP_LOAD);
            put_u64(&mut buf, *rows);
            put_u64(&mut buf, *cols);
            put_u64(&mut buf, triplets.len() as u64);
            for &(r, c, v) in triplets {
                put_u64(&mut buf, r);
                put_u64(&mut buf, c);
                put_u32(&mut buf, v.to_bits());
            }
        }
        Request::Spmv { handle, engine, x } => {
            buf.push(OP_SPMV);
            put_u64(&mut buf, *handle);
            buf.push(engine.code());
            put_f32_vec(&mut buf, x);
        }
        Request::Solve {
            handle,
            engine,
            solver,
            max_iterations,
            tolerance,
            b,
        } => {
            buf.push(OP_SOLVE);
            put_u64(&mut buf, *handle);
            buf.push(engine.code());
            buf.push(solver.code());
            put_u32(&mut buf, *max_iterations);
            put_u64(&mut buf, tolerance.to_bits());
            put_f32_vec(&mut buf, b);
        }
        Request::Plan { handle, engine } => {
            buf.push(OP_PLAN);
            put_u64(&mut buf, *handle);
            buf.push(engine.code());
        }
        Request::Stats => buf.push(OP_STATS),
        Request::Metrics => buf.push(OP_METRICS),
        Request::Shutdown => buf.push(OP_SHUTDOWN),
        Request::Sleep { millis } => {
            buf.push(OP_SLEEP);
            put_u32(&mut buf, *millis);
        }
        Request::Update {
            handle,
            inserts,
            revalues,
            deletes,
        } => {
            buf.push(OP_UPDATE);
            put_u64(&mut buf, *handle);
            put_u64(&mut buf, inserts.len() as u64);
            put_u64(&mut buf, revalues.len() as u64);
            put_u64(&mut buf, deletes.len() as u64);
            for &(r, c, v) in inserts.iter().chain(revalues.iter()) {
                put_u64(&mut buf, r);
                put_u64(&mut buf, c);
                put_u32(&mut buf, v.to_bits());
            }
            for &(r, c) in deletes {
                put_u64(&mut buf, r);
                put_u64(&mut buf, c);
            }
        }
    }
    buf
}

/// Decodes a request payload.
///
/// # Errors
///
/// [`ProtoError::Malformed`] when the bytes do not decode as exactly one
/// request.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    let req = match op {
        OP_LOAD => {
            let rows = c.u64()?;
            let cols = c.u64()?;
            let nnz = c.u64()? as usize;
            if c.remaining() != nnz.saturating_mul(20) {
                return Err(ProtoError::Malformed(format!(
                    "LoadMatrix: declared {nnz} triplets but {} payload bytes remain",
                    c.remaining()
                )));
            }
            let mut triplets = Vec::with_capacity(nnz.min(PREALLOC_LIMIT));
            for _ in 0..nnz {
                let r = c.u64()?;
                let col = c.u64()?;
                let v = c.f32()?;
                triplets.push((r, col, v));
            }
            Request::LoadMatrix {
                rows,
                cols,
                triplets,
            }
        }
        OP_SPMV => {
            let handle = c.u64()?;
            let engine = Engine::from_code(c.u8()?)
                .ok_or_else(|| ProtoError::Malformed("bad engine code".to_string()))?;
            let x = c.f32_vec("Spmv")?;
            Request::Spmv { handle, engine, x }
        }
        OP_SOLVE => {
            let handle = c.u64()?;
            let engine = Engine::from_code(c.u8()?)
                .ok_or_else(|| ProtoError::Malformed("bad engine code".to_string()))?;
            let solver = SolverKind::from_code(c.u8()?)
                .ok_or_else(|| ProtoError::Malformed("bad solver code".to_string()))?;
            let max_iterations = c.u32()?;
            let tolerance = c.f64()?;
            let b = c.f32_vec("Solve")?;
            Request::Solve {
                handle,
                engine,
                solver,
                max_iterations,
                tolerance,
                b,
            }
        }
        OP_PLAN => {
            let handle = c.u64()?;
            let engine = Engine::from_code(c.u8()?)
                .ok_or_else(|| ProtoError::Malformed("bad engine code".to_string()))?;
            Request::Plan { handle, engine }
        }
        OP_STATS => Request::Stats,
        OP_METRICS => Request::Metrics,
        OP_SHUTDOWN => Request::Shutdown,
        OP_SLEEP => Request::Sleep { millis: c.u32()? },
        OP_UPDATE => {
            let handle = c.u64()?;
            let n_ins = c.u64()? as usize;
            let n_rev = c.u64()? as usize;
            let n_del = c.u64()? as usize;
            let expect = n_ins
                .saturating_mul(20)
                .saturating_add(n_rev.saturating_mul(20))
                .saturating_add(n_del.saturating_mul(16));
            if c.remaining() != expect {
                return Err(ProtoError::Malformed(format!(
                    "Update: declared {n_ins}+{n_rev} triplets and {n_del} coordinates \
                     but {} payload bytes remain",
                    c.remaining()
                )));
            }
            let mut inserts = Vec::with_capacity(n_ins.min(PREALLOC_LIMIT));
            for _ in 0..n_ins {
                let r = c.u64()?;
                let col = c.u64()?;
                let v = c.f32()?;
                inserts.push((r, col, v));
            }
            let mut revalues = Vec::with_capacity(n_rev.min(PREALLOC_LIMIT));
            for _ in 0..n_rev {
                let r = c.u64()?;
                let col = c.u64()?;
                let v = c.f32()?;
                revalues.push((r, col, v));
            }
            let mut deletes = Vec::with_capacity(n_del.min(PREALLOC_LIMIT));
            for _ in 0..n_del {
                let r = c.u64()?;
                let col = c.u64()?;
                deletes.push((r, col));
            }
            Request::Update {
                handle,
                inserts,
                revalues,
                deletes,
            }
        }
        other => {
            return Err(ProtoError::Malformed(format!(
                "unknown request opcode {other:#04x}"
            )))
        }
    };
    c.finish()?;
    Ok(req)
}

/// Encodes a reply payload (framing is [`write_frame`]'s job).
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut buf = Vec::new();
    match reply {
        Reply::Loaded {
            handle,
            rows,
            cols,
            nnz,
            fresh,
            version,
        } => {
            buf.push(RP_LOADED);
            put_u64(&mut buf, *handle);
            put_u64(&mut buf, *rows);
            put_u64(&mut buf, *cols);
            put_u64(&mut buf, *nnz);
            buf.push(u8::from(*fresh));
            put_u64(&mut buf, *version);
        }
        Reply::Vector {
            y,
            service_micros,
            simulated_nanos,
        } => {
            buf.push(RP_VECTOR);
            put_u64(&mut buf, *service_micros);
            put_u64(&mut buf, *simulated_nanos);
            put_f32_vec(&mut buf, y);
        }
        Reply::Solved {
            solution,
            iterations,
            residual,
            converged,
            service_micros,
            simulated_nanos,
        } => {
            buf.push(RP_SOLVED);
            put_u64(&mut buf, *iterations);
            put_u64(&mut buf, residual.to_bits());
            buf.push(u8::from(*converged));
            put_u64(&mut buf, *service_micros);
            put_u64(&mut buf, *simulated_nanos);
            put_f32_vec(&mut buf, solution);
        }
        Reply::PlanArtifact { bytes } => {
            buf.push(RP_PLAN);
            put_u64(&mut buf, bytes.len() as u64);
            buf.extend_from_slice(bytes);
        }
        Reply::Stats(snapshot) => {
            buf.push(RP_STATS);
            for word in snapshot.to_words() {
                put_u64(&mut buf, word);
            }
        }
        Reply::MetricsText { text } => {
            buf.push(RP_METRICS);
            let bytes = text.as_bytes();
            put_u32(&mut buf, bytes.len() as u32);
            buf.extend_from_slice(bytes);
        }
        Reply::Done => buf.push(RP_DONE),
        Reply::Busy { retry_after_ms } => {
            buf.push(RP_BUSY);
            put_u32(&mut buf, *retry_after_ms);
        }
        Reply::Error { code, message } => {
            buf.push(RP_ERROR);
            buf.push(code.code());
            let bytes = message.as_bytes();
            put_u32(&mut buf, bytes.len() as u32);
            buf.extend_from_slice(bytes);
        }
        Reply::Updated {
            version,
            nnz,
            plans_spliced,
            windows_replanned,
            windows_total,
        } => {
            buf.push(RP_UPDATED);
            put_u64(&mut buf, *version);
            put_u64(&mut buf, *nnz);
            put_u32(&mut buf, *plans_spliced);
            put_u64(&mut buf, *windows_replanned);
            put_u64(&mut buf, *windows_total);
        }
    }
    buf
}

/// Decodes a reply payload.
///
/// # Errors
///
/// [`ProtoError::Malformed`] when the bytes do not decode as exactly one
/// reply.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, ProtoError> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    let reply = match op {
        RP_LOADED => {
            let handle = c.u64()?;
            let rows = c.u64()?;
            let cols = c.u64()?;
            let nnz = c.u64()?;
            let fresh = match c.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(ProtoError::Malformed(format!("bad fresh flag {other}")));
                }
            };
            let version = c.u64()?;
            Reply::Loaded {
                handle,
                rows,
                cols,
                nnz,
                fresh,
                version,
            }
        }
        RP_VECTOR => {
            let service_micros = c.u64()?;
            let simulated_nanos = c.u64()?;
            let y = c.f32_vec("Vector")?;
            Reply::Vector {
                y,
                service_micros,
                simulated_nanos,
            }
        }
        RP_SOLVED => {
            let iterations = c.u64()?;
            let residual = c.f64()?;
            let converged = match c.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(ProtoError::Malformed(format!("bad converged flag {other}")));
                }
            };
            let service_micros = c.u64()?;
            let simulated_nanos = c.u64()?;
            let solution = c.f32_vec("Solved")?;
            Reply::Solved {
                solution,
                iterations,
                residual,
                converged,
                service_micros,
                simulated_nanos,
            }
        }
        RP_PLAN => {
            let len = c.u64()? as usize;
            if c.remaining() != len {
                return Err(ProtoError::Malformed(format!(
                    "PlanArtifact: declared {len} bytes but {} remain",
                    c.remaining()
                )));
            }
            let bytes = c.take(len)?.to_vec();
            Reply::PlanArtifact { bytes }
        }
        RP_STATS => {
            let mut words = [0u64; StatsSnapshot::FIELDS];
            for word in &mut words {
                *word = c.u64()?;
            }
            Reply::Stats(StatsSnapshot::from_words(words))
        }
        RP_METRICS => {
            let len = c.u32()? as usize;
            let bytes = c.take(len)?.to_vec();
            let text = String::from_utf8(bytes)
                .map_err(|_| ProtoError::Malformed("metrics text is not UTF-8".to_string()))?;
            Reply::MetricsText { text }
        }
        RP_DONE => Reply::Done,
        RP_BUSY => Reply::Busy {
            retry_after_ms: c.u32()?,
        },
        RP_UPDATED => {
            let version = c.u64()?;
            let nnz = c.u64()?;
            let plans_spliced = c.u32()?;
            let windows_replanned = c.u64()?;
            let windows_total = c.u64()?;
            Reply::Updated {
                version,
                nnz,
                plans_spliced,
                windows_replanned,
                windows_total,
            }
        }
        RP_ERROR => {
            let code = ErrorCode::from_code(c.u8()?)
                .ok_or_else(|| ProtoError::Malformed("bad error code".to_string()))?;
            let len = c.u32()? as usize;
            let bytes = c.take(len)?.to_vec();
            let message = String::from_utf8(bytes)
                .map_err(|_| ProtoError::Malformed("error message is not UTF-8".to_string()))?;
            Reply::Error { code, message }
        }
        other => {
            return Err(ProtoError::Malformed(format!(
                "unknown reply opcode {other:#04x}"
            )))
        }
    };
    c.finish()?;
    Ok(reply)
}

/// Builds a [`Request::LoadMatrix`] from a COO matrix.
pub fn load_request(matrix: &CooMatrix) -> Request {
    Request::LoadMatrix {
        rows: matrix.rows() as u64,
        cols: matrix.cols() as u64,
        triplets: matrix
            .iter()
            .map(|&(r, c, v)| (r as u64, c as u64, v))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame: `u32` little-endian payload length, then the payload.
///
/// The header is a `u32`, so a payload longer than `u32::MAX` cannot be
/// framed at all — casting would silently truncate the declared length and
/// desynchronize the stream. Such payloads are rejected before any byte is
/// written.
///
/// # Errors
///
/// [`ProtoError::FrameTooLarge`] when the payload cannot be represented in
/// the `u32` length header; [`ProtoError::Io`] for I/O failures (including
/// write timeouts).
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> Result<(), ProtoError> {
    write_frame_capped(writer, payload, u32::MAX as usize)
}

/// [`write_frame`] with an explicit payload cap, mirroring the cap
/// [`read_frame_blocking`] enforces on the read side. Nothing is written
/// when the payload is over the cap, so the stream stays synchronized.
///
/// # Errors
///
/// [`ProtoError::FrameTooLarge`] when `payload.len() > max_len`;
/// [`ProtoError::Io`] for I/O failures.
pub fn write_frame_capped<W: Write>(
    writer: &mut W,
    payload: &[u8],
    max_len: usize,
) -> Result<(), ProtoError> {
    let cap = max_len.min(u32::MAX as usize);
    if payload.len() > cap {
        return Err(ProtoError::FrameTooLarge {
            len: payload.len() as u64,
            cap: cap as u64,
        });
    }
    writer.write_all(&(payload.len() as u32).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame, blocking until it is complete.
///
/// # Errors
///
/// [`ProtoError::FrameTooLarge`] when the declared length exceeds
/// `max_len`; [`ProtoError::Io`] for I/O failures (a clean EOF before the
/// first header byte surfaces as `UnexpectedEof`).
pub fn read_frame_blocking<R: Read>(reader: &mut R, max_len: usize) -> Result<Vec<u8>, ProtoError> {
    let mut header = [0u8; 4];
    reader.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > max_len {
        return Err(ProtoError::FrameTooLarge {
            len: len as u64,
            cap: max_len as u64,
        });
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// What one [`FrameReader::poll`] call produced.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Eof,
    /// The socket's read timeout elapsed; partial progress is retained
    /// and the next `poll` resumes where this one stopped.
    Timeout,
}

/// Incremental frame reader for sockets with a read timeout.
///
/// A timeout mid-frame must not lose the bytes already read — the server
/// polls in short ticks so it can notice shutdown — so this reader keeps
/// partial header/payload progress across calls.
#[derive(Debug)]
pub struct FrameReader {
    max_len: usize,
    header: [u8; 4],
    filled: usize,
    payload: Vec<u8>,
    payload_len: Option<usize>,
}

impl FrameReader {
    /// Creates a reader enforcing `max_len` on every frame.
    pub fn new(max_len: usize) -> Self {
        FrameReader {
            max_len,
            header: [0; 4],
            filled: 0,
            payload: Vec::new(),
            payload_len: None,
        }
    }

    /// Whether a frame is partially read (EOF here is a mid-frame
    /// disconnect, not a clean close).
    pub fn mid_frame(&self) -> bool {
        self.filled > 0 || self.payload_len.is_some()
    }

    /// Advances the read state machine by at most one socket read
    /// timeout.
    ///
    /// # Errors
    ///
    /// [`ProtoError::FrameTooLarge`] for an over-cap declared length
    /// (unrecoverable: the stream cannot be resynchronized);
    /// [`ProtoError::Io`] for I/O failures other than timeouts, including
    /// mid-frame EOF.
    pub fn poll<R: Read>(&mut self, reader: &mut R) -> Result<FrameEvent, ProtoError> {
        loop {
            if let Some(len) = self.payload_len {
                // Reading the payload.
                let have = self.payload.len();
                if have == len {
                    let frame = std::mem::take(&mut self.payload);
                    self.payload_len = None;
                    self.filled = 0;
                    return Ok(FrameEvent::Frame(frame));
                }
                let mut chunk = [0u8; 16 * 1024];
                let want = (len - have).min(chunk.len());
                match reader.read(&mut chunk[..want]) {
                    Ok(0) => {
                        return Err(ProtoError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        )))
                    }
                    Ok(n) => self.payload.extend_from_slice(&chunk[..n]),
                    Err(e) if is_timeout(&e) => return Ok(FrameEvent::Timeout),
                    Err(e) => return Err(ProtoError::Io(e)),
                }
            } else {
                // Reading the 4-byte length header.
                match reader.read(&mut self.header[self.filled..]) {
                    Ok(0) => {
                        if self.filled == 0 {
                            return Ok(FrameEvent::Eof);
                        }
                        return Err(ProtoError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-header",
                        )));
                    }
                    Ok(n) => {
                        self.filled += n;
                        if self.filled == 4 {
                            let len = u32::from_le_bytes(self.header) as usize;
                            if len > self.max_len {
                                return Err(ProtoError::FrameTooLarge {
                                    len: len as u64,
                                    cap: self.max_len as u64,
                                });
                            }
                            self.payload = Vec::with_capacity(len.min(1 << 20));
                            self.payload_len = Some(len);
                        }
                    }
                    Err(e) if is_timeout(&e) => return Ok(FrameEvent::Timeout),
                    Err(e) => return Err(ProtoError::Io(e)),
                }
            }
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(buf.len(), 9);
        let payload = read_frame_blocking(&mut buf.as_slice(), 64).unwrap();
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn oversized_frame_is_rejected_by_both_readers() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        assert!(matches!(
            read_frame_blocking(&mut buf.as_slice(), 50).unwrap_err(),
            ProtoError::FrameTooLarge { len: 100, cap: 50 }
        ));
        let mut reader = FrameReader::new(50);
        assert!(matches!(
            reader.poll(&mut buf.as_slice()).unwrap_err(),
            ProtoError::FrameTooLarge { .. }
        ));
    }

    #[test]
    fn over_cap_payload_is_rejected_on_the_write_side() {
        // The cap is enforced before any byte reaches the writer, so an
        // oversized payload cannot desynchronize the stream.
        let mut buf = Vec::new();
        let err = write_frame_capped(&mut buf, &[0u8; 101], 100).unwrap_err();
        assert!(
            matches!(err, ProtoError::FrameTooLarge { len: 101, cap: 100 }),
            "{err}"
        );
        assert!(
            buf.is_empty(),
            "nothing may be written for a rejected frame"
        );
        // At the cap is fine.
        write_frame_capped(&mut buf, &[0u8; 100], 100).unwrap();
        assert_eq!(buf.len(), 104);
        // The uncapped entry point still enforces the u32 header limit;
        // requesting a larger cap clamps rather than overflows.
        let mut buf = Vec::new();
        write_frame_capped(&mut buf, b"ok", usize::MAX).unwrap();
        assert_eq!(read_frame_blocking(&mut buf.as_slice(), 16).unwrap(), b"ok");
    }

    #[test]
    fn incremental_reader_survives_byte_at_a_time_delivery() {
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut reader = FrameReader::new(16);
        let mut src = OneByte(&wire);
        match reader.poll(&mut src).unwrap() {
            FrameEvent::Frame(f) => assert_eq!(f, b"abc"),
            other => panic!("{other:?}"),
        }
        match reader.poll(&mut src).unwrap() {
            FrameEvent::Frame(f) => assert!(f.is_empty()),
            other => panic!("{other:?}"),
        }
        assert!(matches!(reader.poll(&mut src).unwrap(), FrameEvent::Eof));
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        wire.truncate(6);
        let mut reader = FrameReader::new(16);
        let err = reader.poll(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(err, ProtoError::Io(_)), "{err}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(&Request::Stats);
        payload.push(0);
        assert!(decode_request(&payload).is_err());
        let mut payload = encode_reply(&Reply::Done);
        payload.push(7);
        assert!(decode_reply(&payload).is_err());
    }

    #[test]
    fn declared_count_must_match_payload_length() {
        // A Spmv declaring 1M floats with a 4-byte body must be rejected
        // before any allocation proportional to the declared count.
        let mut payload = vec![OP_SPMV];
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.push(1);
        payload.extend_from_slice(&1_000_000u64.to_le_bytes());
        payload.extend_from_slice(&[0u8; 4]);
        let err = decode_request(&payload).unwrap_err();
        assert!(matches!(err, ProtoError::Malformed(_)), "{err}");
    }

    #[test]
    fn unknown_opcodes_are_rejected() {
        assert!(decode_request(&[0x42]).is_err());
        assert!(decode_reply(&[0x42]).is_err());
        assert!(decode_request(&[]).is_err());
    }
}
