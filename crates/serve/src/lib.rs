//! `chason-serve`: a long-lived SpMV/solver service over the simulated
//! accelerators.
//!
//! An accelerator's scheduling preprocessing (§4 of the paper) only pays
//! off when it is amortized — the same plan replayed across many products
//! and many callers. This crate turns the repo's batch pipeline into that
//! amortizing process: a TCP daemon speaking **CHSP v1** (a length-prefixed
//! binary protocol, [`proto`]), keeping matrices and schedule plans in
//! shared bounded LRU caches, executing requests on a fixed worker pool
//! behind a bounded queue, and shedding load with `Busy` replies instead
//! of collapsing when oversubscribed.
//!
//! The pieces:
//!
//! * [`proto`] — wire format: frames, requests, replies, the incremental
//!   [`FrameReader`](proto::FrameReader).
//! * [`server`] — [`Server`](server::Server): listener, per-connection
//!   threads, worker pool, shared caches, graceful drain.
//! * [`client`] — blocking [`Client`](client::Client) with typed helpers.
//! * [`loadgen`] — deterministic closed-loop load generator
//!   (`chason loadgen`).
//! * [`stats`] — lock-free counters behind the `Stats` request.
//!
//! Built entirely on `std` networking and the repo's vendored shims; see
//! `DESIGN.md` §9 for the wire format, threading model, and shedding
//! policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frontend;
pub mod loadgen;
pub mod proto;
pub mod server;
pub mod stats;

pub use chason_net::NetMode;
pub use client::{Client, ClientError, RetryPolicy, UpdateOutcome};
pub use loadgen::{LoadgenOptions, LoadgenReport, RouterLoadReport};
pub use proto::{Engine, ErrorCode, Reply, Request, SolverKind, StatsSnapshot};
pub use server::{ServeConfig, Server};
