//! The `chason serve` daemon: connection front end plus worker pool.
//!
//! # Threading model
//!
//! The connection edge runs in one of two modes
//! ([`ServeConfig::net`], `--net async|threads`), byte-identical at the
//! wire:
//!
//! * **async** (default): a [`chason_net`] readiness event loop — one
//!   accept thread plus one loop thread multiplex every connection,
//!   reassemble frames incrementally, and allow request pipelining.
//! * **threads**: the original thread-per-connection loop.
//!
//! Either way, `Stats`/`Metrics`/`Shutdown` are answered inline by the
//! connection layer; everything else is pushed onto one bounded MPMC
//! queue feeding a fixed pool of worker threads. The queue is the
//! backpressure boundary: when it is full, the front end replies
//! [`Reply::Busy`] immediately (load-shedding) instead of blocking, so a
//! saturated server stays responsive and observable — `Stats` never
//! queues. The shared connection-layer logic lives in
//! [`crate::frontend`].
//!
//! # Shutdown
//!
//! `Shutdown` (or [`Server::shutdown`]) flips a flag and stops the
//! accept path. In-flight requests finish and their replies flush; new
//! work is refused with [`ErrorCode::ShuttingDown`]. Once the connection
//! layer has dropped its queue handle the workers drain what remains and
//! exit: accepted work is always answered.

use crate::frontend::{
    start_async_frontend, threaded_listener_loop, ChspFrontend, EnqueueOutcome, Job,
};
use crate::proto::{
    Engine, ErrorCode, Reply, Request, SolverKind, StatsSnapshot, DEFAULT_MAX_FRAME,
};
use crate::stats::{lock_unpoisoned, ServerStats};
use chason::solvers::{conjugate_gradient, jacobi, CgOptions, SpmvBackend};
use chason_core::cache::LruCache;
use chason_core::plan::{matrix_fingerprint, PlanKey, SpmvPlan};
use chason_core::schedule::SchedulerConfig;
use chason_net::{NetMode, NetServer};
use chason_sim::{AcceleratorConfig, ChasonEngine, PlanningEngine, SerpensEngine, SimError};
use chason_sparse::{CooMatrix, CowCsr, MatrixDelta};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tunable knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing queued requests.
    pub workers: usize,
    /// Bounded queue capacity between connections and workers; the
    /// load-shedding threshold.
    pub queue_capacity: usize,
    /// Plan-cache capacity (entries are `(engine, plan key)` pairs).
    pub plan_cache_capacity: usize,
    /// Resident-matrix cache capacity.
    pub matrix_cache_capacity: usize,
    /// How long a connection may sit idle (no frame progress) before the
    /// server hangs up.
    pub idle_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Largest accepted frame payload.
    pub max_frame_len: usize,
    /// Most same-matrix SpMV requests one worker dequeue may batch.
    pub batch_max: usize,
    /// Back-off hint carried by [`Reply::Busy`].
    pub retry_after_ms: u32,
    /// Scheduler configuration both simulated engines run under.
    pub sched: SchedulerConfig,
    /// Which connection front end to run (`--net async|threads`).
    pub net: NetMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            plan_cache_capacity: 64,
            matrix_cache_capacity: 32,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME,
            batch_max: 8,
            retry_after_ms: 20,
            sched: SchedulerConfig::paper(),
            net: NetMode::default(),
        }
    }
}

/// A resident matrix: the COO source of truth, a CSR mirror whose row
/// storage is structurally shared across versions, and a version counter
/// that `Update` bumps. The cache key (the load-time fingerprint) never
/// changes; the version distinguishes delta generations.
#[derive(Debug, Clone)]
struct ResidentMatrix {
    matrix: Arc<CooMatrix>,
    csr: Arc<CowCsr>,
    version: u64,
}

/// State shared by every connection and worker thread.
///
/// Lock ordering: `matrices` before `plans` (updates splice plans while
/// serialized under the matrices lock); no path acquires them in the
/// opposite nesting.
struct Shared {
    chason: ChasonEngine,
    serpens: SerpensEngine,
    /// Resident matrices keyed by load-time structural fingerprint.
    matrices: Mutex<LruCache<u64, ResidentMatrix>>,
    /// Plans keyed by engine family, matrix version, and `(fingerprint,
    /// scheduler config)`. The engine tag matters: both engines share one
    /// scheduler configuration here, so `PlanKey` alone would collide
    /// across families. The version keeps plans for superseded matrix
    /// generations from serving requests against the current one.
    plans: Mutex<LruCache<(Engine, u64, PlanKey), Arc<SpmvPlan>>>,
    stats: ServerStats,
    shutdown: AtomicBool,
    config: ServeConfig,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        let plan_stats = lock_unpoisoned(&self.plans).stats();
        let matrices = lock_unpoisoned(&self.matrices);
        let m = matrices.stats();
        drop(matrices);
        self.stats.snapshot(plan_stats, m.len as u64, m.evictions)
    }

    fn exposition(&self) -> String {
        let plan_stats = lock_unpoisoned(&self.plans).stats();
        let matrices = lock_unpoisoned(&self.matrices);
        let m = matrices.stats();
        drop(matrices);
        self.stats
            .render_exposition(plan_stats, m.len as u64, m.evictions)
    }

    fn matrix(&self, handle: u64) -> Option<ResidentMatrix> {
        lock_unpoisoned(&self.matrices).get(&handle).cloned()
    }

    /// The current version of a resident matrix, without touching
    /// recency or hit/miss counters (the batching predicate polls this).
    fn matrix_version(&self, handle: u64) -> Option<u64> {
        lock_unpoisoned(&self.matrices)
            .peek(&handle)
            .map(|r| r.version)
    }

    /// Returns the cached plan for (`engine`, `matrix` at `version`),
    /// scheduling and inserting it on a miss. Scheduling runs outside the
    /// cache lock, so concurrent misses on the same key may schedule
    /// twice; the loser's insert is a harmless replace.
    fn resolve_plan<E: PlanningEngine>(
        &self,
        wire: Engine,
        version: u64,
        planner: &E,
        matrix: &CooMatrix,
    ) -> Result<Arc<SpmvPlan>, SimError> {
        let key = (wire, version, planner.plan_key(matrix));
        if let Some(plan) = lock_unpoisoned(&self.plans).get(&key) {
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(planner.plan(matrix)?);
        lock_unpoisoned(&self.plans).insert(key, Arc::clone(&plan));
        Ok(plan)
    }
}

/// The serve daemon's [`ChspFrontend`]: inline replies from [`Shared`],
/// the worker queue sender. Held only by the connection layer (threaded
/// listener or async service), so dropping that layer drops the last
/// queue sender and lets the workers drain and exit.
struct ServeFrontend {
    shared: Arc<Shared>,
    job_tx: Sender<Job>,
}

impl ChspFrontend for ServeFrontend {
    fn stats_reply(&self) -> Reply {
        self.shared.stats.requests.stats.add(1);
        Reply::Stats(self.shared.snapshot())
    }

    fn metrics_reply(&self) -> Reply {
        self.shared.stats.requests.metrics.add(1);
        Reply::MetricsText {
            text: self.shared.exposition(),
        }
    }

    fn on_wire_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    fn is_draining(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    fn draining_message(&self) -> String {
        "server is draining".to_string()
    }

    fn retry_after_ms(&self) -> u32 {
        self.shared.config.retry_after_ms
    }

    fn enqueue(&self, job: Job) -> EnqueueOutcome {
        match self.job_tx.try_send(job) {
            Ok(()) => {
                self.shared
                    .stats
                    .observe_queue_depth(self.job_tx.len() as u64);
                EnqueueOutcome::Accepted
            }
            Err(TrySendError::Full(_)) => {
                self.shared.stats.shed.add(1);
                EnqueueOutcome::Shed
            }
            Err(TrySendError::Disconnected(_)) => EnqueueOutcome::Disconnected,
        }
    }

    fn idle_timeout(&self) -> Duration {
        self.shared.config.idle_timeout
    }

    fn write_timeout(&self) -> Duration {
        self.shared.config.write_timeout
    }

    fn max_frame_len(&self) -> usize {
        self.shared.config.max_frame_len
    }
}

/// A running `chason serve` instance.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    listener_thread: Option<JoinHandle<()>>,
    net: Option<NetServer>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the configured connection front
    /// end, and returns immediately.
    ///
    /// # Errors
    ///
    /// I/O failures binding the listener or starting the front end.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            chason: ChasonEngine::new(AcceleratorConfig {
                sched: config.sched,
                ..AcceleratorConfig::chason()
            }),
            serpens: SerpensEngine::new(AcceleratorConfig {
                sched: config.sched,
                ..AcceleratorConfig::serpens()
            }),
            matrices: Mutex::new(LruCache::new(config.matrix_cache_capacity)),
            plans: Mutex::new(LruCache::new(config.plan_cache_capacity)),
            stats: ServerStats::new(),
            shutdown: AtomicBool::new(false),
            config: config.clone(),
        });
        let (job_tx, job_rx) = channel::bounded::<Job>(config.queue_capacity);
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = job_rx.clone();
                thread::Builder::new()
                    .name(format!("chason-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        drop(job_rx);
        let frontend = Arc::new(ServeFrontend {
            shared: Arc::clone(&shared),
            job_tx,
        });
        let (listener_thread, net) = match config.net {
            NetMode::Async => {
                let net = start_async_frontend(listener, frontend, shared.stats.registry())?;
                (None, Some(net))
            }
            NetMode::Threads => {
                let listener_thread = thread::Builder::new()
                    .name("chason-listener".to_string())
                    .spawn(move || threaded_listener_loop(&listener, &frontend, "chason-conn"))?;
                (Some(listener_thread), None)
            }
        };
        Ok(Server {
            local_addr,
            shared,
            listener_thread,
            net,
            workers: worker_handles,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the server's counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Initiates the same graceful drain a `Shutdown` request does.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        match &self.net {
            Some(net) => net.shutdown(),
            // Nudge the threaded listener out of `accept`.
            None => {
                let _ = TcpStream::connect(self.local_addr);
            }
        }
    }

    /// Blocks until the connection front end, every connection, and every
    /// worker have exited. Call [`shutdown`](Self::shutdown) first (or
    /// send a `Shutdown` request) or this blocks forever.
    pub fn join(mut self) {
        if let Some(listener) = self.listener_thread.take() {
            let _ = listener.join();
        }
        if let Some(net) = self.net.take() {
            net.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn record_accepted_kind(shared: &Shared, request: &Request) {
    let counter = match request {
        Request::LoadMatrix { .. } => &shared.stats.requests.load,
        Request::Spmv { .. } => &shared.stats.requests.spmv,
        Request::Solve { .. } => &shared.stats.requests.solve,
        Request::Plan { .. } => &shared.stats.requests.plan,
        Request::Sleep { .. } => &shared.stats.requests.sleep,
        Request::Update { .. } => &shared.stats.requests.update,
        // Served inline, counted there.
        Request::Stats | Request::Metrics | Request::Shutdown => return,
    };
    counter.add(1);
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, rx: &Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        // Same-matrix SpMV batching: one dequeue resolves the matrix and
        // plan once, then drains queued twins (front-of-queue only, so
        // FIFO fairness holds for everything else).
        if let Request::Spmv { handle, engine, .. } = job.request {
            // The batch key is (handle, engine, version): an Update racing
            // on another worker bumps the version and closes the batch, so
            // a batch never mixes requests against different matrix
            // generations. (Front-of-queue-only draining already keeps a
            // queued Update ordered before any Spmv sent after it.)
            let version = shared.matrix_version(handle);
            let mut batch = vec![job];
            while batch.len() < shared.config.batch_max {
                let twin = rx.try_recv_if(|next| {
                    matches!(
                        next.request,
                        Request::Spmv {
                            handle: h,
                            engine: e,
                            ..
                        } if h == handle && e == engine
                    ) && shared.matrix_version(handle) == version
                });
                match twin {
                    Some(next) => batch.push(next),
                    None => break,
                }
            }
            if batch.len() > 1 {
                shared.stats.batched.add(batch.len() as u64 - 1);
            }
            for job in batch {
                run_job(shared, job);
            }
        } else {
            run_job(shared, job);
        }
    }
}

fn run_job(shared: &Arc<Shared>, job: Job) {
    record_accepted_kind(shared, &job.request);
    // Queue wait (enqueue to dequeue) and execution time feed separate
    // histograms: summing them into one "service time" conflates queue
    // pressure with execution cost and made service_p99 track load, not
    // the kernels.
    shared
        .stats
        .record_queue_wait_micros(job.received.elapsed().as_micros() as u64);
    let started = Instant::now();
    // The executors validate their inputs, but a panic in a worker must
    // not take the pool down: surface it as an Internal error instead.
    let reply =
        catch_unwind(AssertUnwindSafe(|| execute(shared, job.request))).unwrap_or_else(|_| {
            Reply::Error {
                code: ErrorCode::Internal,
                message: "request execution panicked".to_string(),
            }
        });
    shared
        .stats
        .record_service_micros(started.elapsed().as_micros() as u64);
    job.reply_tx.send(&reply); // receiver gone = client disconnected
}

fn bad_request(message: impl Into<String>) -> Reply {
    Reply::Error {
        code: ErrorCode::BadRequest,
        message: message.into(),
    }
}

fn unknown_handle(handle: u64) -> Reply {
    Reply::Error {
        code: ErrorCode::UnknownHandle,
        message: format!("no resident matrix with handle {handle:#018x}; send LoadMatrix first"),
    }
}

fn sim_error_reply(err: &SimError) -> Reply {
    Reply::Error {
        code: ErrorCode::BadRequest,
        message: err.to_string(),
    }
}

fn execute(shared: &Shared, request: Request) -> Reply {
    match request {
        Request::LoadMatrix {
            rows,
            cols,
            triplets,
        } => execute_load(shared, rows, cols, &triplets),
        Request::Spmv { handle, engine, x } => execute_spmv(shared, handle, engine, &x),
        Request::Solve {
            handle,
            engine,
            solver,
            max_iterations,
            tolerance,
            b,
        } => execute_solve(
            shared,
            handle,
            engine,
            solver,
            max_iterations,
            tolerance,
            &b,
        ),
        Request::Plan { handle, engine } => execute_plan(shared, handle, engine),
        Request::Update {
            handle,
            inserts,
            revalues,
            deletes,
        } => execute_update(shared, handle, &inserts, &revalues, &deletes),
        Request::Sleep { millis } => {
            thread::sleep(Duration::from_millis(u64::from(millis.min(10_000))));
            Reply::Done
        }
        Request::Stats | Request::Metrics | Request::Shutdown => Reply::Error {
            code: ErrorCode::Internal,
            message: "inline request reached the worker pool".to_string(),
        },
    }
}

fn execute_load(shared: &Shared, rows: u64, cols: u64, triplets: &[(u64, u64, f32)]) -> Reply {
    const MAX_DIM: u64 = 1 << 32;
    if rows == 0 || cols == 0 || rows > MAX_DIM || cols > MAX_DIM {
        return bad_request(format!("matrix dimensions {rows}x{cols} out of range"));
    }
    for &(r, c, v) in triplets {
        if !v.is_finite() || v == 0.0 {
            // §3.2 reserves the all-zero word for stalls, so an explicit
            // zero (or non-finite) value is unschedulable.
            return bad_request(format!(
                "unschedulable value {v} at ({r}, {c}): values must be finite and non-zero"
            ));
        }
    }
    let converted: Vec<(usize, usize, f32)> = triplets
        .iter()
        .map(|&(r, c, v)| (r as usize, c as usize, v))
        .collect();
    let matrix = match CooMatrix::from_triplets(rows as usize, cols as usize, converted) {
        Ok(matrix) => matrix,
        Err(err) => return bad_request(err.to_string()),
    };
    let handle = matrix_fingerprint(&matrix);
    let csr = Arc::new(CowCsr::from(&matrix));
    let mut matrices = lock_unpoisoned(&shared.matrices);
    // Re-loading a matrix whose resident copy has since been updated keeps
    // the updated (current-version) copy: the handle names a lineage. The
    // reply carries the lineage's current version so the caller can tell
    // the resident content has moved past the triplets it sent.
    let (fresh, version) = match matrices.peek(&handle) {
        Some(resident) => (false, resident.version),
        None => {
            matrices.insert(
                handle,
                ResidentMatrix {
                    matrix: Arc::new(matrix),
                    csr,
                    version: 0,
                },
            );
            (true, 0)
        }
    };
    Reply::Loaded {
        handle,
        rows,
        cols,
        nnz: triplets.len() as u64,
        fresh,
        version,
    }
}

fn execute_spmv(shared: &Shared, handle: u64, engine: Engine, x: &[f32]) -> Reply {
    let Some(resident) = shared.matrix(handle) else {
        return unknown_handle(handle);
    };
    if x.len() != resident.matrix.cols() {
        return bad_request(format!(
            "x has {} entries, matrix has {} columns",
            x.len(),
            resident.matrix.cols()
        ));
    }
    let start = Instant::now();
    let (y, simulated_nanos) = match engine {
        Engine::Cpu => (resident.csr.spmv(x), 0),
        Engine::Chason => match run_engine_spmv(shared, engine, &shared.chason, &resident, x) {
            Ok(out) => out,
            Err(err) => return sim_error_reply(&err),
        },
        Engine::Serpens => match run_engine_spmv(shared, engine, &shared.serpens, &resident, x) {
            Ok(out) => out,
            Err(err) => return sim_error_reply(&err),
        },
    };
    Reply::Vector {
        y,
        service_micros: start.elapsed().as_micros() as u64,
        simulated_nanos,
    }
}

fn run_engine_spmv<E: PlanningEngine>(
    shared: &Shared,
    wire: Engine,
    planner: &E,
    resident: &ResidentMatrix,
    x: &[f32],
) -> Result<(Vec<f32>, u64), SimError> {
    let plan = shared.resolve_plan(wire, resident.version, planner, &resident.matrix)?;
    let exec = planner.run_planned(&plan, x)?;
    let nanos = (exec.latency_seconds() * 1e9) as u64;
    Ok((exec.y, nanos))
}

/// A solver backend that routes every product through the server's shared
/// plan cache, so a solve warms the same cache later `Spmv` requests hit.
struct SharedPlanBackend<'a, E: PlanningEngine> {
    shared: &'a Shared,
    wire: Engine,
    version: u64,
    planner: &'a E,
    elapsed: f64,
}

impl<E: PlanningEngine> SpmvBackend for SharedPlanBackend<'_, E> {
    fn spmv(&mut self, matrix: &CooMatrix, x: &[f32]) -> Result<Vec<f32>, SimError> {
        let plan = self
            .shared
            .resolve_plan(self.wire, self.version, self.planner, matrix)?;
        let exec = self.planner.run_planned(&plan, x)?;
        self.elapsed += exec.latency_seconds();
        Ok(exec.y)
    }

    fn elapsed_seconds(&self) -> f64 {
        self.elapsed
    }

    fn name(&self) -> &'static str {
        self.wire.name()
    }
}

fn execute_solve(
    shared: &Shared,
    handle: u64,
    engine: Engine,
    solver: SolverKind,
    max_iterations: u32,
    tolerance: f64,
    b: &[f32],
) -> Reply {
    let Some(resident) = shared.matrix(handle) else {
        return unknown_handle(handle);
    };
    let matrix = Arc::clone(&resident.matrix);
    // The solvers assert on these; validate ahead so a bad request cannot
    // panic a worker.
    if matrix.rows() != matrix.cols() {
        return bad_request(format!(
            "solver requires a square system, matrix is {}x{}",
            matrix.rows(),
            matrix.cols()
        ));
    }
    if b.len() != matrix.rows() {
        return bad_request(format!(
            "b has {} entries, system has {} rows",
            b.len(),
            matrix.rows()
        ));
    }
    if !tolerance.is_finite() || tolerance < 0.0 {
        return bad_request(format!(
            "tolerance {tolerance} must be finite and non-negative"
        ));
    }
    if solver == SolverKind::Jacobi {
        let mut diag = vec![false; matrix.rows()];
        for &(r, c, v) in matrix.iter() {
            if r == c && v != 0.0 {
                diag[r] = true;
            }
        }
        if let Some(row) = diag.iter().position(|&set| !set) {
            return bad_request(format!(
                "Jacobi requires a non-zero diagonal; row {row} has none"
            ));
        }
    }
    let options = CgOptions {
        max_iterations: max_iterations as usize,
        tolerance,
    };
    let start = Instant::now();
    let run = |backend: &mut dyn SpmvBackend| match solver {
        SolverKind::Cg => conjugate_gradient(backend, &matrix, b, options),
        SolverKind::Jacobi => jacobi(backend, &matrix, b, options),
    };
    let (result, simulated_nanos) = match engine {
        Engine::Cpu => {
            let mut backend = chason::solvers::CpuBackend::default();
            (run(&mut backend), 0)
        }
        Engine::Chason => {
            let mut backend = SharedPlanBackend {
                shared,
                wire: engine,
                version: resident.version,
                planner: &shared.chason,
                elapsed: 0.0,
            };
            let result = run(&mut backend);
            (result, (backend.elapsed * 1e9) as u64)
        }
        Engine::Serpens => {
            let mut backend = SharedPlanBackend {
                shared,
                wire: engine,
                version: resident.version,
                planner: &shared.serpens,
                elapsed: 0.0,
            };
            let result = run(&mut backend);
            (result, (backend.elapsed * 1e9) as u64)
        }
    };
    match result {
        Ok(result) => Reply::Solved {
            solution: result.solution,
            iterations: result.iterations as u64,
            residual: result.residual,
            converged: result.converged,
            service_micros: start.elapsed().as_micros() as u64,
            simulated_nanos,
        },
        Err(err) => sim_error_reply(&err),
    }
}

fn execute_plan(shared: &Shared, handle: u64, engine: Engine) -> Reply {
    let Some(resident) = shared.matrix(handle) else {
        return unknown_handle(handle);
    };
    let plan = match engine {
        Engine::Cpu => return bad_request("the cpu backend has no schedule plan"),
        Engine::Chason => {
            shared.resolve_plan(engine, resident.version, &shared.chason, &resident.matrix)
        }
        Engine::Serpens => {
            shared.resolve_plan(engine, resident.version, &shared.serpens, &resident.matrix)
        }
    };
    match plan {
        Ok(plan) => {
            let mut bytes = Vec::new();
            match chason_core::export::write_plan(&mut bytes, &plan) {
                Ok(()) => Reply::PlanArtifact { bytes },
                Err(err) => Reply::Error {
                    code: ErrorCode::Internal,
                    message: format!("plan serialization failed: {err}"),
                },
            }
        }
        Err(err) => sim_error_reply(&err),
    }
}

/// Takes the cached plan for the outgoing matrix generation (if any),
/// resplices its dirty windows in place, and re-inserts it under the new
/// generation's key. Returns `(windows_replanned, windows_total)`, or
/// `None` when there was no cached plan or the splice failed — either way
/// the stale plan is gone and the next request schedules from scratch.
fn splice_plan<E: PlanningEngine>(
    shared: &Shared,
    wire: Engine,
    planner: &E,
    outgoing: &ResidentMatrix,
    updated: &CooMatrix,
    delta: &MatrixDelta,
) -> Option<(u64, u64)> {
    let old_key = (wire, outgoing.version, planner.plan_key(&outgoing.matrix));
    let plan = lock_unpoisoned(&shared.plans).remove(&old_key)?;
    let mut spliced = (*plan).clone();
    match planner.replan_delta(&mut spliced, updated, delta) {
        Ok(report) => {
            let windows_total = spliced.window_count() as u64;
            let new_key = (wire, outgoing.version + 1, planner.plan_key(updated));
            lock_unpoisoned(&shared.plans).insert(new_key, Arc::new(spliced));
            Some((report.windows_replanned as u64, windows_total))
        }
        Err(_) => None,
    }
}

fn execute_update(
    shared: &Shared,
    handle: u64,
    inserts: &[(u64, u64, f32)],
    revalues: &[(u64, u64, f32)],
    deletes: &[(u64, u64)],
) -> Reply {
    for &(r, c, v) in inserts.iter().chain(revalues.iter()) {
        if !v.is_finite() || v == 0.0 {
            // Same rule as LoadMatrix: §3.2 reserves the all-zero word for
            // stalls. Deleting is the way to write a zero.
            return bad_request(format!(
                "unschedulable value {v} at ({r}, {c}): values must be finite and non-zero"
            ));
        }
    }
    // Updates to a handle serialize under the matrices lock so version
    // N+1 is always derived from version N (lock ordering: matrices
    // before plans).
    let mut matrices = lock_unpoisoned(&shared.matrices);
    let Some(resident) = matrices.get(&handle).cloned() else {
        return unknown_handle(handle);
    };
    let mut delta = MatrixDelta::for_matrix(&resident.matrix);
    let push = |result: Result<(), chason_sparse::SparseError>| result.map_err(|e| e.to_string());
    for &(r, c, v) in inserts {
        if let Err(e) = push(delta.push_insert(r as usize, c as usize, v)) {
            return bad_request(e);
        }
    }
    for &(r, c, v) in revalues {
        if let Err(e) = push(delta.push_revalue(r as usize, c as usize, v)) {
            return bad_request(e);
        }
    }
    for &(r, c) in deletes {
        if let Err(e) = push(delta.push_delete(r as usize, c as usize)) {
            return bad_request(e);
        }
    }
    let updated = match delta.apply(&resident.matrix) {
        Ok(updated) => updated,
        Err(err) => return bad_request(err.to_string()),
    };
    let csr = match resident.csr.apply_delta(&delta) {
        Ok(csr) => csr,
        Err(err) => {
            return Reply::Error {
                code: ErrorCode::Internal,
                message: format!("csr delta diverged from coo delta: {err}"),
            }
        }
    };
    let mut plans_spliced: u32 = 0;
    let mut windows_replanned: u64 = 0;
    let mut windows_total: u64 = 0;
    let chason = splice_plan(
        shared,
        Engine::Chason,
        &shared.chason,
        &resident,
        &updated,
        &delta,
    );
    let serpens = splice_plan(
        shared,
        Engine::Serpens,
        &shared.serpens,
        &resident,
        &updated,
        &delta,
    );
    for (replanned, total) in [chason, serpens].into_iter().flatten() {
        plans_spliced += 1;
        windows_replanned += replanned;
        windows_total = windows_total.max(total);
    }
    shared.stats.plans_spliced.add(u64::from(plans_spliced));
    shared.stats.replan_windows.add(windows_replanned);
    let version = resident.version + 1;
    let nnz = updated.nnz() as u64;
    matrices.insert(
        handle,
        ResidentMatrix {
            matrix: Arc::new(updated),
            csr: Arc::new(csr),
            version,
        },
    );
    Reply::Updated {
        version,
        nnz,
        plans_spliced,
        windows_replanned,
        windows_total,
    }
}
