//! Deterministic load generator for a CHSP server.
//!
//! `chason loadgen` drives a mixed workload — roughly 60% SpMV across all
//! three backends, 20% iterative solves, 10% plan fetches, 10% stats
//! polls — from N concurrent connections. By default each connection is a
//! closed loop (next request only after the previous reply); `--pipeline
//! DEPTH` keeps up to DEPTH requests in flight per connection, and
//! `--open-loop RPS` switches to scheduled arrivals that do not wait for
//! replies at all, so a single loadgen process can drive 1k+ connections
//! against the async listener. The request schedule is a pure function of
//! `(seed, connection index)`, so a run is reproducible end-to-end; the
//! only nondeterminism is timing. `Busy` replies are retried and counted,
//! never treated as errors: shedding is the server behaving as specified.

use crate::client::{Client, ClientError};
use crate::proto::{
    decode_reply, encode_request, read_frame_blocking, write_frame, Engine, FrameEvent,
    FrameReader, ProtoError, Reply, Request, SolverKind, StatsSnapshot, DEFAULT_MAX_FRAME,
};
use crate::server::{ServeConfig, Server};
use chason_sparse::CooMatrix;
use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Knobs of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Concurrent connections.
    pub connections: usize,
    /// Total requests across all connections (setup `LoadMatrix` uploads
    /// are extra).
    pub requests: usize,
    /// Workload seed; same seed, same request schedule.
    pub seed: u64,
    /// Server to drive; `None` starts an in-process server on an
    /// ephemeral port and shuts it down afterwards.
    pub addr: Option<String>,
    /// Fail the run unless the server reports at least one plan-cache
    /// hit.
    pub require_hits: bool,
    /// Percentage (0–100) of requests that are `Update` deltas churning
    /// the shared matrices. Churn revalues diagonal entries upward, so
    /// any interleaving across connections stays valid and every system
    /// stays SPD.
    pub churn: u64,
    /// The target is a `chason route` frontend: `Plan` requests (which a
    /// router refuses — plans live on the shards) become extra `Stats`
    /// polls, and the report gains a router section parsed from the
    /// `router_*` metrics (per-shard request balance, gather-latency
    /// percentiles, scatter failures). Requires `addr`.
    pub router: bool,
    /// Requests kept in flight per connection. `1` (the default) is the
    /// classic closed loop; larger depths pipeline requests — each
    /// connection writes up to `pipeline` frames before reading, matching
    /// replies FIFO (CHSP replies are strictly ordered per connection).
    pub pipeline: usize,
    /// Open-loop arrival mode: requests are sent on a fixed schedule of
    /// this many requests per second (aggregate, split evenly across
    /// connections) instead of waiting for replies. Latency is measured
    /// from the *scheduled* arrival, so queueing delay from a slow server
    /// is not hidden (no coordinated omission). The in-flight window is
    /// still capped at `pipeline.max(1)` per connection so unread replies
    /// stay bounded; a send that misses its slot goes out late and the
    /// lateness shows up in the percentiles.
    pub open_loop_rps: Option<u64>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            connections: 4,
            requests: 1000,
            seed: 7,
            addr: None,
            require_hits: false,
            churn: 0,
            router: false,
            pipeline: 1,
            open_loop_rps: None,
        }
    }
}

/// Outcome of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests that completed with the expected reply type.
    pub completed: u64,
    /// Requests that failed at the protocol level (decode failures,
    /// unexpected reply types, typed server errors, dropped
    /// connections).
    pub protocol_errors: u64,
    /// `Busy` replies absorbed by retrying.
    pub busy_retries: u64,
    /// Completed requests by type: `[spmv, solve, plan, stats, update]`.
    pub by_type: [u64; 5],
    /// Wall-clock of the whole run in seconds.
    pub elapsed_seconds: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Client-observed request latency percentiles `(p50, p90, p99,
    /// max)`, in microseconds.
    pub latency_micros: (u64, u64, u64, u64),
    /// The server's own counters, fetched after the run.
    pub server_stats: StatsSnapshot,
    /// Router fan-out summary, parsed from the `router_*` metrics after a
    /// `--router` run; `None` against a plain server.
    pub router: Option<RouterLoadReport>,
}

/// Fan-out summary of a load-generation run against a `chason route`
/// frontend, parsed from its Prometheus-style metrics exposition.
#[derive(Debug, Clone)]
pub struct RouterLoadReport {
    /// Requests each shard received (retries included), by shard index.
    pub shard_requests: Vec<u64>,
    /// Shards the router currently reports up.
    pub shards_up: u64,
    /// Shards configured.
    pub shards_total: u64,
    /// `max/mean` of `shard_requests` — 1.0 is a perfectly balanced
    /// fan-out.
    pub request_balance: f64,
    /// Scatter-to-gather latency percentiles `(p50, p90, p99, max)` in
    /// microseconds. Percentiles are power-of-two bucket upper bounds
    /// (clamped to the exact max); the max is exact.
    pub gather_micros: (u64, u64, u64, u64),
    /// `max/mean` nnz balance of the most recently sharded matrix, in
    /// percent (100 = perfectly balanced).
    pub nnz_balance_pct: u64,
    /// Fan-outs that failed on at least one shard.
    pub scatter_failures: u64,
    /// `Busy` replies retried against shards.
    pub shard_retries: u64,
    /// Reconnect-and-resend recoveries on stale pooled connections.
    pub shard_reconnects: u64,
}

impl RouterLoadReport {
    fn render(&self) -> String {
        let (p50, p90, p99, max) = self.gather_micros;
        let mut out = String::from("--- router ---\n");
        out.push_str(&format!(
            "shards up            : {}/{}\n",
            self.shards_up, self.shards_total
        ));
        out.push_str(&format!(
            "shard requests       : {:?} (balance {:.2} max/mean)\n",
            self.shard_requests, self.request_balance
        ));
        out.push_str(&format!(
            "gather latency       : p50 {p50} us, p90 {p90} us, p99 {p99} us, max {max} us\n"
        ));
        out.push_str(&format!(
            "nnz balance          : {}% max/mean\n",
            self.nnz_balance_pct
        ));
        out.push_str(&format!(
            "scatter failures     : {} (busy retries {}, reconnects {})\n",
            self.scatter_failures, self.shard_retries, self.shard_reconnects
        ));
        out
    }

    fn render_json(&self) -> String {
        let (p50, p90, p99, max) = self.gather_micros;
        let requests = self
            .shard_requests
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"shards_up\":{},\"shards_total\":{},\"shard_requests\":[{}],",
                "\"request_balance\":{:.4},\"gather_micros\":{{\"p50\":{},\"p90\":{},",
                "\"p99\":{},\"max\":{}}},\"nnz_balance_pct\":{},\"scatter_failures\":{},",
                "\"shard_retries\":{},\"shard_reconnects\":{}}}"
            ),
            self.shards_up,
            self.shards_total,
            requests,
            self.request_balance,
            p50,
            p90,
            p99,
            max,
            self.nnz_balance_pct,
            self.scatter_failures,
            self.shard_retries,
            self.shard_reconnects,
        )
    }
}

/// The value of one exactly-named metric in a Prometheus-style
/// exposition (labels, if any, are part of `name`).
fn metric_value(text: &str, name: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

/// Nearest-rank percentiles of a rendered power-of-two-bucket histogram:
/// each percentile is the upper bound of the bucket containing its rank
/// (clamped to the exact recorded max), so reported tails are never
/// understated.
fn histogram_quantiles(text: &str, name: &str) -> (u64, u64, u64, u64) {
    let prefix = format!("{name}_bucket{{le=\"");
    let mut buckets: Vec<(u64, u64)> = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(&prefix) else {
            continue;
        };
        let Some((bound, cumulative)) = rest.split_once("\"} ") else {
            continue;
        };
        if let (Ok(bound), Ok(cumulative)) = (bound.parse(), cumulative.trim().parse()) {
            buckets.push((bound, cumulative));
        }
    }
    let count = metric_value(text, &format!("{name}_count")).unwrap_or(0);
    let max = metric_value(text, &format!("{name}_max")).unwrap_or(0);
    let quantile = |p: u64| -> u64 {
        if count == 0 {
            return 0;
        }
        let rank = (count * p).div_ceil(100).max(1);
        buckets
            .iter()
            .find(|&&(_, cumulative)| cumulative >= rank)
            .map_or(max, |&(bound, _)| bound.min(max))
    };
    (quantile(50), quantile(90), quantile(99), max)
}

/// Parses the `router_*` family out of a metrics exposition. Returns
/// `None` when the text carries no `router_shards` gauge (i.e. the target
/// was a plain server).
pub fn parse_router_metrics(text: &str) -> Option<RouterLoadReport> {
    let shards_total = metric_value(text, "router_shards")?;
    let mut shard_requests = Vec::with_capacity(shards_total as usize);
    let mut shards_up = 0u64;
    for k in 0..shards_total {
        shard_requests.push(
            metric_value(
                text,
                &format!("router_shard_requests_total{{shard=\"{k}\"}}"),
            )
            .unwrap_or(0),
        );
        shards_up += metric_value(text, &format!("router_shard_up{{shard=\"{k}\"}}")).unwrap_or(0);
    }
    let max = shard_requests.iter().copied().max().unwrap_or(0);
    let mean = shard_requests.iter().sum::<u64>() as f64 / shard_requests.len().max(1) as f64;
    let request_balance = if mean > 0.0 { max as f64 / mean } else { 1.0 };
    Some(RouterLoadReport {
        shard_requests,
        shards_up,
        shards_total,
        request_balance,
        gather_micros: histogram_quantiles(text, "router_gather_micros"),
        nnz_balance_pct: metric_value(text, "router_nnz_balance_pct").unwrap_or(0),
        scatter_failures: metric_value(text, "router_scatter_failures_total").unwrap_or(0),
        shard_retries: metric_value(text, "router_shard_retries_total").unwrap_or(0),
        shard_reconnects: metric_value(text, "router_shard_reconnects_total").unwrap_or(0),
    })
}

impl LoadgenReport {
    /// Renders the human-readable report `chason loadgen` prints (and the
    /// CI job uploads).
    pub fn render(&self) -> String {
        let (p50, p90, p99, max) = self.latency_micros;
        let mut out = String::new();
        out.push_str(&format!(
            "completed            : {} ({} spmv, {} solve, {} plan, {} stats, {} update)\n",
            self.completed,
            self.by_type[0],
            self.by_type[1],
            self.by_type[2],
            self.by_type[3],
            self.by_type[4]
        ));
        out.push_str(&format!(
            "protocol errors      : {}\n",
            self.protocol_errors
        ));
        out.push_str(&format!("busy retries         : {}\n", self.busy_retries));
        out.push_str(&format!(
            "throughput           : {:.1} req/s over {:.2} s\n",
            self.throughput_rps, self.elapsed_seconds
        ));
        out.push_str(&format!(
            "latency (client)     : p50 {p50} us, p90 {p90} us, p99 {p99} us, max {max} us\n"
        ));
        out.push_str("--- server stats ---\n");
        out.push_str(&self.server_stats.render_table());
        if let Some(router) = &self.router {
            out.push_str(&router.render());
        }
        out
    }

    /// Renders the report as one JSON object (`chason loadgen --format
    /// json`), so CI and scripts can assert on fields instead of grepping
    /// the human text.
    pub fn render_json(&self) -> String {
        let (p50, p90, p99, max) = self.latency_micros;
        let s = &self.server_stats;
        let mut out = String::from("{");
        let mut first = true;
        let mut field = |key: &str, value: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{key}\":{value}"));
        };
        field("completed", self.completed.to_string());
        field("protocol_errors", self.protocol_errors.to_string());
        field("busy_retries", self.busy_retries.to_string());
        field(
            "by_type",
            format!(
                "{{\"spmv\":{},\"solve\":{},\"plan\":{},\"stats\":{},\"update\":{}}}",
                self.by_type[0], self.by_type[1], self.by_type[2], self.by_type[3], self.by_type[4]
            ),
        );
        field("elapsed_seconds", format!("{:.6}", self.elapsed_seconds));
        field("throughput_rps", format!("{:.3}", self.throughput_rps));
        field(
            "latency_micros",
            format!("{{\"p50\":{p50},\"p90\":{p90},\"p99\":{p99},\"max\":{max}}}"),
        );
        field(
            "server_stats",
            format!(
                concat!(
                    "{{\"uptime_millis\":{},\"requests_load\":{},\"requests_spmv\":{},",
                    "\"requests_solve\":{},\"requests_plan\":{},\"requests_stats\":{},",
                    "\"requests_sleep\":{},\"shed\":{},\"batched\":{},\"queue_depth_hwm\":{},",
                    "\"plan_cache_hits\":{},\"plan_cache_misses\":{},\"plan_cache_evictions\":{},",
                    "\"plan_cache_len\":{},\"plan_cache_capacity\":{},\"matrices_resident\":{},",
                    "\"matrix_evictions\":{},\"service_p50_micros\":{},\"service_p99_micros\":{},",
                    "\"service_max_micros\":{},\"service_samples\":{},\"queue_p50_micros\":{},",
                    "\"queue_p99_micros\":{},\"queue_max_micros\":{},\"requests_update\":{},",
                    "\"plans_spliced\":{},\"replan_windows\":{}}}"
                ),
                s.uptime_millis,
                s.requests_load,
                s.requests_spmv,
                s.requests_solve,
                s.requests_plan,
                s.requests_stats,
                s.requests_sleep,
                s.shed,
                s.batched,
                s.queue_depth_hwm,
                s.plan_cache_hits,
                s.plan_cache_misses,
                s.plan_cache_evictions,
                s.plan_cache_len,
                s.plan_cache_capacity,
                s.matrices_resident,
                s.matrix_evictions,
                s.service_p50_micros,
                s.service_p99_micros,
                s.service_max_micros,
                s.service_samples,
                s.queue_p50_micros,
                s.queue_p99_micros,
                s.queue_max_micros,
                s.requests_update,
                s.plans_spliced,
                s.replan_windows
            ),
        );
        if let Some(router) = &self.router {
            field("router", router.render_json());
        }
        out.push('}');
        out
    }
}

struct ConnOutcome {
    completed: u64,
    protocol_errors: u64,
    busy_retries: u64,
    by_type: [u64; 5],
    latencies: Vec<u64>,
}

/// SplitMix64: tiny, seedable, and good enough to shuffle a workload.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A symmetric, strictly diagonally dominant system (hence SPD), so both
/// CG and Jacobi converge on it. Deterministic in `(n, seed)`.
fn workload_matrix(n: usize, seed: u64) -> CooMatrix {
    let mut rng = seed;
    let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
    let mut row_sum = vec![0.0f32; n];
    for i in 0..n {
        for _ in 0..3 {
            let j = (splitmix64(&mut rng) as usize) % n;
            if i == j {
                continue;
            }
            let v = 0.05 + (splitmix64(&mut rng) % 400) as f32 / 1000.0;
            triplets.push((i, j, v));
            triplets.push((j, i, v));
            row_sum[i] += v;
            row_sum[j] += v;
        }
    }
    for (i, &sum) in row_sum.iter().enumerate() {
        triplets.push((i, i, sum + 1.0));
    }
    #[allow(clippy::expect_used)] // coordinates are in-bounds by construction
    CooMatrix::from_triplets_summing(n, n, triplets).expect("workload matrix is well-formed")
}

/// The shared matrices every connection uploads and then works against.
fn workload_matrices(seed: u64) -> Vec<CooMatrix> {
    vec![
        workload_matrix(48, seed ^ 0x11),
        workload_matrix(72, seed ^ 0x22),
        workload_matrix(96, seed ^ 0x33),
    ]
}

const ENGINES: [Engine; 3] = [Engine::Cpu, Engine::Chason, Engine::Serpens];

/// The as-loaded diagonal values of a workload matrix, the floor churn
/// revalues stay above so strict diagonal dominance (hence SPD) is
/// preserved under any interleaving.
fn diagonal_of(matrix: &CooMatrix) -> Vec<f32> {
    let mut diag = vec![1.0f32; matrix.rows()];
    for &(r, c, v) in matrix.iter() {
        if r == c {
            diag[r] = v;
        }
    }
    diag
}

fn run_connection(
    addr: &str,
    matrices: &[CooMatrix],
    requests: usize,
    churn: u64,
    router: bool,
    mut rng: u64,
) -> Result<ConnOutcome, ClientError> {
    let mut client = Client::connect(addr)?;
    let mut handles = Vec::with_capacity(matrices.len());
    for matrix in matrices {
        let (handle, _fresh) = client.load_matrix(matrix)?;
        handles.push(handle);
    }
    let diagonals: Vec<Vec<f32>> = matrices.iter().map(diagonal_of).collect();
    let churn = churn.min(100);
    let mut outcome = ConnOutcome {
        completed: 0,
        protocol_errors: 0,
        busy_retries: 0,
        by_type: [0; 5],
        latencies: Vec::with_capacity(requests),
    };
    for _ in 0..requests {
        let which = (splitmix64(&mut rng) as usize) % matrices.len();
        let (matrix, handle) = (&matrices[which], handles[which]);
        let n = matrix.rows();
        // First `churn`% of the roll space is matrix churn; the remainder
        // maps onto the classic 60/20/10/10 mix.
        let roll = splitmix64(&mut rng) % 100;
        let kind = if roll < churn {
            10 // churn
        } else {
            (roll - churn) * 10 / (100 - churn).max(1)
        };
        // Retry loop: Busy is shedding, not failure.
        loop {
            let start = Instant::now();
            let result: Result<usize, ClientError> = match kind {
                10 => {
                    // Revalue a handful of diagonal entries upward. The
                    // diagonal always exists whatever other connections
                    // have churned, and only ever grows past its as-loaded
                    // value, so concurrent deltas can never conflict or
                    // break convergence.
                    let count = 1 + (splitmix64(&mut rng) as usize) % 3;
                    let mut revalues: Vec<(u64, u64, f32)> = Vec::with_capacity(count);
                    for _ in 0..count {
                        let i = (splitmix64(&mut rng) as usize) % n;
                        if revalues.iter().any(|&(r, _, _)| r == i as u64) {
                            continue; // a delta batch may touch a coordinate once
                        }
                        let bump = 0.5 + (splitmix64(&mut rng) % 1000) as f32 / 1000.0;
                        revalues.push((i as u64, i as u64, diagonals[which][i] + bump));
                    }
                    client
                        .update(handle, Vec::new(), revalues, Vec::new())
                        .and_then(|outcome| {
                            if outcome.version > 0 {
                                Ok(4)
                            } else {
                                Err(ClientError::Unexpected(
                                    "update did not advance the version".to_string(),
                                ))
                            }
                        })
                }
                0..=5 => {
                    let phase = (splitmix64(&mut rng) % 1000) as f32 / 1000.0;
                    let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37 + phase).sin()).collect();
                    let engine = ENGINES[(splitmix64(&mut rng) as usize) % ENGINES.len()];
                    client.spmv(handle, engine, x).and_then(|(y, _, _)| {
                        if y.len() == n {
                            Ok(0)
                        } else {
                            Err(ClientError::Unexpected(format!(
                                "spmv returned {} values for {n} rows",
                                y.len()
                            )))
                        }
                    })
                }
                6 | 7 => {
                    let b: Vec<f32> = (0..n).map(|i| 1.0 + (i % 5) as f32 * 0.25).collect();
                    let engine = ENGINES[1 + (splitmix64(&mut rng) as usize) % 2];
                    let solver = if splitmix64(&mut rng).is_multiple_of(2) {
                        SolverKind::Jacobi
                    } else {
                        SolverKind::Cg
                    };
                    client.solve(handle, engine, solver, 8, 1e-4, b).map(|_| 1)
                }
                // A router refuses Plan (artifacts are per-shard), so the
                // plan slot becomes an extra stats poll there.
                8 if router => client.stats().map(|_| 3),
                8 => {
                    let engine = ENGINES[1 + (splitmix64(&mut rng) as usize) % 2];
                    client.plan(handle, engine).and_then(|bytes| {
                        if bytes.starts_with(b"CHPL") {
                            Ok(2)
                        } else {
                            Err(ClientError::Unexpected(
                                "plan artifact missing CHPL magic".to_string(),
                            ))
                        }
                    })
                }
                _ => client.stats().map(|_| 3),
            };
            match result {
                Ok(slot) => {
                    outcome.latencies.push(start.elapsed().as_micros() as u64);
                    outcome.completed += 1;
                    outcome.by_type[slot] += 1;
                    break;
                }
                Err(ClientError::Busy { retry_after_ms }) => {
                    outcome.busy_retries += 1;
                    thread::sleep(Duration::from_millis(u64::from(retry_after_ms.max(1))));
                }
                Err(ClientError::Io(e)) => return Err(ClientError::Io(e)), // connection gone
                Err(_) => {
                    outcome.protocol_errors += 1;
                    break;
                }
            }
        }
    }
    Ok(outcome)
}

/// A countdown gate lining every pipelined connection up after setup, so
/// the server demonstrably holds all of them open at once before the
/// first request flies. Unlike [`std::sync::Barrier`], a participant that
/// never starts (spawn failure, failed setup) can be forfeited without
/// deadlocking the rest.
struct StartGate {
    remaining: Mutex<usize>,
    all_ready: Condvar,
}

impl StartGate {
    fn new(participants: usize) -> StartGate {
        StartGate {
            remaining: Mutex::new(participants),
            all_ready: Condvar::new(),
        }
    }

    /// Marks this participant ready and blocks until every other one has
    /// arrived (or been forfeited).
    fn arrive(&self) {
        #[allow(clippy::expect_used)] // gate mutex is never poisoned: no panics under the lock
        let mut remaining = self.remaining.lock().expect("gate lock");
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.all_ready.notify_all();
            return;
        }
        while *remaining > 0 {
            #[allow(clippy::expect_used)] // gate mutex is never poisoned: no panics under the lock
            {
                remaining = self.all_ready.wait(remaining).expect("gate wait");
            }
        }
    }

    /// Removes a participant that will never arrive, without blocking.
    fn forfeit(&self) {
        #[allow(clippy::expect_used)] // gate mutex is never poisoned: no panics under the lock
        let mut remaining = self.remaining.lock().expect("gate lock");
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.all_ready.notify_all();
        }
    }
}

/// One pre-planned pipelined request: the encoded frame plus what reply
/// shape counts as success.
struct Scheduled {
    payload: Vec<u8>,
    /// `by_type` slot the request belongs to: `[spmv, solve, plan,
    /// stats, update]`.
    slot: usize,
    /// Expected result-vector length for SpMV (0: no length check).
    n: usize,
}

/// Draws one request from the same mixed workload as the closed loop,
/// already encoded so the pipelining loop only moves bytes.
fn draw_request(
    matrices: &[CooMatrix],
    handles: &[u64],
    diagonals: &[Vec<f32>],
    churn: u64,
    router: bool,
    rng: &mut u64,
) -> Scheduled {
    let which = (splitmix64(rng) as usize) % matrices.len();
    let (matrix, handle) = (&matrices[which], handles[which]);
    let n = matrix.rows();
    let roll = splitmix64(rng) % 100;
    let kind = if roll < churn {
        10
    } else {
        (roll - churn) * 10 / (100 - churn).max(1)
    };
    let (request, slot, expect_n) = match kind {
        10 => {
            // Diagonal revalues only ever grow past the as-loaded value,
            // so any interleaving across connections stays SPD (same
            // invariant as the closed loop).
            let count = 1 + (splitmix64(rng) as usize) % 3;
            let mut revalues: Vec<(u64, u64, f32)> = Vec::with_capacity(count);
            for _ in 0..count {
                let i = (splitmix64(rng) as usize) % n;
                if revalues.iter().any(|&(r, _, _)| r == i as u64) {
                    continue;
                }
                let bump = 0.5 + (splitmix64(rng) % 1000) as f32 / 1000.0;
                revalues.push((i as u64, i as u64, diagonals[which][i] + bump));
            }
            (
                Request::Update {
                    handle,
                    inserts: Vec::new(),
                    revalues,
                    deletes: Vec::new(),
                },
                4,
                0,
            )
        }
        0..=5 => {
            let phase = (splitmix64(rng) % 1000) as f32 / 1000.0;
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37 + phase).sin()).collect();
            let engine = ENGINES[(splitmix64(rng) as usize) % ENGINES.len()];
            (Request::Spmv { handle, engine, x }, 0, n)
        }
        6 | 7 => {
            let b: Vec<f32> = (0..n).map(|i| 1.0 + (i % 5) as f32 * 0.25).collect();
            let engine = ENGINES[1 + (splitmix64(rng) as usize) % 2];
            let solver = if splitmix64(rng).is_multiple_of(2) {
                SolverKind::Jacobi
            } else {
                SolverKind::Cg
            };
            (
                Request::Solve {
                    handle,
                    engine,
                    solver,
                    max_iterations: 8,
                    tolerance: 1e-4,
                    b,
                },
                1,
                0,
            )
        }
        8 if !router => {
            let engine = ENGINES[1 + (splitmix64(rng) as usize) % 2];
            (Request::Plan { handle, engine }, 2, 0)
        }
        _ => (Request::Stats, 3, 0),
    };
    Scheduled {
        payload: encode_request(&request),
        slot,
        n: expect_n,
    }
}

/// Checks a pipelined reply against what its request expected. `Ok(true)`
/// is success, `Ok(false)` is `Busy` (retry the request), `Err` is a
/// protocol error.
fn check_reply(reply: &Reply, expected: &Scheduled) -> Result<bool, String> {
    match (expected.slot, reply) {
        (_, Reply::Busy { .. }) => Ok(false),
        (0, Reply::Vector { y, .. }) if y.len() == expected.n => Ok(true),
        (0, Reply::Vector { y, .. }) => Err(format!(
            "spmv returned {} values for {} rows",
            y.len(),
            expected.n
        )),
        (1, Reply::Solved { .. }) => Ok(true),
        (2, Reply::PlanArtifact { bytes }) if bytes.starts_with(b"CHPL") => Ok(true),
        (2, Reply::PlanArtifact { .. }) => Err("plan artifact missing CHPL magic".to_string()),
        (3, Reply::Stats(_)) => Ok(true),
        (4, Reply::Updated { version, .. }) if *version > 0 => Ok(true),
        (4, Reply::Updated { .. }) => Err("update did not advance the version".to_string()),
        (_, Reply::Error { code, message }) => Err(format!("server error ({code:?}): {message}")),
        (slot, other) => Err(format!("slot {slot} got unexpected reply {other:?}")),
    }
}

/// One blocking request/reply exchange on a raw stream, retrying `Busy`
/// per the server's hint. Used for per-connection setup (matrix uploads)
/// before the pipelined loop takes over the socket.
fn setup_request(stream: &mut TcpStream, request: &Request) -> Result<Reply, ClientError> {
    loop {
        write_frame(stream, &encode_request(request))?;
        let payload = read_frame_blocking(stream, DEFAULT_MAX_FRAME)?;
        match decode_reply(&payload)? {
            Reply::Busy { retry_after_ms } => {
                thread::sleep(Duration::from_millis(u64::from(retry_after_ms.max(1))));
            }
            reply => return Ok(reply),
        }
    }
}

/// Drives one connection with up to `depth` requests in flight
/// (closed-loop pipelining), or on a fixed arrival schedule when
/// `interval` is set (open loop). Replies are matched FIFO: CHSP carries
/// no sequence numbers because replies are strictly ordered per
/// connection. `start_gate` lines every connection up after setup so the
/// server really holds all of them open at once.
#[allow(clippy::too_many_arguments)] // internal fan-out helper, mirrors run_connection
fn run_connection_pipelined(
    addr: &str,
    matrices: &[CooMatrix],
    requests: usize,
    churn: u64,
    router: bool,
    mut rng: u64,
    depth: usize,
    interval: Option<Duration>,
    start_gate: &StartGate,
) -> Result<ConnOutcome, ClientError> {
    let result = (|| {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut handles = Vec::with_capacity(matrices.len());
        for matrix in matrices {
            let request = Request::LoadMatrix {
                rows: matrix.rows() as u64,
                cols: matrix.cols() as u64,
                triplets: matrix
                    .iter()
                    .map(|&(r, c, v)| (r as u64, c as u64, v))
                    .collect(),
            };
            match setup_request(&mut stream, &request)? {
                Reply::Loaded { handle, .. } => handles.push(handle),
                other => return Err(ClientError::Unexpected(format!("LoadMatrix got {other:?}"))),
            }
        }
        Ok((stream, handles))
    })();
    // Every connection reaches the gate even on a failed setup, so the
    // others are not stuck waiting on a gate that will never fill.
    start_gate.arrive();
    let (mut stream, handles) = result?;

    let diagonals: Vec<Vec<f32>> = matrices.iter().map(diagonal_of).collect();
    let churn = churn.min(100);
    let depth = depth.max(1);
    let mut outcome = ConnOutcome {
        completed: 0,
        protocol_errors: 0,
        busy_retries: 0,
        by_type: [0; 5],
        latencies: Vec::with_capacity(requests),
    };
    // Pre-draw the whole schedule: the wire loop below then only moves
    // bytes, and `Busy` retries re-enqueue without disturbing the rng.
    let mut to_send: VecDeque<Scheduled> = (0..requests)
        .map(|_| draw_request(matrices, &handles, &diagonals, churn, router, &mut rng))
        .collect();
    let mut in_flight: VecDeque<(Scheduled, Instant)> = VecDeque::new();

    // Short read timeout: `FrameReader` keeps partial-frame progress
    // across timeouts, so the loop can interleave scheduled sends with
    // reply reads on one blocking socket.
    stream.set_read_timeout(Some(Duration::from_millis(2)))?;
    let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
    let started = Instant::now();
    let mut next_arrival = started;
    while !(to_send.is_empty() && in_flight.is_empty()) {
        // Admit sends: closed loop tops the window up to `depth`; open
        // loop sends when the schedule says so (window-capped so unread
        // replies stay bounded).
        while !to_send.is_empty() && in_flight.len() < depth {
            let now = Instant::now();
            let sent_at = match interval {
                Some(gap) => {
                    if now < next_arrival {
                        break;
                    }
                    let scheduled = next_arrival;
                    next_arrival += gap;
                    scheduled // latency includes any send-slot lateness
                }
                None => now,
            };
            #[allow(clippy::expect_used)] // non-empty checked above
            let scheduled = to_send.pop_front().expect("to_send is non-empty");
            write_frame(&mut stream, &scheduled.payload)?;
            in_flight.push_back((scheduled, sent_at));
        }
        if in_flight.is_empty() {
            // Open loop, ahead of schedule: nothing to read back yet.
            thread::sleep(Duration::from_micros(200));
            continue;
        }
        match reader.poll(&mut stream) {
            Ok(FrameEvent::Frame(payload)) => {
                #[allow(clippy::expect_used)] // non-empty checked above
                let (expected, sent_at) = in_flight.pop_front().expect("in_flight is non-empty");
                match decode_reply(&payload) {
                    Ok(reply) => match check_reply(&reply, &expected) {
                        Ok(true) => {
                            outcome.latencies.push(sent_at.elapsed().as_micros() as u64);
                            outcome.completed += 1;
                            outcome.by_type[expected.slot] += 1;
                        }
                        Ok(false) => {
                            // Shed: re-enqueue at the back, which spaces the
                            // retry out behind the rest of the schedule.
                            outcome.busy_retries += 1;
                            to_send.push_back(expected);
                        }
                        Err(_) => outcome.protocol_errors += 1,
                    },
                    Err(_) => outcome.protocol_errors += 1,
                }
            }
            Ok(FrameEvent::Timeout) => {}
            Ok(FrameEvent::Eof) => {
                return Err(ClientError::Unexpected(format!(
                    "server closed the connection with {} replies outstanding",
                    in_flight.len()
                )))
            }
            Err(ProtoError::Io(e)) => return Err(ClientError::Io(e)),
            Err(e) => return Err(ClientError::Proto(e)),
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
    Ok(outcome)
}

/// Runs the load generator.
///
/// # Errors
///
/// A human-readable message when the run cannot start, a connection dies,
/// or (`require_hits`) the server reports zero plan-cache hits.
pub fn run(options: &LoadgenOptions) -> Result<LoadgenReport, String> {
    let connections = options.connections.max(1);
    if options.router {
        if options.addr.is_none() {
            return Err("--router requires --addr (start `chason route` first)".to_string());
        }
        if options.require_hits {
            return Err(
                "--require-hits is meaningless against a router: plans live on the shards"
                    .to_string(),
            );
        }
    }
    if options.open_loop_rps == Some(0) {
        return Err("--open-loop requires a positive arrival rate".to_string());
    }
    let depth = options.pipeline.max(1);
    let pipelined = depth > 1 || options.open_loop_rps.is_some();
    // Open loop: split the aggregate arrival rate evenly across
    // connections.
    let interval = options
        .open_loop_rps
        .map(|rps| Duration::from_secs_f64(connections as f64 / rps as f64));
    let local_server = match &options.addr {
        Some(_) => None,
        None => Some(Server::start(ServeConfig::default()).map_err(|e| e.to_string())?),
    };
    let addr = match (&options.addr, &local_server) {
        (Some(addr), _) => addr.clone(),
        (None, Some(server)) => server.local_addr().to_string(),
        (None, None) => unreachable!("local server started above"),
    };
    let matrices = workload_matrices(options.seed);
    // Pipelined runs gate every connection's first request on all of them
    // being connected, so the server demonstrably holds `connections`
    // sockets open at once (the CI smoke asserts its high-water mark).
    let start_gate = StartGate::new(connections);
    let started = Instant::now();
    let outcomes: Vec<Result<ConnOutcome, ClientError>> = thread::scope(|scope| {
        let mut joins = Vec::with_capacity(connections);
        for conn in 0..connections {
            // Spread the total request budget across connections.
            let share =
                options.requests / connections + usize::from(conn < options.requests % connections);
            let rng = options
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(conn as u64 + 1);
            let addr = addr.clone();
            let matrices = &matrices;
            let start_gate = &start_gate;
            // Default thread stacks are 2-8 MiB; a 1k-connection run only
            // needs a shallow call tree per connection, so a small stack
            // keeps the whole fan-out cheap.
            let builder = thread::Builder::new()
                .name(format!("loadgen-{conn}"))
                .stack_size(256 * 1024);
            let spawned = builder.spawn_scoped(scope, move || {
                if pipelined {
                    run_connection_pipelined(
                        &addr,
                        matrices,
                        share,
                        options.churn,
                        options.router,
                        rng,
                        depth,
                        interval,
                        start_gate,
                    )
                } else {
                    run_connection(&addr, matrices, share, options.churn, options.router, rng)
                }
            });
            if spawned.is_err() {
                // This participant will never reach the start gate;
                // release the others before reporting the failure.
                start_gate.forfeit();
            }
            joins.push(spawned.map_err(ClientError::Io));
        }
        joins
            .into_iter()
            .map(|j| match j {
                Ok(join) => match join.join() {
                    Ok(outcome) => outcome,
                    Err(_) => Err(ClientError::Unexpected(
                        "loadgen connection thread panicked".to_string(),
                    )),
                },
                Err(e) => Err(e),
            })
            .collect()
    });
    let elapsed_seconds = started.elapsed().as_secs_f64();

    let mut completed = 0u64;
    let mut protocol_errors = 0u64;
    let mut busy_retries = 0u64;
    let mut by_type = [0u64; 5];
    let mut latencies = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(o) => {
                completed += o.completed;
                protocol_errors += o.protocol_errors;
                busy_retries += o.busy_retries;
                for (total, n) in by_type.iter_mut().zip(o.by_type) {
                    *total += n;
                }
                latencies.extend(o.latencies);
            }
            Err(e) => return Err(format!("connection failed: {e}")),
        }
    }

    let mut final_client = Client::connect(&addr).map_err(|e| e.to_string())?;
    let server_stats = final_client
        .stats()
        .map_err(|e| format!("final stats fetch failed: {e}"))?;
    let router = if options.router {
        let text = final_client
            .metrics()
            .map_err(|e| format!("router metrics fetch failed: {e}"))?;
        Some(
            parse_router_metrics(&text)
                .ok_or("target exposes no router_* metrics; is it a chason route frontend?")?,
        )
    } else {
        None
    };
    if let Some(server) = local_server {
        final_client
            .shutdown()
            .map_err(|e| format!("shutdown failed: {e}"))?;
        server.join();
    }

    latencies.sort_unstable();
    let p50 = percentile_sorted(&latencies, 50);
    let p90 = percentile_sorted(&latencies, 90);
    let p99 = percentile_sorted(&latencies, 99);
    let max = latencies.last().copied().unwrap_or(0);
    let report = LoadgenReport {
        completed,
        protocol_errors,
        busy_retries,
        by_type,
        elapsed_seconds,
        throughput_rps: completed as f64 / elapsed_seconds.max(1e-9),
        latency_micros: (p50, p90, p99, max),
        server_stats,
        router,
    };
    if report.protocol_errors > 0 {
        return Err(format!(
            "{} protocol errors\n{}",
            report.protocol_errors,
            report.render()
        ));
    }
    if options.require_hits && server_stats.plan_cache_hits == 0 {
        return Err(format!(
            "server reported zero plan-cache hits\n{}",
            report.render()
        ));
    }
    Ok(report)
}

/// Ceiling nearest-rank percentile over an already-sorted sample set: the
/// smallest value v such that at least `p`% of the samples are `<= v`.
/// The previous floor-biased index (`(len-1)*p/100`) understated tail
/// latency — for 100 samples its p99 was the 98th-smallest value.
fn percentile_sorted(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * p).div_ceil(100).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_matrices_are_deterministic_and_solvable() {
        let a = workload_matrices(7);
        let b = workload_matrices(7);
        for (m1, m2) in a.iter().zip(&b) {
            assert_eq!(m1.triplets(), m2.triplets());
        }
        let c = workload_matrices(8);
        assert_ne!(a[0].triplets(), c[0].triplets());
        for m in &a {
            assert_eq!(m.rows(), m.cols());
            // Strict diagonal dominance: diag exceeds the off-diag row sum.
            let n = m.rows();
            let mut diag = vec![0.0f32; n];
            let mut off = vec![0.0f32; n];
            for &(r, c, v) in m.iter() {
                if r == c {
                    diag[r] = v;
                } else {
                    off[r] += v.abs();
                }
            }
            for i in 0..n {
                assert!(diag[i] > off[i], "row {i}: {} <= {}", diag[i], off[i]);
            }
        }
    }

    #[test]
    fn router_metrics_parse_into_a_balanced_report() {
        let text = concat!(
            "# TYPE router_shard_requests_total{shard=\"0\"} counter\n",
            "router_shard_requests_total{shard=\"0\"} 120\n",
            "router_shard_requests_total{shard=\"1\"} 100\n",
            "router_shard_requests_total{shard=\"2\"} 80\n",
            "router_shard_up{shard=\"0\"} 1\n",
            "router_shard_up{shard=\"1\"} 1\n",
            "router_shard_up{shard=\"2\"} 0\n",
            "router_shards 3\n",
            "router_nnz_balance_pct 104\n",
            "router_scatter_failures_total 2\n",
            "router_shard_retries_total 5\n",
            "router_shard_reconnects_total 1\n",
            "# TYPE router_gather_micros histogram\n",
            "router_gather_micros_bucket{le=\"127\"} 6\n",
            "router_gather_micros_bucket{le=\"255\"} 9\n",
            "router_gather_micros_bucket{le=\"1023\"} 10\n",
            "router_gather_micros_bucket{le=\"+Inf\"} 10\n",
            "router_gather_micros_sum 1850\n",
            "router_gather_micros_count 10\n",
            "router_gather_micros_max 900\n",
        );
        let report = parse_router_metrics(text).expect("router metrics parse");
        assert_eq!(report.shard_requests, vec![120, 100, 80]);
        assert_eq!(report.shards_up, 2);
        assert_eq!(report.shards_total, 3);
        assert!((report.request_balance - 1.2).abs() < 1e-9);
        // p50 rank 5 lands in the first bucket; p99 rank 10 lands in the
        // 1023 bucket but is clamped to the exact max.
        assert_eq!(report.gather_micros, (127, 255, 900, 900));
        assert_eq!(report.nnz_balance_pct, 104);
        assert_eq!(report.scatter_failures, 2);
        assert_eq!(report.shard_retries, 5);
        assert_eq!(report.shard_reconnects, 1);
        // A plain server exposition has no router family.
        assert!(parse_router_metrics("chsp_requests_spmv_total 4\n").is_none());
    }

    #[test]
    fn percentile_uses_ceiling_nearest_rank() {
        // 100 samples 1..=100: pN is exactly N.
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_sorted(&hundred, 50), 50);
        assert_eq!(percentile_sorted(&hundred, 90), 90);
        assert_eq!(percentile_sorted(&hundred, 99), 99);
        assert_eq!(percentile_sorted(&hundred, 100), 100);
        // 10 samples: the old floor-biased index reported the 9th-smallest
        // for p99; nearest-rank must report the maximum.
        let ten: Vec<u64> = (1..=10).map(|k| k * 10).collect();
        assert_eq!(percentile_sorted(&ten, 50), 50);
        assert_eq!(percentile_sorted(&ten, 90), 90);
        assert_eq!(percentile_sorted(&ten, 91), 100);
        assert_eq!(percentile_sorted(&ten, 99), 100);
        // Degenerate inputs.
        assert_eq!(percentile_sorted(&[42], 1), 42);
        assert_eq!(percentile_sorted(&[42], 99), 42);
        assert_eq!(percentile_sorted(&[], 99), 0);
    }

    #[test]
    fn small_end_to_end_run_is_clean() {
        let report = run(&LoadgenOptions {
            connections: 2,
            requests: 40,
            seed: 3,
            addr: None,
            require_hits: true,
            churn: 0,
            ..LoadgenOptions::default()
        })
        .expect("loadgen run");
        assert_eq!(report.completed, 40);
        assert_eq!(report.protocol_errors, 0);
        assert_eq!(report.by_type[4], 0, "churn defaults off");
        assert!(report.server_stats.plan_cache_hits > 0);
        assert!(report.render().contains("protocol errors      : 0"));
        let json = report.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"completed\":40"), "{json}");
        assert!(json.contains("\"protocol_errors\":0"), "{json}");
        assert!(json.contains("\"server_stats\":{"), "{json}");
    }

    #[test]
    fn churned_run_updates_matrices_and_stays_clean() {
        let report = run(&LoadgenOptions {
            connections: 3,
            requests: 60,
            seed: 5,
            addr: None,
            require_hits: true,
            churn: 25,
            ..LoadgenOptions::default()
        })
        .expect("churned loadgen run");
        assert_eq!(report.completed, 60);
        assert_eq!(report.protocol_errors, 0);
        assert!(
            report.by_type[4] > 0,
            "25% churn over 60 requests must send updates: {:?}",
            report.by_type
        );
        assert_eq!(report.server_stats.requests_update, report.by_type[4]);
        assert!(
            report.server_stats.plans_spliced > 0,
            "churn against warm plans must splice: {:?}",
            report.server_stats
        );
        let json = report.render_json();
        assert!(json.contains("\"update\":"), "{json}");
        assert!(json.contains("\"plans_spliced\":"), "{json}");
    }

    #[test]
    fn pipelined_run_is_clean() {
        let report = run(&LoadgenOptions {
            connections: 3,
            requests: 90,
            seed: 11,
            churn: 10,
            pipeline: 8,
            ..LoadgenOptions::default()
        })
        .expect("pipelined loadgen run");
        assert_eq!(report.completed, 90);
        assert_eq!(report.protocol_errors, 0);
        // The mixed schedule exercised every request type over 90 draws.
        assert!(report.by_type[0] > 0, "{:?}", report.by_type);
        assert!(report.by_type[3] > 0, "{:?}", report.by_type);
    }

    #[test]
    fn open_loop_run_is_clean() {
        let report = run(&LoadgenOptions {
            connections: 2,
            requests: 30,
            seed: 13,
            pipeline: 4,
            open_loop_rps: Some(2000),
            ..LoadgenOptions::default()
        })
        .expect("open-loop loadgen run");
        assert_eq!(report.completed, 30);
        assert_eq!(report.protocol_errors, 0);
        // 30 requests at 2000 req/s arrive over ~15 ms of schedule; the
        // run can be slower than that but never faster.
        assert!(
            report.elapsed_seconds >= 0.014,
            "{}",
            report.elapsed_seconds
        );
    }

    #[test]
    fn open_loop_rejects_a_zero_rate() {
        let err = run(&LoadgenOptions {
            open_loop_rps: Some(0),
            ..LoadgenOptions::default()
        })
        .expect_err("zero arrival rate must be rejected");
        assert!(err.contains("positive arrival rate"), "{err}");
    }
}
