//! Property test for the `BENCH_*.json` schema (serialize → parse →
//! compare) and a harness smoke test: every registered benchmark must
//! produce a finite, nonzero ns/iter on the tiny corpus.

use chason_bench::wallclock::compare::compare;
use chason_bench::wallclock::report::{BenchReport, BenchResult, HostInfo, SCHEMA_VERSION};
use chason_bench::wallclock::runner::Profile;
use chason_bench::wallclock::{registry, run_report};
use proptest::collection::vec;
use proptest::prelude::*;

/// Builds a name from index bytes over a charset that exercises JSON
/// escaping (quotes, backslashes, control chars, non-ASCII).
fn name_from(indices: &[u8]) -> String {
    const CHARSET: [char; 16] = [
        'a', 'b', 'c', 'z', '0', '9', '/', '-', '_', '.', '"', '\\', '\n', '\t', 'π', '✓',
    ];
    indices
        .iter()
        .map(|&i| CHARSET[i as usize % CHARSET.len()])
        .collect()
}

/// Maps arbitrary u64 pairs to a finite, non-negative f64 with a
/// fractional part, so shortest round-trip formatting is exercised on
/// non-integral values.
fn finite_f64(int_part: u64, frac_part: u64) -> f64 {
    (int_part % (1 << 50)) as f64 + (frac_part % 1000) as f64 / 7.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bench_report_json_round_trips(
        name_idx in vec(any::<u8>(), 1..12),
        profile_idx in vec(any::<u8>(), 1..8),
        os_idx in vec(any::<u8>(), 1..8),
        cpus in any::<u64>(),
        rows in vec(
            (
                vec(any::<u8>(), 1..20),                   // id
                any::<u64>(),                              // fingerprint
                (1u64..1000, 1u64..1000, 1u64..100_000),   // warmup/samples/iters
                (any::<u64>(), any::<u64>()),              // median parts
                (any::<u64>(), any::<u64>()),              // mad parts
                any::<u64>(),                              // bytes
            ),
            0..10,
        ),
    ) {
        let report = BenchReport {
            schema_version: SCHEMA_VERSION,
            name: name_from(&name_idx),
            profile: name_from(&profile_idx),
            host: HostInfo {
                os: name_from(&os_idx),
                arch: "x86_64".to_string(),
                cpus,
            },
            results: rows
                .iter()
                .map(|(id, fp, counts, med, mad, bytes)| BenchResult {
                    id: name_from(id),
                    fingerprint: *fp,
                    warmup_iters: counts.0,
                    samples: counts.1,
                    iters_per_sample: counts.2,
                    median_ns_per_iter: finite_f64(med.0, med.1),
                    mad_ns_per_iter: finite_f64(mad.0, mad.1),
                    bytes_per_iter: *bytes,
                })
                .collect(),
        };
        let json = report.to_json();
        let parsed = BenchReport::parse(&json).expect("round trip parses");
        prop_assert_eq!(parsed, report);
    }
}

/// A tiny profile so the debug-build smoke test finishes quickly: the
/// registry falls back to the small (non-`full`) corpus for any profile
/// not named `full`.
fn tiny_profile() -> Profile {
    Profile {
        name: "tiny",
        warmup_iters: 1,
        samples: 2,
        target_sample_nanos: 1,
        max_iters_per_sample: 1,
    }
}

#[test]
fn every_registered_benchmark_produces_finite_nonzero_time() {
    let profile = tiny_profile();
    let report = run_report("tiny", &profile, None);
    let expected = registry::benchmarks(&profile, None).len();
    assert_eq!(report.results.len(), expected);
    assert!(expected >= 10, "registry unexpectedly small: {expected}");
    for r in &report.results {
        assert!(
            r.median_ns_per_iter.is_finite() && r.median_ns_per_iter > 0.0,
            "{}: median {}",
            r.id,
            r.median_ns_per_iter
        );
        assert!(r.mad_ns_per_iter.is_finite(), "{}", r.id);
        assert!(r.samples > 0 && r.iters_per_sample > 0, "{}", r.id);
        assert_ne!(r.fingerprint, 0, "{}", r.id);
    }
    // And the emitted file parses back to the same report.
    let parsed = BenchReport::parse(&report.to_json()).expect("self round trip");
    assert_eq!(parsed, report);
}

#[test]
fn injected_2x_slowdown_is_always_detected() {
    let profile = tiny_profile();
    let baseline = run_report("gate", &profile, Some("chsp"));
    let mut slowed = baseline.clone();
    for r in &mut slowed.results {
        r.median_ns_per_iter *= 2.0;
        r.mad_ns_per_iter *= 2.0;
    }
    let cmp = compare(&baseline, &slowed, 0.2);
    assert!(cmp.is_failure());
    assert_eq!(cmp.regressions().count(), baseline.results.len());
    // The unmodified run passes against itself.
    assert!(!compare(&baseline, &baseline, 0.2).is_failure());
}
