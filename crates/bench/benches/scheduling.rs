//! Criterion benchmarks of the three non-zero schedulers.
//!
//! These measure *scheduling* (offline preprocessing) throughput, the cost
//! CrHCS adds over PE-aware scheduling — plus the plan/execute split:
//! how much a cached plan saves per SpMV and what parallel window
//! scheduling buys at plan-build time.

use chason_core::schedule::{Crhcs, PeAware, RowBased, Scheduler, SchedulerConfig};
use chason_sim::ChasonEngine;
use chason_sparse::generators::{power_law, uniform_random};
use chason_sparse::CooMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn workloads() -> Vec<(&'static str, CooMatrix)> {
    vec![
        ("uniform-20k", uniform_random(2048, 2048, 20_000, 7)),
        ("powerlaw-20k", power_law(2048, 2048, 20_000, 1.7, 7)),
    ]
}

fn bench_schedulers(c: &mut Criterion) {
    let config = SchedulerConfig::paper();
    let mut group = c.benchmark_group("scheduling");
    for (name, matrix) in workloads() {
        group.throughput(Throughput::Elements(matrix.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("row-based", name), &matrix, |b, m| {
            b.iter(|| RowBased::new().schedule(m, &config).stalls())
        });
        group.bench_with_input(BenchmarkId::new("pe-aware", name), &matrix, |b, m| {
            b.iter(|| PeAware::new().schedule(m, &config).stalls())
        });
        group.bench_with_input(BenchmarkId::new("crhcs", name), &matrix, |b, m| {
            b.iter(|| Crhcs::new().schedule(m, &config).stalls())
        });
    }
    group.finish();
}

fn bench_planning(c: &mut Criterion) {
    // Wide matrix -> many independent column windows for the planner.
    let matrix = uniform_random(2048, 65_536, 120_000, 11);
    let x = vec![1.0f32; matrix.cols()];
    let engine = ChasonEngine::default();
    let plan = engine.plan(&matrix).expect("plan succeeds");

    let mut group = c.benchmark_group("planning");
    group.sample_size(10);
    group.throughput(Throughput::Elements(matrix.nnz() as u64));
    // The cost an iterative solver pays per SpMV without/with a plan cache.
    group.bench_function("spmv-unplanned", |b| {
        b.iter(|| {
            engine
                .run(&matrix, &x)
                .expect("run succeeds")
                .cycles
                .total()
        })
    });
    group.bench_function("spmv-planned", |b| {
        b.iter(|| {
            engine
                .run_planned(&plan, &x)
                .expect("run succeeds")
                .cycles
                .total()
        })
    });
    // Plan construction: serial vs fan-out over the window list.
    group.bench_function("plan-serial", |b| {
        b.iter(|| {
            engine
                .plan_with_threads(&matrix, 1)
                .expect("plan succeeds")
                .window_count()
        })
    });
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    group.bench_function(format!("plan-parallel-{threads}t"), |b| {
        b.iter(|| {
            engine
                .plan_with_threads(&matrix, threads)
                .expect("plan succeeds")
                .window_count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_planning);
criterion_main!(benches);
