//! Criterion benchmarks of the three non-zero schedulers.
//!
//! These measure *scheduling* (offline preprocessing) throughput, the cost
//! CrHCS adds over PE-aware scheduling.

use chason_core::schedule::{Crhcs, PeAware, RowBased, Scheduler, SchedulerConfig};
use chason_sparse::generators::{power_law, uniform_random};
use chason_sparse::CooMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn workloads() -> Vec<(&'static str, CooMatrix)> {
    vec![
        ("uniform-20k", uniform_random(2048, 2048, 20_000, 7)),
        ("powerlaw-20k", power_law(2048, 2048, 20_000, 1.7, 7)),
    ]
}

fn bench_schedulers(c: &mut Criterion) {
    let config = SchedulerConfig::paper();
    let mut group = c.benchmark_group("scheduling");
    for (name, matrix) in workloads() {
        group.throughput(Throughput::Elements(matrix.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("row-based", name), &matrix, |b, m| {
            b.iter(|| RowBased::new().schedule(m, &config).stalls())
        });
        group.bench_with_input(BenchmarkId::new("pe-aware", name), &matrix, |b, m| {
            b.iter(|| PeAware::new().schedule(m, &config).stalls())
        });
        group.bench_with_input(BenchmarkId::new("crhcs", name), &matrix, |b, m| {
            b.iter(|| Crhcs::new().schedule(m, &config).stalls())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
