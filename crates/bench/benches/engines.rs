//! Criterion benchmarks of the full accelerator engines (schedule +
//! functional execution + cycle model) and the CPU SpMV baselines.

use chason_baselines::parallel::{spmv_dynamic, spmv_static};
use chason_baselines::reference::spmv_csr;
use chason_sim::{AcceleratorConfig, ChasonEngine, SerpensEngine};
use chason_sparse::generators::power_law;
use chason_sparse::CsrMatrix;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_engines(c: &mut Criterion) {
    let matrix = power_law(2048, 2048, 30_000, 1.7, 5);
    let x = vec![1.0f32; matrix.cols()];
    let chason = ChasonEngine::new(AcceleratorConfig::chason());
    let serpens = SerpensEngine::new(AcceleratorConfig::serpens());

    let mut group = c.benchmark_group("engines");
    group.throughput(Throughput::Elements(matrix.nnz() as u64));
    group.bench_function("chason", |b| {
        b.iter(|| {
            chason
                .run(&matrix, &x)
                .expect("run succeeds")
                .cycles
                .total()
        })
    });
    group.bench_function("serpens", |b| {
        b.iter(|| {
            serpens
                .run(&matrix, &x)
                .expect("run succeeds")
                .cycles
                .total()
        })
    });
    group.finish();
}

fn bench_cpu_baselines(c: &mut Criterion) {
    let matrix = CsrMatrix::from(&power_law(4096, 4096, 120_000, 1.6, 9));
    let x = vec![1.0f32; matrix.cols()];

    let mut group = c.benchmark_group("cpu-spmv");
    group.throughput(Throughput::Elements(matrix.nnz() as u64));
    group.bench_function("serial", |b| b.iter(|| spmv_csr(&matrix, &x)));
    group.bench_function("static-4t", |b| b.iter(|| spmv_static(&matrix, &x, 4)));
    group.bench_function("dynamic-4t", |b| {
        b.iter(|| spmv_dynamic(&matrix, &x, 4, 256))
    });
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let a = power_law(1024, 1024, 10_000, 1.7, 3);
    let b = chason_sparse::DenseMatrix::from_fn(1024, 16, |r, q| ((r + q) % 5) as f32);
    let c0 = chason_sparse::DenseMatrix::zeros(1024, 16);
    let chason = ChasonEngine::new(AcceleratorConfig::chason());

    let mut group = c.benchmark_group("spmm");
    group.sample_size(10);
    group.throughput(Throughput::Elements((a.nnz() * 16) as u64));
    group.bench_function("chason-16col", |bch| {
        bch.iter(|| {
            chason
                .run_spmm(&a, &b, 1.0, 0.0, &c0)
                .expect("runs")
                .mac_ops
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engines, bench_cpu_baselines, bench_spmm);
criterion_main!(benches);
