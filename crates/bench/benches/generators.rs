//! Criterion benchmarks of the dataset generators and MatrixMarket IO —
//! the preprocessing costs a downstream user pays before scheduling.

use chason_sparse::generators::{arrow_with_nnz, mycielskian, power_law, uniform_random};
use chason_sparse::market::{read_matrix_market, write_matrix_market};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const NNZ: usize = 50_000;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.throughput(Throughput::Elements(NNZ as u64));
    group.bench_function("uniform-50k", |b| {
        b.iter(|| uniform_random(4096, 4096, NNZ, 7).nnz())
    });
    group.bench_function("powerlaw-50k", |b| {
        b.iter(|| power_law(4096, 4096, NNZ, 1.7, 7).nnz())
    });
    group.bench_function("arrow-50k", |b| {
        b.iter(|| arrow_with_nnz(4096, 4, 8, NNZ, 7).nnz())
    });
    group.bench_function("mycielskian-10", |b| b.iter(|| mycielskian(10, 0).nnz()));
    group.finish();
}

fn bench_market_io(c: &mut Criterion) {
    let m = uniform_random(4096, 4096, NNZ, 3);
    let mut buf = Vec::new();
    write_matrix_market(&mut buf, &m).expect("write succeeds");

    let mut group = c.benchmark_group("matrix-market");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(buf.len() as u64));
    group.bench_function("write-50k", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            write_matrix_market(&mut out, &m).expect("write succeeds");
            out.len()
        })
    });
    group.bench_function("read-50k", |b| {
        b.iter(|| {
            read_matrix_market(buf.as_slice())
                .expect("read succeeds")
                .nnz()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_market_io);
criterion_main!(benches);
