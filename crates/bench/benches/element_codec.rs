//! Criterion benchmark of the 64-bit sparse-element wire codec.

use chason_core::element::SparseElement;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let elements: Vec<SparseElement> = (0..4096u32)
        .map(|i| SparseElement {
            value: 1.0 + i as f32,
            local_row: (i % 32_768) as u16,
            pvt: i % 3 == 0,
            pe_src: (i % 8) as u8,
            local_col: (i % 8192) as u16,
        })
        .collect();
    let words: Vec<u64> = elements.iter().map(SparseElement::pack).collect();

    let mut group = c.benchmark_group("element-codec");
    group.throughput(Throughput::Elements(elements.len() as u64));
    group.bench_function("pack", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for e in &elements {
                acc ^= black_box(e).pack();
            }
            acc
        })
    });
    group.bench_function("unpack", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &w in &words {
                if let Some(e) = SparseElement::unpack(black_box(w)) {
                    acc += e.value;
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
