//! Debugs per-channel schedule lengths across migration-hop settings.
use chason_core::schedule::{Crhcs, PeAware, Scheduler, SchedulerConfig};

fn main() {
    let m = chason_bench::experiments::ablation::workload(5);
    for hops in 1..=3 {
        let cfg = SchedulerConfig {
            migration_hops: hops,
            ..SchedulerConfig::paper()
        };
        let s = Crhcs::new().schedule(&m, &cfg);
        let lens: Vec<usize> = s.channels.iter().map(|c| c.cycles()).collect();
        let nz: Vec<usize> = s.channels.iter().map(|c| c.nonzeros()).collect();
        println!("hops {hops}: stream {} lens {:?}", s.stream_cycles(), lens);
        println!("          nz {:?}", nz);
    }
    let p = PeAware::new().schedule(&m, &SchedulerConfig::paper());
    let lens: Vec<usize> = p.channels.iter().map(|c| c.cycles()).collect();
    println!("pe-aware: stream {} lens {:?}", p.stream_cycles(), lens);
}
