//! Prints per-corpus-matrix scheduling metrics for calibration debugging.
use chason_core::metrics::windowed_metrics;
use chason_core::schedule::{Crhcs, PeAware, SchedulerConfig};

fn main() {
    let config = SchedulerConfig::paper();
    let w = chason_core::element::WINDOW;
    for spec in chason_sparse::datasets::corpus(24, 1) {
        let m = spec.generate();
        let s = windowed_metrics(&PeAware::new(), &m, &config, w);
        let c = windowed_metrics(&Crhcs::new(), &m, &config, w);
        let st = chason_sparse::stats::row_stats(&m);
        println!(
            "{:2} {:28} n={:6} nnz={:7} maxrow={:5} | serpens {:5.1}% chason {:5.1}% | cycles {:6} -> {:6}",
            spec.index,
            format!("{:?}", spec.recipe).chars().take(28).collect::<String>(),
            spec.dimension,
            m.nnz(),
            st.max_row_nnz,
            s.underutilization_pct(),
            c.underutilization_pct(),
            s.stream_cycles,
            c.stream_cycles,
        );
    }
}
