//! Ablation (§7.1): static row reordering vs cross-channel migration.
fn main() {
    let r = chason_bench::experiments::ablation::row_order(1);
    print!("{}", chason_bench::experiments::ablation::report(&r));
}
