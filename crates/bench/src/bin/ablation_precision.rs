//! Ablation (§5.5): FP32 (8 PEs/PEG) vs FP64 (5 PEs/PEG) scheduling.
fn main() {
    let r = chason_bench::experiments::ablation::precision(1);
    print!("{}", chason_bench::experiments::ablation::report(&r));
}
