//! Regenerates Fig. 2: PE0 timelines under the three scheduling schemes.
fn main() {
    let result = chason_bench::experiments::fig02::run();
    print!("{}", chason_bench::experiments::fig02::report(&result));
}
