//! Runs every experiment and ablation, writing one output file per artifact
//! into a results directory (default `results/`, override with the first
//! positional argument). The corpus experiments honour `CHASON_CORPUS`.
//!
//! ```sh
//! cargo run --release -p chason-bench --bin run_all -- results/
//! ```

use chason_bench::experiments as exp;
use chason_bench::util::corpus_size;
use std::fs;
use std::path::Path;

fn write(dir: &Path, name: &str, contents: String) {
    let path = dir.join(name);
    fs::write(&path, &contents).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
    println!("wrote {path:?} ({} bytes)", contents.len());
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".to_string());
    let dir = Path::new(&dir);
    #[allow(clippy::expect_used)] // CLI entry point: an unwritable results dir is fatal
    fs::create_dir_all(dir).expect("cannot create results directory");
    let n = corpus_size();

    write(dir, "fig02.txt", exp::fig02::report(&exp::fig02::run()));
    write(dir, "fig05.txt", exp::fig05::report_with_grids());
    write(dir, "table1.txt", exp::table1::report(&exp::table1::run()));
    write(dir, "fig10.txt", exp::fig10::report(&exp::fig10::run()));
    write(dir, "table2.txt", exp::table2::report(&exp::table2::run()));
    write(dir, "fig12.txt", exp::fig12::report(&exp::fig12::run(20)));
    write(dir, "fig13.txt", exp::fig13::report(&exp::fig13::run(20)));
    write(dir, "fig15.txt", exp::fig15::report(&exp::fig15::run(20)));
    write(
        dir,
        "table3.txt",
        exp::table3::report(&exp::table3::run(20)),
    );
    write(dir, "fig03.txt", exp::fig03::report(&exp::fig03::run(n, 1)));
    write(dir, "fig11.txt", exp::fig11::report(&exp::fig11::run(n, 1)));
    write(dir, "fig14.txt", exp::fig14::report(&exp::fig14::run(n, 1)));
    write(
        dir,
        "ablation_hops.txt",
        exp::ablation::report(&exp::ablation::hops(3, 1)),
    );
    write(
        dir,
        "ablation_distance.txt",
        exp::ablation::report(&exp::ablation::dependency_distance(&[1, 2, 5, 10, 20], 1)),
    );
    write(
        dir,
        "ablation_scan_limit.txt",
        exp::ablation::report(&exp::ablation::scan_limit(&[1, 4, 16, 64, 256, 1024], 1)),
    );
    write(
        dir,
        "ablation_precision.txt",
        exp::ablation::report(&exp::ablation::precision(1)),
    );
    write(
        dir,
        "ablation_row_order.txt",
        exp::ablation::report(&exp::ablation::row_order(1)),
    );
    // Scheduler-family and SpMM sweeps print directly; regenerate via
    // `cargo run -p chason-bench --bin ablation_schedulers` / `ablation_spmm`.
    println!("\nall experiments written to {dir:?} (corpus size {n})");
}
