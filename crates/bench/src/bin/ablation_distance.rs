//! Ablation (§2.2): accumulator dependency distance sweep.
fn main() {
    let r = chason_bench::experiments::ablation::dependency_distance(&[1, 2, 5, 10, 20], 1);
    print!("{}", chason_bench::experiments::ablation::report(&r));
}
