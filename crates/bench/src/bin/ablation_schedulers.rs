//! Ablation (§2.1/§2.2): the full scheduler family — row-based, PE-aware
//! (Serpens), HiSpMV-style hybrid row splitting, and CrHCS — across
//! imbalance regimes. Row splitting fixes intra-channel hub rows; only
//! CrHCS also fixes inter-channel imbalance.
use chason_core::metrics::windowed_metrics;
use chason_core::schedule::{Crhcs, HybridRowSplit, PeAware, RowBased, SchedulerConfig};
use chason_sparse::generators::{arrow_with_nnz, power_law, uniform_random};
use chason_sparse::CooMatrix;

fn main() {
    let config = SchedulerConfig::paper();
    let window = chason_core::element::WINDOW;
    let workloads: Vec<(&str, CooMatrix)> = vec![
        ("balanced (uniform)", uniform_random(4096, 4096, 80_000, 3)),
        ("skewed (power-law)", power_law(4096, 4096, 80_000, 1.7, 3)),
        ("hub rows (arrow)", arrow_with_nnz(4096, 4, 16, 80_000, 3)),
    ];
    println!("Ablation — scheduler family (PE underutilization %, lower is better)\n");
    println!(
        "{:22} {:>10} {:>10} {:>10} {:>10}",
        "workload", "row-based", "pe-aware", "row-split", "crhcs"
    );
    for (name, m) in &workloads {
        let rb = windowed_metrics(&RowBased::new(), m, &config, window).underutilization_pct();
        let pa = windowed_metrics(&PeAware::new(), m, &config, window).underutilization_pct();
        let rs = windowed_metrics(&HybridRowSplit::auto(m, &config), m, &config, window)
            .underutilization_pct();
        let ch = windowed_metrics(&Crhcs::new(), m, &config, window).underutilization_pct();
        println!("{name:22} {rb:>9.1}% {pa:>9.1}% {rs:>9.1}% {ch:>9.1}%");
    }
    println!("\n(row splitting needs HiSpMV's intra-PEG adder tree; it is a\n metrics-level baseline, not executable on the Chason datapath)");
}
