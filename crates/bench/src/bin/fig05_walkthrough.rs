//! Regenerates Fig. 5: the CrHCS worked example (19/36 -> 7/24 stalls),
//! including the schedule grids.
fn main() {
    print!("{}", chason_bench::experiments::fig05::report_with_grids());
}
