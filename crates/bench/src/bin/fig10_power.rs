//! Regenerates Fig. 10: the power distribution of Chason on the U55c.
fn main() {
    let result = chason_bench::experiments::fig10::run();
    print!("{}", chason_bench::experiments::fig10::report(&result));
}
