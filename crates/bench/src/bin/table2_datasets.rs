//! Regenerates Table 2: the 20 evaluated matrices (targets vs generated).
fn main() {
    let result = chason_bench::experiments::table2::run();
    print!("{}", chason_bench::experiments::table2::report(&result));
}
