//! Regenerates Fig. 13: average per-PEG underutilization (stall fairness).
fn main() {
    let result = chason_bench::experiments::fig13::run(20);
    print!("{}", chason_bench::experiments::fig13::report(&result));
}
