//! Regenerates Fig. 14: speedup and energy-efficiency gain over the GPU and
//! CPU baselines. Set `CHASON_CORPUS=<n>` for the population size.
fn main() {
    let count = chason_bench::util::corpus_size();
    let result = chason_bench::experiments::fig14::run(count, 1);
    print!("{}", chason_bench::experiments::fig14::report(&result));
}
