//! Regenerates Fig. 11: underutilization PDFs, Chason vs Serpens.
//! Set `CHASON_CORPUS=<n>` to change the population size (default 800).
fn main() {
    let count = chason_bench::util::corpus_size();
    let result = chason_bench::experiments::fig11::run(count, 1);
    print!("{}", chason_bench::experiments::fig11::report(&result));
}
