//! Regenerates Fig. 15: speedup and data-transfer reduction over Serpens.
fn main() {
    let result = chason_bench::experiments::fig15::run(20);
    print!("{}", chason_bench::experiments::fig15::report(&result));
}
