//! Regenerates Fig. 12: per-PEG underutilization for the Table 2 matrices.
fn main() {
    let result = chason_bench::experiments::fig12::run(20);
    print!("{}", chason_bench::experiments::fig12::report(&result));
}
