//! Regenerates Table 3: detailed per-matrix performance numbers.
fn main() {
    let result = chason_bench::experiments::table3::run(20);
    print!("{}", chason_bench::experiments::table3::report(&result));
}
