//! Ablation (§3.3): CrHCS candidate scan limit sweep.
fn main() {
    let r = chason_bench::experiments::ablation::scan_limit(&[1, 4, 16, 64, 256, 1024], 1);
    print!("{}", chason_bench::experiments::ablation::report(&r));
}
