//! Regenerates Table 1: Alveo U55c resource consumption.
fn main() {
    let result = chason_bench::experiments::table1::run();
    print!("{}", chason_bench::experiments::table1::report(&result));
}
