//! Regenerates Fig. 3: the PE-aware stall PDF over the synthetic corpus.
//! Set `CHASON_CORPUS=<n>` to change the population size (default 800).
fn main() {
    let count = chason_bench::util::corpus_size();
    let result = chason_bench::experiments::fig03::run(count, 1);
    print!("{}", chason_bench::experiments::fig03::report(&result));
}
