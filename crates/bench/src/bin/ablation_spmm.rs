//! Ablation (§7.2): SpMM scaling — cycles and throughput vs dense-column
//! count N for both engines (stream cycles scale with ceil(N / 8) tiles).
use chason_sim::{AcceleratorConfig, ChasonEngine, SerpensEngine};
use chason_sparse::generators::power_law;
use chason_sparse::DenseMatrix;

fn main() {
    let a = power_law(2048, 2048, 30_000, 1.7, 5);
    let chason = ChasonEngine::new(AcceleratorConfig::chason());
    let serpens = SerpensEngine::new(AcceleratorConfig::serpens());
    println!("Ablation — SpMM dense-column scaling (A: 2048x2048, 30k nnz)\n");
    println!(
        "{:>4} {:>6} {:>12} {:>12} {:>9} {:>9}",
        "N", "tiles", "chason cyc", "serpens cyc", "GF chason", "speedup"
    );
    for n in [1usize, 8, 16, 32, 64, 128] {
        let b = DenseMatrix::from_fn(2048, n, |r, c| ((r + c) % 7) as f32 * 0.25);
        let c0 = DenseMatrix::zeros(2048, n);
        #[allow(clippy::expect_used)] // fixed in-range ablation inputs
        let ce = chason.run_spmm(&a, &b, 1.0, 0.0, &c0).expect("chason runs");
        let se = serpens.run_spmm(&a, &b, 1.0, 0.0, &c0);
        #[allow(clippy::expect_used)] // fixed in-range ablation inputs
        let se = se.expect("serpens runs");
        println!(
            "{:>4} {:>6} {:>12} {:>12} {:>9.2} {:>8.2}x",
            n,
            ce.tiles,
            ce.cycles.total(),
            se.cycles.total(),
            ce.throughput_gflops(),
            se.latency_seconds() / ce.latency_seconds()
        );
    }
}
