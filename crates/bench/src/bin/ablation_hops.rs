//! Ablation (§6.1): CrHCS migration scope — 1, 2 and 3 ring hops.
fn main() {
    let r = chason_bench::experiments::ablation::hops(3, 1);
    print!("{}", chason_bench::experiments::ablation::report(&r));
}
