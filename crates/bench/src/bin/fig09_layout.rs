//! Regenerates Fig. 9 (schematically): the Alveo U55c floorplan with
//! Chason's resource placement. The original is a place-and-route screen
//! shot; this sketch reports the same information — which SLRs hold the
//! logic, where the HBM stacks sit, and the utilization of each resource
//! class (Table 1's numbers).
use chason_sim::resources::{DeviceCapacity, ResourceConfig, ResourceUsage};

fn main() {
    let device = DeviceCapacity::alveo_u55c();
    let usage = ResourceUsage::estimate(&ResourceConfig::chason());
    println!("Fig. 9 — Chason on the Alveo U55c (schematic floorplan)\n");
    println!("  +--------------------------------------------------+");
    println!("  | SLR2:  (mostly unused)                           |");
    println!("  +--------------------------------------------------+");
    println!("  | SLR1:  PEGs 8-15   Reduction/Re-order   URAM     |");
    println!("  |        ################........         oooo     |");
    println!("  +--------------------------------------------------+");
    println!("  | SLR0:  PEGs 0-7    Arbiter/Merger       URAM     |");
    println!("  |        ############....                 oooo     |");
    println!("  +--------------------------------------------------+");
    println!("  | HBM stack 0 (ch 0-15)   | HBM stack 1 (ch 16-31) |");
    println!("  +--------------------------------------------------+");
    println!("\n  (# logic, o on-chip memory; Autobridge places the kernel");
    println!("   logic in SLR0/SLR1, adjacent to the HBM channels)\n");
    println!("resource utilization (Table 1):");
    for (name, pct) in usage.utilization_pct(&device) {
        let bar = "#".repeat((pct / 2.0).round() as usize);
        println!("  {name:8} {pct:5.1}%  {bar}");
    }
    println!("\nclock: 301 MHz (vs Serpens 223 MHz on the same device)");
}
