//! Experiment harness regenerating every table and figure of the Chasoň
//! paper.
//!
//! Each experiment lives in [`experiments`] as a pure function returning a
//! structured result, and has a thin binary under `src/bin/` that runs it
//! and prints the paper-style table or curve. The mapping from paper
//! artifact to binary is the experiment index in `DESIGN.md` §4:
//!
//! | Artifact | Binary |
//! |---|---|
//! | Fig. 2 (scheduling timelines) | `fig02_timeline` |
//! | Fig. 3 (PE-aware stall PDF) | `fig03_stall_pdf` |
//! | Fig. 5 (CrHCS walkthrough) | `fig05_walkthrough` |
//! | Table 1 (resources) | `table1_resources` |
//! | Fig. 10 (power) | `fig10_power` |
//! | Table 2 (datasets) | `table2_datasets` |
//! | Fig. 11 (underutilization, 800 matrices) | `fig11_underutilization` |
//! | Fig. 12 (per-PEG PDFs) | `fig12_per_peg_pdf` |
//! | Fig. 13 (PEG fairness) | `fig13_peg_fairness` |
//! | Fig. 14 (vs GPU/CPU) | `fig14_vs_gpu_cpu` |
//! | Fig. 15 (vs Serpens) | `fig15_vs_serpens` |
//! | Table 3 (detailed numbers) | `table3_detailed` |
//!
//! The corpus experiments default to the paper's 800 matrices; set
//! `CHASON_CORPUS=<n>` to run a smaller population (the integration tests
//! use a few dozen).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod util;
pub mod wallclock;
