//! Regression comparator: current run vs committed baseline.
//!
//! A benchmark is flagged as a regression when its median ns/iter exceeds
//! the baseline's by more than the relative threshold AND the absolute
//! slowdown clears a noise guard of three combined MADs (capped at half
//! the baseline median) — a run that is 25% "slower" inside measurement
//! noise is not a regression, and a genuine 2× slowdown always clears
//! both gates regardless of noise. Benchmarks present in the
//! baseline but missing from the current run are reported separately so a
//! silently dropped benchmark cannot pass CI.

use super::report::BenchReport;

/// One benchmark's baseline-vs-current delta.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Benchmark id.
    pub id: String,
    /// Baseline median ns/iter.
    pub baseline_ns: f64,
    /// Current median ns/iter.
    pub current_ns: f64,
    /// `current / baseline` (1.0 = unchanged, 2.0 = twice as slow).
    pub ratio: f64,
    /// Whether the two runs measured the same input.
    pub fingerprint_match: bool,
    /// Whether this delta is a flagged regression.
    pub regressed: bool,
}

/// The comparator's verdict over two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Relative threshold used (0.2 = flag beyond +20%).
    pub threshold: f64,
    /// Per-benchmark deltas for ids present in both reports.
    pub deltas: Vec<Delta>,
    /// Ids in the baseline but not the current run.
    pub missing: Vec<String>,
    /// Ids in the current run but not the baseline (informational).
    pub added: Vec<String>,
}

impl Comparison {
    /// Whether the comparison should fail a gate: any flagged regression,
    /// any dropped benchmark, or any fingerprint mismatch.
    pub fn is_failure(&self) -> bool {
        !self.missing.is_empty()
            || self
                .deltas
                .iter()
                .any(|d| d.regressed || !d.fingerprint_match)
    }

    /// Flagged regressions only.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas.iter().filter(|d| d.regressed)
    }

    /// Renders the verdict as an aligned human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>14} {:>14} {:>8}  verdict\n",
            "benchmark", "baseline ns", "current ns", "ratio"
        ));
        for d in &self.deltas {
            let verdict = if !d.fingerprint_match {
                "FINGERPRINT MISMATCH"
            } else if d.regressed {
                "REGRESSION"
            } else if d.ratio < 1.0 - self.threshold {
                "improved"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "{:<22} {:>14.1} {:>14.1} {:>8.3}  {verdict}\n",
                d.id, d.baseline_ns, d.current_ns, d.ratio
            ));
        }
        for id in &self.missing {
            out.push_str(&format!("{id:<22} missing from current run: FAIL\n"));
        }
        for id in &self.added {
            out.push_str(&format!("{id:<22} new benchmark (no baseline)\n"));
        }
        let n_reg = self.regressions().count();
        out.push_str(&format!(
            "{} compared, {} regression(s) beyond +{:.0}%, {} missing, {} new\n",
            self.deltas.len(),
            n_reg,
            self.threshold * 100.0,
            self.missing.len(),
            self.added.len()
        ));
        out
    }
}

/// Compares `current` against `baseline` with a relative `threshold`
/// (0.2 = flag anything more than 20% slower, subject to the noise
/// guard).
pub fn compare(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> Comparison {
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for b in &baseline.results {
        let Some(c) = current.get(&b.id) else {
            missing.push(b.id.clone());
            continue;
        };
        let ratio = if b.median_ns_per_iter > 0.0 {
            c.median_ns_per_iter / b.median_ns_per_iter
        } else {
            f64::INFINITY
        };
        // Three combined MADs of slack, but never more than half the
        // baseline itself: a ≥1.5× slowdown is flagged no matter how
        // noisy the samples were.
        let noise_guard =
            (3.0 * (b.mad_ns_per_iter + c.mad_ns_per_iter)).min(0.5 * b.median_ns_per_iter);
        let slowdown = c.median_ns_per_iter - b.median_ns_per_iter;
        let regressed = ratio > 1.0 + threshold && slowdown > noise_guard;
        deltas.push(Delta {
            id: b.id.clone(),
            baseline_ns: b.median_ns_per_iter,
            current_ns: c.median_ns_per_iter,
            ratio,
            fingerprint_match: b.fingerprint == c.fingerprint,
            regressed,
        });
    }
    let added = current
        .results
        .iter()
        .filter(|c| baseline.get(&c.id).is_none())
        .map(|c| c.id.clone())
        .collect();
    Comparison {
        threshold,
        deltas,
        missing,
        added,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wallclock::report::{BenchResult, HostInfo, SCHEMA_VERSION};

    fn report_with(results: Vec<BenchResult>) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            name: "test".to_string(),
            profile: "smoke".to_string(),
            host: HostInfo {
                os: "linux".to_string(),
                arch: "x86_64".to_string(),
                cpus: 4,
            },
            results,
        }
    }

    fn result(id: &str, median: f64, mad: f64) -> BenchResult {
        BenchResult {
            id: id.to_string(),
            fingerprint: 99,
            warmup_iters: 1,
            samples: 8,
            iters_per_sample: 10,
            median_ns_per_iter: median,
            mad_ns_per_iter: mad,
            bytes_per_iter: 0,
        }
    }

    #[test]
    fn detects_a_2x_slowdown() {
        let baseline = report_with(vec![result("spmv/static-t1", 1000.0, 5.0)]);
        let current = report_with(vec![result("spmv/static-t1", 2000.0, 5.0)]);
        let cmp = compare(&baseline, &current, 0.2);
        assert!(cmp.is_failure());
        let d = &cmp.deltas[0];
        assert!(d.regressed);
        assert!((d.ratio - 2.0).abs() < 1e-12);
        assert!(cmp.render().contains("REGRESSION"), "{}", cmp.render());
    }

    #[test]
    fn noise_inside_the_guard_is_not_a_regression() {
        // +30% relative but within 3 combined MADs: not flagged.
        let baseline = report_with(vec![result("chsp/reply-vector", 100.0, 20.0)]);
        let current = report_with(vec![result("chsp/reply-vector", 130.0, 20.0)]);
        let cmp = compare(&baseline, &current, 0.2);
        assert!(!cmp.is_failure());
        assert!(!cmp.deltas[0].regressed);
    }

    #[test]
    fn small_shifts_under_the_threshold_pass() {
        let baseline = report_with(vec![result("plan/chason-t1", 1000.0, 1.0)]);
        let current = report_with(vec![result("plan/chason-t1", 1100.0, 1.0)]);
        let cmp = compare(&baseline, &current, 0.2);
        assert!(!cmp.is_failure());
    }

    #[test]
    fn dropped_benchmarks_fail_and_new_ones_inform() {
        let baseline = report_with(vec![
            result("spmv/static-t1", 1000.0, 5.0),
            result("spmv/static-t2", 600.0, 5.0),
        ]);
        let current = report_with(vec![
            result("spmv/static-t1", 1000.0, 5.0),
            result("replay/chason", 3000.0, 5.0),
        ]);
        let cmp = compare(&baseline, &current, 0.2);
        assert!(cmp.is_failure());
        assert_eq!(cmp.missing, vec!["spmv/static-t2".to_string()]);
        assert_eq!(cmp.added, vec!["replay/chason".to_string()]);
    }

    #[test]
    fn fingerprint_mismatch_is_a_failure() {
        let baseline = report_with(vec![result("spmv/static-t1", 1000.0, 5.0)]);
        let mut current = report_with(vec![result("spmv/static-t1", 1000.0, 5.0)]);
        current.results[0].fingerprint = 7;
        let cmp = compare(&baseline, &current, 0.2);
        assert!(cmp.is_failure());
        assert!(!cmp.deltas[0].fingerprint_match);
    }
}
