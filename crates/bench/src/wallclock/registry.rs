//! The registered wall-clock benchmarks: threaded SpMV kernels, engine
//! planning, plan replay, incremental delta re-planning, CHSP codec
//! round-trips, and pipelined echo round-trips through the chason-net
//! readiness loop.
//!
//! Every benchmark has a stable `group/case` id — the comparator matches
//! baseline to current by id — and an input fingerprint, so a baseline
//! measured on different data is detectable. Inputs are generated
//! deterministically (fixed seeds) and sized by the profile: `smoke` uses
//! small matrices so CI stays fast, `full` uses the sizes committed
//! baselines are measured on.

use super::report::BenchResult;
use super::runner::{measure, Profile};
use chason_baselines::parallel::{spmv_dynamic, spmv_static};
use chason_core::plan::matrix_fingerprint;
use chason_net::server::{FrameOutcome, NetConfig, NetServer, Service};
use chason_serve::proto::{
    decode_reply, decode_request, encode_reply, encode_request, Engine, Reply, Request,
};
use chason_sim::{ChasonEngine, SerpensEngine};
use chason_sparse::generators::{power_law, uniform_random};
use chason_sparse::{CooMatrix, CsrMatrix, MatrixDelta};
use chason_telemetry::metrics::Registry;
use criterion::black_box;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::rc::Rc;

/// One runnable benchmark: a stable id, its input fingerprint, the
/// nominal bytes one iteration moves (0 when throughput is not
/// meaningful), and the routine itself.
pub struct Benchmark {
    /// Stable `group/case` identifier.
    pub id: String,
    /// FNV-1a fingerprint of the benchmark's input.
    pub fingerprint: u64,
    /// Nominal bytes moved per iteration (0 = throughput not meaningful).
    pub bytes_per_iter: u64,
    /// The timed routine.
    pub routine: Box<dyn FnMut()>,
}

/// Thread counts every threaded kernel is measured at. Fixed (not derived
/// from the host) so benchmark ids are stable across machines.
pub const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn matches(id: &str, filter: Option<&str>) -> bool {
    filter.is_none_or(|f| id.contains(f))
}

/// Nominal per-iteration traffic of one SpMV: 8 B per stored nonzero
/// (value + column index) plus 4 B per element of `x` and `y`.
fn spmv_bytes(matrix: &CooMatrix) -> u64 {
    (matrix.nnz() * 8 + matrix.cols() * 4 + matrix.rows() * 4) as u64
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The matrix the SpMV-kernel group runs on.
fn spmv_matrix(profile: &Profile) -> CooMatrix {
    if profile.name == "full" {
        power_law(16_384, 16_384, 1_000_000, 1.7, 11)
    } else {
        power_law(2_000, 2_000, 40_000, 1.7, 11)
    }
}

/// The matrix the planning and replay groups run on; wide enough to span
/// several column windows (W = 8192).
fn plan_matrix(profile: &Profile) -> CooMatrix {
    if profile.name == "full" {
        uniform_random(4_096, 60_000, 600_000, 13)
    } else {
        uniform_random(1_024, 20_000, 60_000, 13)
    }
}

fn chsp_vector_len(profile: &Profile) -> usize {
    if profile.name == "full" {
        65_536
    } else {
        4_096
    }
}

/// Builds every registered benchmark whose id contains `filter` (all of
/// them when `filter` is `None`). Construction is filter-aware: input
/// matrices for fully filtered-out groups are never generated.
pub fn benchmarks(profile: &Profile, filter: Option<&str>) -> Vec<Benchmark> {
    let mut out: Vec<Benchmark> = Vec::new();

    // (a) Threaded SpMV kernels, static and dynamic partitioning.
    let spmv_ids: Vec<(String, usize, bool)> = THREAD_COUNTS
        .iter()
        .flat_map(|&t| {
            [
                (format!("spmv/static-t{t}"), t, true),
                (format!("spmv/dynamic-t{t}"), t, false),
            ]
        })
        .collect();
    if spmv_ids.iter().any(|(id, ..)| matches(id, filter)) {
        let coo = spmv_matrix(profile);
        let fingerprint = matrix_fingerprint(&coo);
        let bytes = spmv_bytes(&coo);
        let csr = Rc::new(CsrMatrix::from(&coo));
        let x: Rc<Vec<f32>> = Rc::new((0..coo.cols()).map(|i| (i as f32 * 0.17).cos()).collect());
        for (id, threads, is_static) in spmv_ids {
            if !matches(&id, filter) {
                continue;
            }
            let csr = Rc::clone(&csr);
            let x = Rc::clone(&x);
            out.push(Benchmark {
                id,
                fingerprint,
                bytes_per_iter: bytes,
                routine: Box::new(move || {
                    let y = if is_static {
                        spmv_static(&csr, &x, threads)
                    } else {
                        spmv_dynamic(&csr, &x, threads, 256)
                    };
                    black_box(y);
                }),
            });
        }
    }

    // (b) Engine planning (schedule every column window, no execution).
    let plan_ids = [
        ("plan/chason-t1", true, 1usize),
        ("plan/chason-t4", true, 4),
        ("plan/serpens-t1", false, 1),
    ];
    if plan_ids.iter().any(|(id, ..)| matches(id, filter)) {
        let matrix = Rc::new(plan_matrix(profile));
        let fingerprint = matrix_fingerprint(&matrix);
        for (id, is_chason, threads) in plan_ids {
            if !matches(id, filter) {
                continue;
            }
            let matrix = Rc::clone(&matrix);
            out.push(Benchmark {
                id: id.to_string(),
                fingerprint,
                bytes_per_iter: 0,
                routine: Box::new(move || {
                    if is_chason {
                        let engine = ChasonEngine::default();
                        #[allow(clippy::expect_used)] // bench corpus fits the engines
                        black_box(engine.plan_with_threads(&matrix, threads).expect("plan"));
                    } else {
                        let engine = SerpensEngine::default();
                        #[allow(clippy::expect_used)] // bench corpus fits the engines
                        black_box(engine.plan_with_threads(&matrix, threads).expect("plan"));
                    }
                }),
            });
        }
    }

    // (c) Plan replay: schedule once in setup, execute many times.
    let replay_id = "replay/chason";
    if matches(replay_id, filter) {
        let matrix = plan_matrix(profile);
        let fingerprint = matrix_fingerprint(&matrix);
        let bytes = spmv_bytes(&matrix);
        let engine = ChasonEngine::default();
        #[allow(clippy::expect_used)] // bench corpus fits the engines
        let plan = engine.plan_with_threads(&matrix, 1).expect("plan");
        let x: Vec<f32> = (0..matrix.cols())
            .map(|i| (i as f32 * 0.29).sin())
            .collect();
        out.push(Benchmark {
            id: replay_id.to_string(),
            fingerprint,
            bytes_per_iter: bytes,
            routine: Box::new(move || {
                #[allow(clippy::expect_used)] // plan was built from this same matrix
                black_box(engine.run_planned(&plan, &x).expect("replay"));
            }),
        });
    }

    // (d) Incremental re-planning: a small delta (revalues confined to one
    // column window, touching well under 5% of the rows) spliced into a
    // cached plan vs. a full from-scratch re-plan of the updated matrix.
    // Same updated matrix either way, so the pair measures exactly the
    // work `replan_delta` avoids.
    let replan_ids = ["replan/full", "replan/delta"];
    if replan_ids.iter().any(|id| matches(id, filter)) {
        let matrix = plan_matrix(profile);
        let mut delta = MatrixDelta::for_matrix(&matrix);
        let budget = (matrix.rows() / 20).min(32); // <= 5% of rows
        let mut touched = 0usize;
        for &(r, c, v) in matrix.triplets().iter() {
            if touched == budget {
                break;
            }
            if c < 8192 {
                // First column window only (W = 8192).
                #[allow(clippy::expect_used)] // coordinate comes from the triplet list
                delta
                    .push_revalue(r, c, v * 1.5)
                    .expect("revalue existing entry");
                touched += 1;
            }
        }
        #[allow(clippy::expect_used)] // delta revalues existing entries only
        let updated = delta.apply(&matrix).expect("apply delta");
        let fingerprint = matrix_fingerprint(&updated);
        if matches(replan_ids[0], filter) {
            let engine = ChasonEngine::default();
            let updated = updated.clone();
            out.push(Benchmark {
                id: replan_ids[0].to_string(),
                fingerprint,
                bytes_per_iter: 0,
                routine: Box::new(move || {
                    #[allow(clippy::expect_used)] // bench corpus fits the engines
                    black_box(engine.plan_with_threads(&updated, 1).expect("plan"));
                }),
            });
        }
        if matches(replan_ids[1], filter) {
            let engine = ChasonEngine::default();
            #[allow(clippy::expect_used)] // bench corpus fits the engines
            let base = engine.plan_with_threads(&matrix, 1).expect("plan");
            out.push(Benchmark {
                id: replan_ids[1].to_string(),
                fingerprint,
                bytes_per_iter: 0,
                routine: Box::new(move || {
                    // The clone mirrors a serving cache splicing a copy of
                    // the resident plan; it is part of the splice cost.
                    let mut spliced = base.clone();
                    #[allow(clippy::expect_used)] // delta matches the base plan
                    engine
                        .replan_delta(&mut spliced, &updated, &delta)
                        .expect("splice");
                    black_box(spliced);
                }),
            });
        }
    }

    // (e) CHSP codec round-trips on realistic payload sizes.
    let chsp_ids = ["chsp/request-spmv", "chsp/reply-vector"];
    if chsp_ids.iter().any(|id| matches(id, filter)) {
        let n = chsp_vector_len(profile);
        let values: Vec<f32> = (0..n).map(|i| (i as f32 * 0.13).sin()).collect();
        if matches(chsp_ids[0], filter) {
            let request = Request::Spmv {
                handle: 0x1234_5678_9abc_def0,
                engine: Engine::Chason,
                x: values.clone(),
            };
            let payload = encode_request(&request);
            let fingerprint = fnv1a(&payload);
            let bytes = payload.len() as u64 * 2; // encode + decode
            out.push(Benchmark {
                id: chsp_ids[0].to_string(),
                fingerprint,
                bytes_per_iter: bytes,
                routine: Box::new(move || {
                    let wire = encode_request(&request);
                    #[allow(clippy::expect_used)] // decoding our own encoder's output
                    black_box(decode_request(&wire).expect("decode request"));
                }),
            });
        }
        if matches(chsp_ids[1], filter) {
            let reply = Reply::Vector {
                y: values,
                service_micros: 42,
                simulated_nanos: 77,
            };
            let payload = encode_reply(&reply);
            let fingerprint = fnv1a(&payload);
            let bytes = payload.len() as u64 * 2;
            out.push(Benchmark {
                id: chsp_ids[1].to_string(),
                fingerprint,
                bytes_per_iter: bytes,
                routine: Box::new(move || {
                    let wire = encode_reply(&reply);
                    #[allow(clippy::expect_used)] // decoding our own encoder's output
                    black_box(decode_reply(&wire).expect("decode reply"));
                }),
            });
        }
    }

    // (f) Pipelined echo through the chason-net readiness loop on a real
    // loopback socket: one iteration writes `depth` frames back-to-back
    // and reads `depth` replies, so the depth sweep shows how much
    // per-round-trip latency pipelining amortises away.
    let net_ids = [
        ("net/echo-pipelined-d1", 1usize),
        ("net/echo-pipelined-d8", 8),
        ("net/echo-pipelined-d64", 64),
    ];
    if net_ids.iter().any(|(id, _)| matches(id, filter)) {
        struct Echo;
        impl Service for Echo {
            fn on_frame(&mut self, _conn: u64, _seq: u64, payload: Vec<u8>) -> FrameOutcome {
                FrameOutcome::Reply(payload)
            }
            fn on_oversized(&mut self, _conn: u64, _len: u64, _cap: u64) -> Option<Vec<u8>> {
                None
            }
        }
        let payload: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        let fingerprint = fnv1a(&payload);
        for (id, depth) in net_ids {
            if !matches(id, filter) {
                continue;
            }
            let registry = Registry::new();
            #[allow(clippy::expect_used)] // bench setup; loopback never fails here
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
            #[allow(clippy::expect_used)] // bench setup; loopback never fails here
            let server = NetServer::start(listener, NetConfig::default(), &registry, |_| Echo)
                .expect("start net server");
            #[allow(clippy::expect_used)] // bench setup; loopback never fails here
            let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
            #[allow(clippy::expect_used)] // bench setup; loopback never fails here
            stream.set_nodelay(true).expect("nodelay");
            let header = (payload.len() as u32).to_le_bytes();
            let payload = payload.clone();
            out.push(Benchmark {
                id: id.to_string(),
                fingerprint,
                // Each round trip moves the frame both ways.
                bytes_per_iter: (depth * (payload.len() + 4) * 2) as u64,
                routine: Box::new(move || {
                    // The server lives as long as the routine: the closure
                    // owns it, so the loop thread dies with the bench.
                    let _keep_alive = &server;
                    let mut burst = Vec::with_capacity(depth * (payload.len() + 4));
                    for _ in 0..depth {
                        burst.extend_from_slice(&header);
                        burst.extend_from_slice(&payload);
                    }
                    #[allow(clippy::expect_used)] // loopback echo round trip
                    stream.write_all(&burst).expect("write burst");
                    let mut reply = vec![0u8; payload.len() + 4];
                    for _ in 0..depth {
                        #[allow(clippy::expect_used)] // loopback echo round trip
                        stream.read_exact(&mut reply).expect("read reply");
                    }
                    black_box(&reply);
                }),
            });
        }
    }

    out
}

/// Runs every registered benchmark matching `filter` and returns the
/// measured results in registry order.
pub fn run_all(profile: &Profile, filter: Option<&str>) -> Vec<BenchResult> {
    benchmarks(profile, filter)
        .into_iter()
        .map(|mut bench| {
            let m = measure(profile, &mut *bench.routine);
            BenchResult {
                id: bench.id,
                fingerprint: bench.fingerprint,
                warmup_iters: m.warmup_iters,
                samples: m.samples,
                iters_per_sample: m.iters_per_sample,
                median_ns_per_iter: m.median_ns_per_iter,
                mad_ns_per_iter: m.mad_ns_per_iter,
                bytes_per_iter: bench.bytes_per_iter,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_six_groups() {
        let profile = Profile::smoke();
        let ids: Vec<String> = benchmarks(&profile, None)
            .iter()
            .map(|b| b.id.clone())
            .collect();
        for prefix in ["spmv/", "plan/", "replay/", "replan/", "chsp/", "net/"] {
            assert!(
                ids.iter().any(|id| id.starts_with(prefix)),
                "missing group {prefix} in {ids:?}"
            );
        }
        assert_eq!(ids.len(), 17);
    }

    #[test]
    fn replan_benchmarks_share_the_updated_fingerprint() {
        // Both replan benchmarks measure a path to the same updated
        // matrix's plan; the comparator relies on equal fingerprints to
        // know the inputs match.
        let profile = Profile::smoke();
        let benches = benchmarks(&profile, Some("replan/"));
        assert_eq!(benches.len(), 2);
        assert_eq!(benches[0].fingerprint, benches[1].fingerprint);
    }

    #[test]
    fn filter_prunes_construction() {
        let profile = Profile::smoke();
        let only_chsp = benchmarks(&profile, Some("chsp"));
        assert_eq!(only_chsp.len(), 2);
        assert!(only_chsp.iter().all(|b| b.id.starts_with("chsp/")));
        assert!(benchmarks(&profile, Some("no-such-bench")).is_empty());
    }
}
