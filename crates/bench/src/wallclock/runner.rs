//! Measurement loop: warmup, per-sample iteration calibration, and a
//! median + MAD summary per benchmark.
//!
//! Each benchmark is warmed up, then one timed calibration iteration sizes
//! `iters_per_sample` so a sample lasts roughly the profile's target; the
//! runner then takes `samples` timed batches and summarizes ns/iter with
//! the median (robust to scheduler hiccups) and the median absolute
//! deviation (the noise scale the comparator guards with).

use std::time::Instant;

/// Measurement effort. `smoke` keeps CI runs short; `full` is for
/// committed baselines and optimization before/after evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Profile name as recorded in the report.
    pub name: &'static str,
    /// Untimed iterations before calibration.
    pub warmup_iters: u64,
    /// Timed samples per benchmark.
    pub samples: u64,
    /// Target duration of one timed sample, in nanoseconds.
    pub target_sample_nanos: u64,
    /// Upper bound on iterations per sample (guards against free-running
    /// on sub-microsecond routines).
    pub max_iters_per_sample: u64,
}

impl Profile {
    /// Reduced effort for CI: 2 warmup iterations, 8 samples of ~2 ms.
    pub fn smoke() -> Self {
        Profile {
            name: "smoke",
            warmup_iters: 2,
            samples: 8,
            target_sample_nanos: 2_000_000,
            max_iters_per_sample: 10_000,
        }
    }

    /// Baseline effort: 5 warmup iterations, 30 samples of ~20 ms.
    pub fn full() -> Self {
        Profile {
            name: "full",
            warmup_iters: 5,
            samples: 30,
            target_sample_nanos: 20_000_000,
            max_iters_per_sample: 100_000,
        }
    }

    /// Resolves a profile by name.
    ///
    /// # Errors
    ///
    /// Lists the known profiles when `name` is not one of them.
    pub fn by_name(name: &str) -> Result<Self, String> {
        match name {
            "smoke" => Ok(Profile::smoke()),
            "full" => Ok(Profile::full()),
            other => Err(format!("unknown profile '{other}' (expected smoke|full)")),
        }
    }
}

/// The per-benchmark numbers the runner feeds into a
/// [`BenchResult`](super::report::BenchResult).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Untimed iterations executed (warmup + calibration).
    pub warmup_iters: u64,
    /// Timed samples taken.
    pub samples: u64,
    /// Iterations per timed sample after calibration.
    pub iters_per_sample: u64,
    /// Median ns/iter across the samples.
    pub median_ns_per_iter: f64,
    /// Median absolute deviation of ns/iter across the samples.
    pub mad_ns_per_iter: f64,
}

/// Runs `routine` under `profile` and summarizes its ns/iter.
pub fn measure<F: FnMut()>(profile: &Profile, mut routine: F) -> Measurement {
    for _ in 0..profile.warmup_iters {
        routine();
    }
    // One timed iteration sizes the sample batches; it also serves as one
    // more warmup pass.
    let start = Instant::now();
    routine();
    let once_nanos = (start.elapsed().as_nanos() as u64).max(1);
    let iters_per_sample =
        (profile.target_sample_nanos / once_nanos).clamp(1, profile.max_iters_per_sample);
    let mut per_iter: Vec<f64> = Vec::with_capacity(profile.samples as usize);
    for _ in 0..profile.samples {
        let start = Instant::now();
        for _ in 0..iters_per_sample {
            routine();
        }
        per_iter.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
    }
    let median = median(&mut per_iter);
    let mut deviations: Vec<f64> = per_iter.iter().map(|&v| (v - median).abs()).collect();
    let mad = self::median(&mut deviations);
    Measurement {
        warmup_iters: profile.warmup_iters + 1,
        samples: profile.samples,
        iters_per_sample,
        median_ns_per_iter: median,
        mad_ns_per_iter: mad,
    }
}

/// Median of `xs` (sorts in place; even counts average the middle pair).
/// Returns 0 for an empty slice.
pub fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn measure_produces_finite_nonzero_numbers() {
        let profile = Profile {
            name: "test",
            warmup_iters: 1,
            samples: 3,
            target_sample_nanos: 50_000,
            max_iters_per_sample: 100,
        };
        let mut acc = 0u64;
        let m = measure(&profile, || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(std::hint::black_box(i * i));
            }
        });
        assert!(m.median_ns_per_iter.is_finite());
        assert!(m.median_ns_per_iter > 0.0);
        assert!(m.mad_ns_per_iter.is_finite());
        assert_eq!(m.samples, 3);
        assert!((1..=100).contains(&m.iters_per_sample));
    }

    #[test]
    fn profiles_resolve_by_name() {
        assert_eq!(Profile::by_name("smoke").unwrap(), Profile::smoke());
        assert_eq!(Profile::by_name("full").unwrap(), Profile::full());
        assert!(Profile::by_name("quick").is_err());
    }
}
