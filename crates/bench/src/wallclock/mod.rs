//! Wall-clock benchmark harness with `BENCH_<name>.json` regression
//! tracking (DESIGN.md §11).
//!
//! The harness measures four hot paths — threaded SpMV kernels, engine
//! planning, plan replay, and CHSP codec round-trips — and emits a
//! machine-readable report a committed baseline is compared against. The
//! interactive criterion-shim benches under `benches/` remain for quick
//! local exploration; this module is the reproducible, file-backed path
//! CI gates on (`chason bench` / `cargo xtask bench`).

pub mod compare;
pub mod registry;
pub mod report;
pub mod runner;

use report::{BenchReport, HostInfo, SCHEMA_VERSION};
use runner::Profile;

/// Runs every registered benchmark matching `filter` under `profile` and
/// assembles the report named `name`.
pub fn run_report(name: &str, profile: &Profile, filter: Option<&str>) -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        name: name.to_string(),
        profile: profile.name.to_string(),
        host: HostInfo::current(),
        results: registry::run_all(profile, filter),
    }
}

/// Renders a report as an aligned human-readable table (the CLI prints
/// this next to the JSON file).
pub fn render_table(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "profile {} on {}/{} ({} cpus)\n",
        report.profile, report.host.os, report.host.arch, report.host.cpus
    ));
    out.push_str(&format!(
        "{:<22} {:>14} {:>12} {:>10} {:>9}\n",
        "benchmark", "median ns/iter", "mad ns", "GB/s", "iters"
    ));
    for r in &report.results {
        let gbps = r
            .throughput_gbps()
            .map_or("-".to_string(), |g| format!("{g:.3}"));
        out.push_str(&format!(
            "{:<22} {:>14.1} {:>12.1} {:>10} {:>9}\n",
            r.id,
            r.median_ns_per_iter,
            r.mad_ns_per_iter,
            gbps,
            r.samples * r.iters_per_sample
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use report::BenchResult;

    #[test]
    fn report_renders_every_result_row() {
        let report = BenchReport {
            schema_version: SCHEMA_VERSION,
            name: "t".to_string(),
            profile: "smoke".to_string(),
            host: HostInfo::current(),
            results: vec![BenchResult {
                id: "spmv/static-t1".to_string(),
                fingerprint: 1,
                warmup_iters: 1,
                samples: 2,
                iters_per_sample: 3,
                median_ns_per_iter: 1500.0,
                mad_ns_per_iter: 10.0,
                bytes_per_iter: 3000,
            }],
        };
        let table = render_table(&report);
        assert!(table.contains("spmv/static-t1"), "{table}");
        assert!(table.contains("2.000"), "GB/s column: {table}");
    }
}
