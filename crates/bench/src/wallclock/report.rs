//! The `BENCH_<name>.json` schema: emission and strict parsing.
//!
//! Reports are hand-emitted and hand-parsed (the workspace is offline;
//! there is no serde_json), following the same fixed-schema byte-parser
//! idiom as `chason_telemetry::trace`. The emitter writes one result
//! object per line inside the `results` array so committed baselines diff
//! cleanly, and the parser accepts exactly that layout. Floats use Rust's
//! shortest round-trip formatting, so `parse(to_json(r)) == r` holds
//! bit-exactly for finite values.

/// Version stamped into every report; bump when the schema changes shape.
pub const SCHEMA_VERSION: u64 = 1;

/// Machine identity recorded alongside the numbers, so a baseline from a
/// different host class is recognizable in review.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// `std::env::consts::OS` at run time.
    pub os: String,
    /// `std::env::consts::ARCH` at run time.
    pub arch: String,
    /// Logical CPUs visible to the process.
    pub cpus: u64,
}

impl HostInfo {
    /// Samples the current host.
    pub fn current() -> Self {
        HostInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
        }
    }
}

/// One benchmark's measured result.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Stable benchmark identifier, `group/case` (e.g. `spmv/static-t4`).
    pub id: String,
    /// FNV-1a fingerprint of the benchmark's input (matrix triplets or
    /// payload bytes), so a baseline measured on different data cannot be
    /// compared silently.
    pub fingerprint: u64,
    /// Untimed iterations executed before sampling started.
    pub warmup_iters: u64,
    /// Timed samples taken.
    pub samples: u64,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Median nanoseconds per iteration across the samples.
    pub median_ns_per_iter: f64,
    /// Median absolute deviation of ns/iter across the samples — the
    /// noise scale the regression comparator guards with.
    pub mad_ns_per_iter: f64,
    /// Bytes moved per iteration; `0` when throughput is not meaningful
    /// for this benchmark (e.g. planning).
    pub bytes_per_iter: u64,
}

impl BenchResult {
    /// Throughput in GB/s, when `bytes_per_iter` is meaningful.
    pub fn throughput_gbps(&self) -> Option<f64> {
        if self.bytes_per_iter == 0 || self.median_ns_per_iter <= 0.0 {
            None
        } else {
            Some(self.bytes_per_iter as f64 / self.median_ns_per_iter)
        }
    }
}

/// A full `BENCH_<name>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`] for reports this build writes).
    pub schema_version: u64,
    /// Report name: the `<name>` in `BENCH_<name>.json`.
    pub name: String,
    /// Measurement profile the run used (`smoke` or `full`).
    pub profile: String,
    /// Host the numbers were measured on.
    pub host: HostInfo,
    /// One entry per benchmark, in registry order.
    pub results: Vec<BenchResult>,
}

impl BenchReport {
    /// The file name this report is committed under.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Looks a result up by its stable id.
    pub fn get(&self, id: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.id == id)
    }

    /// Serializes the report; see the module docs for the layout.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema_version\":{},\"name\":\"{}\",\"profile\":\"{}\",",
            self.schema_version,
            escape(&self.name),
            escape(&self.profile)
        ));
        out.push_str(&format!(
            "\"host\":{{\"os\":\"{}\",\"arch\":\"{}\",\"cpus\":{}}},\"results\":[\n",
            escape(&self.host.os),
            escape(&self.host.arch),
            self.host.cpus
        ));
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                concat!(
                    "{{\"id\":\"{}\",\"fingerprint\":{},\"warmup_iters\":{},",
                    "\"samples\":{},\"iters_per_sample\":{},\"median_ns_per_iter\":{},",
                    "\"mad_ns_per_iter\":{},\"bytes_per_iter\":{}}}"
                ),
                escape(&r.id),
                r.fingerprint,
                r.warmup_iters,
                r.samples,
                r.iters_per_sample,
                fmt_f64(r.median_ns_per_iter),
                fmt_f64(r.mad_ns_per_iter),
                r.bytes_per_iter
            ));
        }
        out.push_str("\n]}\n");
        out
    }

    /// Parses a document produced by [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first deviation from
    /// the emitted schema, and rejects schema versions newer than this
    /// build understands.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let mut p = Parser::new(text);
        p.expect_str("{\"schema_version\":")?;
        let schema_version = p.parse_u64()?;
        if schema_version > SCHEMA_VERSION {
            return Err(format!(
                "report schema v{schema_version} is newer than this build (v{SCHEMA_VERSION})"
            ));
        }
        p.expect_str(",\"name\":")?;
        let name = p.parse_string()?;
        p.expect_str(",\"profile\":")?;
        let profile = p.parse_string()?;
        p.expect_str(",\"host\":{\"os\":")?;
        let os = p.parse_string()?;
        p.expect_str(",\"arch\":")?;
        let arch = p.parse_string()?;
        p.expect_str(",\"cpus\":")?;
        let cpus = p.parse_u64()?;
        p.expect_str("},\"results\":[")?;
        p.skip_newlines();
        let mut results = Vec::new();
        if p.peek() != Some(b']') {
            loop {
                results.push(p.parse_result()?);
                p.skip_newlines();
                match p.peek() {
                    Some(b',') => {
                        p.pos += 1;
                        p.skip_newlines();
                    }
                    _ => break,
                }
            }
        }
        p.expect_str("]}")?;
        p.skip_newlines();
        if !p.at_end() {
            return p.fail("trailing bytes after report object");
        }
        Ok(BenchReport {
            schema_version,
            name,
            profile,
            host: HostInfo { os, arch, cpus },
            results,
        })
    }
}

/// Formats a float with Rust's shortest round-trip representation;
/// non-finite values (which valid measurements never produce) are clamped
/// to 0 so the output stays parseable JSON.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("byte {}: {what}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Some(b'\n') | Some(b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_str(&mut self, s: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(())
        } else {
            self.fail(&format!("expected {s:?}"))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return self.fail("expected '\"'");
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.fail("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return self.fail("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|e| e.to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| format!("\\u: {e}"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        other => return self.fail(&format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number_text(&mut self) -> Result<&'a str, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return self.fail("expected a number");
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        let text = self.number_text()?;
        text.parse::<u64>().map_err(|e| format!("{text:?}: {e}"))
    }

    fn parse_f64(&mut self) -> Result<f64, String> {
        let text = self.number_text()?;
        text.parse::<f64>().map_err(|e| format!("{text:?}: {e}"))
    }

    fn parse_result(&mut self) -> Result<BenchResult, String> {
        self.expect_str("{\"id\":")?;
        let id = self.parse_string()?;
        self.expect_str(",\"fingerprint\":")?;
        let fingerprint = self.parse_u64()?;
        self.expect_str(",\"warmup_iters\":")?;
        let warmup_iters = self.parse_u64()?;
        self.expect_str(",\"samples\":")?;
        let samples = self.parse_u64()?;
        self.expect_str(",\"iters_per_sample\":")?;
        let iters_per_sample = self.parse_u64()?;
        self.expect_str(",\"median_ns_per_iter\":")?;
        let median_ns_per_iter = self.parse_f64()?;
        self.expect_str(",\"mad_ns_per_iter\":")?;
        let mad_ns_per_iter = self.parse_f64()?;
        self.expect_str(",\"bytes_per_iter\":")?;
        let bytes_per_iter = self.parse_u64()?;
        self.expect_str("}")?;
        Ok(BenchResult {
            id,
            fingerprint,
            warmup_iters,
            samples,
            iters_per_sample,
            median_ns_per_iter,
            mad_ns_per_iter,
            bytes_per_iter,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            name: "smoke".to_string(),
            profile: "smoke".to_string(),
            host: HostInfo {
                os: "linux".to_string(),
                arch: "x86_64".to_string(),
                cpus: 8,
            },
            results: vec![
                BenchResult {
                    id: "spmv/static-t4".to_string(),
                    fingerprint: 0xDEAD_BEEF,
                    warmup_iters: 3,
                    samples: 10,
                    iters_per_sample: 17,
                    median_ns_per_iter: 10_431.25,
                    mad_ns_per_iter: 12.5,
                    bytes_per_iter: 480_000,
                },
                BenchResult {
                    id: "plan/chason-t1".to_string(),
                    fingerprint: 7,
                    warmup_iters: 1,
                    samples: 5,
                    iters_per_sample: 1,
                    median_ns_per_iter: 2.25e6,
                    mad_ns_per_iter: 0.0,
                    bytes_per_iter: 0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample_report();
        let json = report.to_json();
        assert_eq!(BenchReport::parse(&json).unwrap(), report);
    }

    #[test]
    fn empty_results_round_trip() {
        let mut report = sample_report();
        report.results.clear();
        assert_eq!(BenchReport::parse(&report.to_json()).unwrap(), report);
    }

    #[test]
    fn throughput_is_none_when_not_meaningful() {
        let report = sample_report();
        assert!(report
            .get("plan/chason-t1")
            .unwrap()
            .throughput_gbps()
            .is_none());
        let gbps = report
            .get("spmv/static-t4")
            .unwrap()
            .throughput_gbps()
            .unwrap();
        assert!((gbps - 480_000.0 / 10_431.25).abs() < 1e-9);
    }

    #[test]
    fn newer_schema_is_rejected() {
        let json =
            sample_report()
                .to_json()
                .replacen("\"schema_version\":1", "\"schema_version\":999", 1);
        let err = BenchReport::parse(&json).unwrap_err();
        assert!(err.contains("newer"), "{err}");
    }

    #[test]
    fn garbage_is_rejected_with_offset() {
        assert!(BenchReport::parse("not json").is_err());
        let mut json = sample_report().to_json();
        json.push('x');
        let err = BenchReport::parse(&json).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }
}
