//! Table formatting, ASCII curve rendering and corpus sizing helpers shared
//! by the experiment binaries.

/// Number of corpus matrices to evaluate: `CHASON_CORPUS` env var, default
/// 800 (the paper's population).
pub fn corpus_size() -> usize {
    std::env::var("CHASON_CORPUS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(800)
}

/// Renders a table with left-aligned first column and right-aligned data
/// columns.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(
            row.len(),
            headers.len(),
            "table rows must match header width"
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i == 0 {
                line.push_str(&format!("{cell:<w$}"));
            } else {
                line.push_str(&format!("  {cell:>w$}"));
            }
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Renders a probability-density curve as ASCII bars, one bin per line:
/// `"<bin-centre>  <bar> <value>"`.
pub fn render_pdf(bin_lo: f64, bin_hi: f64, pdf: &[f64]) -> String {
    let max = pdf.iter().cloned().fold(0.0f64, f64::max);
    let width = (bin_hi - bin_lo) / pdf.len().max(1) as f64;
    let mut out = String::new();
    for (i, &p) in pdf.iter().enumerate() {
        let centre = bin_lo + (i as f64 + 0.5) * width;
        let bar_len = if max > 0.0 {
            (p / max * 50.0).round() as usize
        } else {
            0
        };
        out.push_str(&format!("{centre:7.1}  {} {p:.4}\n", "#".repeat(bar_len)));
    }
    out
}

/// Formats a float with engineering-friendly precision (3 significant-ish
/// decimals for small values, fewer for large).
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let s = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "match header width")]
    fn table_rejects_ragged_rows() {
        let _ = format_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn pdf_rendering_scales_bars() {
        let s = render_pdf(0.0, 100.0, &[0.1, 0.2]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].matches('#').count() > lines[0].matches('#').count());
    }

    #[test]
    fn fmt_precision_bands() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.1234), "0.123");
        assert_eq!(fmt(4.14159), "4.14");
        assert_eq!(fmt(301.0), "301");
    }

    #[test]
    fn corpus_size_defaults_to_800() {
        // The env var is not set under `cargo test`.
        if std::env::var("CHASON_CORPUS").is_err() {
            assert_eq!(corpus_size(), 800);
        }
    }
}
