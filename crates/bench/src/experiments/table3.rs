//! Table 3 — detailed per-matrix performance of Chasoň and Serpens:
//! latency, throughput, bandwidth efficiency, and energy efficiency.

use chason_hbm::HbmConfig;
use chason_sim::power::MeasuredPower;
use chason_sim::report::PerformanceReport;
use chason_sim::{AcceleratorConfig, ChasonEngine, SerpensEngine};
use chason_sparse::datasets::table2;
use serde::{Deserialize, Serialize};

/// One Table 3 row: both engines on one matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Dataset ID.
    pub id: String,
    /// Dataset name.
    pub name: String,
    /// Source collection.
    pub collection: String,
    /// Chasoň's derived metrics.
    pub chason: PerformanceReport,
    /// Serpens' derived metrics.
    pub serpens: PerformanceReport,
    /// Bandwidth-efficiency improvement factor.
    pub bandwidth_improvement: f64,
    /// Energy-efficiency improvement factor.
    pub energy_improvement: f64,
}

/// Result of the Table 3 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Result {
    /// Per-matrix rows in paper order.
    pub rows: Vec<Table3Row>,
}

/// Runs both engines over `limit` Table 2 matrices.
pub fn run(limit: usize) -> Table3Result {
    let chason = ChasonEngine::new(AcceleratorConfig::chason());
    let serpens = SerpensEngine::new(AcceleratorConfig::serpens());
    // Both designs stream matrix A over 16 channels at 14.37 GB/s each.
    let hbm = HbmConfig::alveo_u55c();
    let bandwidth = hbm.aggregate_bandwidth_gbps(16);
    let rows = table2()
        .into_iter()
        .take(limit)
        .map(|spec| {
            let matrix = spec.generate();
            let x = vec![1.0f32; matrix.cols()];
            #[allow(clippy::expect_used)] // catalog matrices fit the accelerator
            let ce = chason.run(&matrix, &x).expect("catalog matrices fit");
            #[allow(clippy::expect_used)] // catalog matrices fit the accelerator
            let se = serpens.run(&matrix, &x).expect("catalog matrices fit");
            let cr = PerformanceReport::from_execution(&ce, bandwidth, MeasuredPower::chason());
            let sr = PerformanceReport::from_execution(&se, bandwidth, MeasuredPower::serpens());
            Table3Row {
                id: spec.id.to_string(),
                name: spec.name.to_string(),
                collection: spec.collection.to_string(),
                bandwidth_improvement: if sr.bandwidth_efficiency > 0.0 {
                    cr.bandwidth_efficiency / sr.bandwidth_efficiency
                } else {
                    0.0
                },
                energy_improvement: cr.energy_gain_over(&sr),
                chason: cr,
                serpens: sr,
            }
        })
        .collect();
    Table3Result { rows }
}

/// Renders the paper-style table.
pub fn report(r: &Table3Result) -> String {
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                row.id.clone(),
                format!("{:.3}", row.chason.latency_ms),
                format!("{:.3}", row.serpens.latency_ms),
                format!("{:.2}", row.chason.throughput_gflops),
                format!("{:.2}", row.serpens.throughput_gflops),
                format!("{:.3}", row.chason.energy_efficiency),
                format!("{:.3}", row.serpens.energy_efficiency),
                format!("{:.2}x", row.energy_improvement),
            ]
        })
        .collect();
    let mut out = String::from(
        "Table 3 — detailed performance, Chason (C) vs Serpens (S)\n\
         (paper: chason ~0.33 GFLOPS/W vs serpens ~0.16, i.e. ~2x energy efficiency)\n\n",
    );
    out.push_str(&crate::util::format_table(
        &[
            "ID",
            "lat C (ms)",
            "lat S (ms)",
            "GFLOPS C",
            "GFLOPS S",
            "GF/W C",
            "GF/W S",
            "energy gain",
        ],
        &rows,
    ));
    let mean_c: f64 = r
        .rows
        .iter()
        .map(|x| x.chason.energy_efficiency)
        .sum::<f64>()
        / r.rows.len().max(1) as f64;
    let mean_s: f64 = r
        .rows
        .iter()
        .map(|x| x.serpens.energy_efficiency)
        .sum::<f64>()
        / r.rows.len().max(1) as f64;
    out.push_str(&format!(
        "\nmean energy efficiency: chason {mean_c:.3} GFLOPS/W, serpens {mean_s:.3} GFLOPS/W\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chason_dominates_on_catalog_prefix() {
        let r = run(2);
        for row in &r.rows {
            assert!(
                row.chason.latency_ms < row.serpens.latency_ms,
                "{}",
                row.name
            );
            assert!(row.chason.throughput_gflops > row.serpens.throughput_gflops);
            assert!(row.energy_improvement > 1.0);
        }
    }

    #[test]
    fn bandwidth_improvement_tracks_throughput_ratio() {
        let r = run(1);
        let row = &r.rows[0];
        let expected = row.chason.throughput_gflops / row.serpens.throughput_gflops;
        assert!((row.bandwidth_improvement - expected).abs() < 1e-9);
    }

    #[test]
    fn report_has_one_line_per_matrix() {
        let r = run(2);
        let s = report(&r);
        assert!(s.contains("DY"));
        assert!(s.contains("RE"));
    }
}
