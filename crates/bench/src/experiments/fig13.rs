//! Fig. 13 — average PE underutilization per PEG over the Table 2
//! matrices: the stall-fairness view.
//!
//! Paper reading: Serpens reaches ~95% on its worst PEGs; Chasoň lands at
//! 60–65% and, crucially, distributes the stalls *evenly* across the 16
//! PEGs (low spread).

use super::fig12::{self, Fig12Result};
use serde::{Deserialize, Serialize};

/// Result of the Fig. 13 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13Result {
    /// Average underutilization per PEG for Serpens (16 entries).
    pub serpens_avg_pct: Vec<f64>,
    /// Average underutilization per PEG for Chasoň (16 entries).
    pub chason_avg_pct: Vec<f64>,
    /// Max − min spread across PEGs for Serpens.
    pub serpens_spread: f64,
    /// Max − min spread across PEGs for Chasoň.
    pub chason_spread: f64,
}

/// Averages the Fig. 12 per-PEG vectors across matrices.
pub fn from_fig12(fig12: &Fig12Result) -> Fig13Result {
    let pegs = fig12.matrices.first().map_or(0, |m| m.serpens_pct.len());
    let n = fig12.matrices.len().max(1) as f64;
    let mut serpens = vec![0.0f64; pegs];
    let mut chason = vec![0.0f64; pegs];
    for m in &fig12.matrices {
        for (i, (&s, &c)) in m.serpens_pct.iter().zip(&m.chason_pct).enumerate() {
            serpens[i] += s / n;
            chason[i] += c / n;
        }
    }
    let spread = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - v.iter().cloned().fold(f64::INFINITY, f64::min)
        }
    };
    Fig13Result {
        serpens_spread: spread(&serpens),
        chason_spread: spread(&chason),
        serpens_avg_pct: serpens,
        chason_avg_pct: chason,
    }
}

/// Runs Fig. 12 over `limit` matrices and averages per PEG.
pub fn run(limit: usize) -> Fig13Result {
    from_fig12(&fig12::run(limit))
}

/// Renders the 16-row fairness table.
pub fn report(r: &Fig13Result) -> String {
    let rows: Vec<Vec<String>> = r
        .serpens_avg_pct
        .iter()
        .zip(&r.chason_avg_pct)
        .enumerate()
        .map(|(peg, (&s, &c))| vec![format!("PEG {peg}"), format!("{s:.1}%"), format!("{c:.1}%")])
        .collect();
    let mut out = String::from(
        "Fig. 13 — average PE underutilization per PEG (Table 2 matrices)\n\
         (paper: serpens up to ~95%; chason 60-65%, even across PEGs)\n\n",
    );
    out.push_str(&crate::util::format_table(
        &["PEG", "serpens", "chason"],
        &rows,
    ));
    out.push_str(&format!(
        "\nspread (max - min): serpens {:.1} pts, chason {:.1} pts\n",
        r.serpens_spread, r.chason_spread
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::super::fig12::MatrixPegs;
    use super::*;

    fn synthetic() -> Fig12Result {
        Fig12Result {
            matrices: vec![
                MatrixPegs {
                    id: "A".into(),
                    name: "a".into(),
                    serpens_pct: vec![90.0, 80.0],
                    chason_pct: vec![60.0, 62.0],
                },
                MatrixPegs {
                    id: "B".into(),
                    name: "b".into(),
                    serpens_pct: vec![70.0, 100.0],
                    chason_pct: vec![64.0, 62.0],
                },
            ],
        }
    }

    #[test]
    fn averaging_is_per_peg() {
        let r = from_fig12(&synthetic());
        assert_eq!(r.serpens_avg_pct, vec![80.0, 90.0]);
        assert_eq!(r.chason_avg_pct, vec![62.0, 62.0]);
        assert!((r.serpens_spread - 10.0).abs() < 1e-12);
        assert!(r.chason_spread < 1e-12);
    }

    #[test]
    fn chason_is_fairer_on_real_catalog_prefix() {
        let r = run(3);
        assert_eq!(r.serpens_avg_pct.len(), 16);
        let s_mean: f64 = r.serpens_avg_pct.iter().sum::<f64>() / 16.0;
        let c_mean: f64 = r.chason_avg_pct.iter().sum::<f64>() / 16.0;
        assert!(c_mean <= s_mean + 1e-9);
    }

    #[test]
    fn report_has_sixteen_peg_rows() {
        let s = report(&run(2));
        assert_eq!(
            s.lines()
                .filter(|l| l.starts_with("PEG ") && l.contains('%'))
                .count(),
            16
        );
    }
}
