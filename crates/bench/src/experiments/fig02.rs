//! Fig. 2 — PE0 timelines under the three scheduling schemes.
//!
//! The paper's worked example: a small matrix whose PE0 (channel 0) owns a
//! multi-entry row, scheduled row-based (Fig. 2a), PE-aware (Fig. 2b) and
//! with CrHCS (Fig. 2c). The paper quotes asymptotic figures of 0.10 / 0.60
//! / 1.0 non-zeros per cycle and 90% / 40% / 0% PE underutilization; the
//! reproduction must preserve the ordering and rough magnitudes.

use chason_core::metrics::ScheduleMetrics;
use chason_core::schedule::{
    Crhcs, PeAware, RowBased, ScheduledMatrix, Scheduler, SchedulerConfig,
};
use chason_sparse::CooMatrix;
use serde::{Deserialize, Serialize};

/// Result of the Fig. 2 experiment: one entry per scheduling scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig02Result {
    /// Metrics per scheduler, in paper order (2a, 2b, 2c).
    pub schemes: Vec<SchemeResult>,
}

/// Per-scheme metrics plus the PE0 timeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeResult {
    /// Scheduler name.
    pub name: String,
    /// Global schedule metrics.
    pub metrics: ScheduleMetrics,
    /// PE0-of-channel-0 timeline, one token per cycle (`r<row>` or `.`).
    pub pe0_timeline: Vec<String>,
    /// Non-zeros per cycle on PE0.
    pub pe0_nz_per_cycle: f64,
    /// PE0 underutilization in percent.
    pub pe0_underutilization_pct: f64,
}

/// The worked-example matrix: 2 channels × 4 PEs (8 total). PE0 of channel
/// 0 owns a RAW-chained row plus a few singleton rows; channel 1 is rich in
/// migratable values.
pub fn example_matrix() -> CooMatrix {
    let mut t: Vec<(usize, usize, f32)> = vec![
        // PE0 of channel 0 owns rows ≡ 0 (mod 8).
        // Row 0 carries a 3-deep RAW chain (the paper's r0_op1..op3).
        (0, 0, 1.0),
        (0, 1, 2.0),
        (0, 2, 3.0),
        // Rows 8 and 16 add two more single values (r8, r16 in the figure).
        (8, 0, 11.0),
        (16, 1, 21.0),
        // The other PEs of channel 0 (rows 1, 2, 3) hold one value each.
        (1, 0, 5.0),
        (2, 0, 6.0),
        (3, 0, 7.0),
    ];
    // Channel 1 (rows ≡ 4..7 mod 8) is densely populated: 16 singleton
    // rows, four per PE — the migration donor pool.
    for k in 0..16usize {
        let row = 4 + (k % 4) + 8 * (k / 4);
        t.push((row, k % 3, 100.0 + k as f32));
    }
    #[allow(clippy::expect_used)] // literal in-range triplets
    CooMatrix::from_triplets(32, 3, t).expect("example triplets are valid")
}

fn pe0_timeline(s: &ScheduledMatrix) -> (Vec<String>, f64, f64) {
    let cycles = s.stream_cycles();
    let grid = &s.channels[0].grid;
    let mut tokens = Vec::with_capacity(cycles);
    let mut busy = 0usize;
    for c in 0..cycles {
        match grid.get(c).and_then(|slots| slots[0]) {
            Some(nz) => {
                busy += 1;
                tokens.push(format!("r{}", nz.row));
            }
            None => tokens.push(".".to_string()),
        }
    }
    let nz_per_cycle = if cycles == 0 {
        0.0
    } else {
        busy as f64 / cycles as f64
    };
    let under = if cycles == 0 {
        0.0
    } else {
        100.0 * (1.0 - nz_per_cycle)
    };
    (tokens, nz_per_cycle, under)
}

/// Runs all three schedulers on the worked example.
pub fn run() -> Fig02Result {
    let config = SchedulerConfig::toy(2, 4, 10);
    let matrix = example_matrix();
    let mut schemes = Vec::new();
    type ScheduleFn<'a> = Box<dyn Fn() -> ScheduledMatrix + 'a>;
    let schedulers: Vec<(&str, ScheduleFn)> = vec![
        (
            "row-based (fig 2a)",
            Box::new(|| RowBased::new().schedule(&matrix, &config)),
        ),
        (
            "pe-aware (fig 2b)",
            Box::new(|| PeAware::new().schedule(&matrix, &config)),
        ),
        (
            "crhcs (fig 2c)",
            Box::new(|| Crhcs::new().schedule(&matrix, &config)),
        ),
    ];
    for (name, schedule) in schedulers {
        let s = schedule();
        #[allow(clippy::expect_used)] // experiment asserts the schedulers' own invariants
        s.validate(&matrix).expect("scheduler invariants hold");
        let (pe0_timeline, pe0_nz_per_cycle, pe0_underutilization_pct) = pe0_timeline(&s);
        schemes.push(SchemeResult {
            name: name.to_string(),
            metrics: ScheduleMetrics::from_schedule(name, &s),
            pe0_timeline,
            pe0_nz_per_cycle,
            pe0_underutilization_pct,
        });
    }
    Fig02Result { schemes }
}

/// Renders the paper-style summary.
pub fn report(result: &Fig02Result) -> String {
    let mut out = String::new();
    out.push_str("Fig. 2 — PE0 timelines under the three scheduling schemes\n");
    out.push_str(
        "(paper asymptotes: 0.10 / 0.60 / 1.0 nz/cycle; 90% / 40% / 0% underutilization)\n\n",
    );
    for s in &result.schemes {
        out.push_str(&format!(
            "{:22}  stream {:3} cycles | global underutil {:5.1}% | PE0: {:.2} nz/cycle, {:5.1}% idle\n",
            s.name,
            s.metrics.cycles,
            s.metrics.underutilization_pct,
            s.pe0_nz_per_cycle,
            s.pe0_underutilization_pct,
        ));
        out.push_str(&format!("    PE0 timeline: {}\n", s.pe0_timeline.join(" ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_the_paper() {
        let r = run();
        let [a, b, c] = &r.schemes[..] else {
            panic!("expected 3 schemes")
        };
        // Row-based is the slowest; CrHCS the fastest.
        assert!(a.metrics.cycles >= b.metrics.cycles);
        assert!(b.metrics.cycles >= c.metrics.cycles);
        assert!(a.pe0_nz_per_cycle < b.pe0_nz_per_cycle || a.metrics.cycles > b.metrics.cycles);
        assert!(
            c.metrics.underutilization_pct <= b.metrics.underutilization_pct,
            "crhcs {} vs pe-aware {}",
            c.metrics.underutilization_pct,
            b.metrics.underutilization_pct
        );
    }

    #[test]
    fn row_based_pe0_is_raw_bound() {
        let r = run();
        // Row 0's 3-value chain: values at cycles 0, 10, 20.
        let a = &r.schemes[0];
        assert_eq!(a.pe0_timeline[0], "r0");
        assert_eq!(a.pe0_timeline[10], "r0");
        assert_eq!(a.pe0_timeline[20], "r0");
        assert!(a.pe0_nz_per_cycle < 0.3);
    }

    #[test]
    fn crhcs_shortens_the_stream() {
        let r = run();
        assert!(
            r.schemes[2].metrics.cycles < r.schemes[1].metrics.cycles,
            "crhcs {} vs pe-aware {}",
            r.schemes[2].metrics.cycles,
            r.schemes[1].metrics.cycles
        );
    }

    #[test]
    fn report_mentions_every_scheme() {
        let s = report(&run());
        assert!(s.contains("row-based"));
        assert!(s.contains("pe-aware"));
        assert!(s.contains("crhcs"));
    }
}
