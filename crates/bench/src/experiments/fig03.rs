//! Fig. 3 — PDF of PE underutilization under PE-aware scheduling across
//! the synthetic SuiteSparse-scale corpus.
//!
//! The paper's finding: for most of the 800 matrices, PE-aware scheduling
//! leaves ≈70% of PE slots idle.

use chason_core::metrics::windowed_metrics;
use chason_core::schedule::{PeAware, SchedulerConfig};
use chason_sparse::datasets::corpus;
use chason_sparse::stats::{histogram, histogram_to_pdf};
use serde::{Deserialize, Serialize};

/// Result of the Fig. 3 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig03Result {
    /// Matrices evaluated.
    pub matrices: usize,
    /// Per-matrix PE underutilization percentages.
    pub underutilization_pct: Vec<f64>,
    /// PDF over 20 bins spanning 0..100%.
    pub pdf: Vec<f64>,
    /// Centre of the most likely bin (the paper reports ≈70%).
    pub mode_pct: f64,
    /// Fraction of matrices above 50% underutilization.
    pub share_above_50: f64,
}

/// Number of PDF bins (5%-wide over 0..100%).
pub const BINS: usize = 20;

/// Runs PE-aware scheduling over `count` corpus matrices.
pub fn run(count: usize, seed: u64) -> Fig03Result {
    run_specs(&corpus(count, seed))
}

/// Runs PE-aware scheduling over an explicit spec list.
pub fn run_specs(specs: &[chason_sparse::datasets::CorpusSpec]) -> Fig03Result {
    let config = SchedulerConfig::paper();
    let scheduler = PeAware::new();
    let mut values = Vec::with_capacity(specs.len());
    for spec in specs {
        let matrix = spec.generate();
        let metrics = windowed_metrics(&scheduler, &matrix, &config, chason_core::element::WINDOW);
        values.push(metrics.underutilization_pct());
    }
    summarize(values)
}

/// Builds the result from raw per-matrix percentages (exposed for tests).
pub fn summarize(underutilization_pct: Vec<f64>) -> Fig03Result {
    let counts = histogram(&underutilization_pct, 0.0, 100.0, BINS);
    let pdf = histogram_to_pdf(&counts, 0.0, 100.0);
    let mode_bin = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let above_50 = underutilization_pct.iter().filter(|&&v| v > 50.0).count();
    Fig03Result {
        matrices: underutilization_pct.len(),
        mode_pct: (mode_bin as f64 + 0.5) * (100.0 / BINS as f64),
        share_above_50: if underutilization_pct.is_empty() {
            0.0
        } else {
            above_50 as f64 / underutilization_pct.len() as f64
        },
        pdf,
        underutilization_pct,
    }
}

/// Renders the PDF curve and summary.
pub fn report(result: &Fig03Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 3 — PE-aware (Serpens) underutilization PDF over {} matrices\n",
        result.matrices
    ));
    out.push_str("(paper: mode ~70%, most matrices above 50%)\n\n");
    out.push_str("underutil%  density\n");
    out.push_str(&crate::util::render_pdf(0.0, 100.0, &result.pdf));
    out.push_str(&format!(
        "\nmode: {:.0}%   share above 50%: {:.1}%\n",
        result.mode_pct,
        result.share_above_50 * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_shows_heavy_stalling() {
        let specs: Vec<_> = corpus(12, 7)
            .into_iter()
            .filter(|s| s.nnz <= 60_000)
            .collect();
        let n = specs.len();
        let r = run_specs(&specs);
        assert_eq!(r.matrices, n);
        assert!(
            r.share_above_50 > 0.5,
            "most matrices should exceed 50% underutilization, got {}",
            r.share_above_50
        );
    }

    #[test]
    fn summarize_finds_the_mode() {
        let r = summarize(vec![68.0, 72.0, 71.0, 12.0]);
        assert!((r.mode_pct - 72.5).abs() < 5.1, "mode {}", r.mode_pct);
        assert_eq!(r.matrices, 4);
        assert!((r.share_above_50 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_graceful() {
        let r = summarize(vec![]);
        assert_eq!(r.matrices, 0);
        assert_eq!(r.share_above_50, 0.0);
    }

    #[test]
    fn report_renders_bins() {
        let s = report(&summarize(vec![70.0; 5]));
        assert!(s.contains("mode: 73%") || s.contains("mode: 72%"), "{s}");
    }
}
