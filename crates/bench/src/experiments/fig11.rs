//! Fig. 11 — PE underutilization of Chasoň vs Serpens over the corpus.
//!
//! Paper targets: Serpens' most likely underutilization ≈69% with range
//! 19–96%; Chasoň's distribution shifts to ≈30% with range 5–66% and most
//! matrices below 50%.

use chason_core::metrics::windowed_metrics;
use chason_core::schedule::{Crhcs, PeAware, SchedulerConfig};
use chason_sparse::datasets::corpus;
use chason_sparse::stats::{histogram, histogram_to_pdf};
use serde::{Deserialize, Serialize};

/// Distribution summary for one scheduler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Distribution {
    /// Scheduler name.
    pub name: String,
    /// Per-matrix underutilization percentages.
    pub values_pct: Vec<f64>,
    /// PDF over 20 bins spanning 0..100%.
    pub pdf: Vec<f64>,
    /// Minimum observed percentage.
    pub min_pct: f64,
    /// Maximum observed percentage.
    pub max_pct: f64,
    /// Median percentage.
    pub median_pct: f64,
    /// Centre of the most likely bin.
    pub mode_pct: f64,
}

impl Distribution {
    /// Builds the summary from raw percentages.
    pub fn from_values(name: &str, mut values: Vec<f64>) -> Self {
        let counts = histogram(&values, 0.0, 100.0, 20);
        let pdf = histogram_to_pdf(&counts, 0.0, 100.0);
        let mode_bin = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        #[allow(clippy::expect_used)] // simulated latencies are finite
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = if values.is_empty() {
            0.0
        } else {
            values[values.len() / 2]
        };
        Distribution {
            name: name.to_string(),
            min_pct: values.first().copied().unwrap_or(0.0),
            max_pct: values.last().copied().unwrap_or(0.0),
            median_pct: median,
            mode_pct: (mode_bin as f64 + 0.5) * 5.0,
            pdf,
            values_pct: values,
        }
    }
}

/// Result of the Fig. 11 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Result {
    /// Matrices evaluated.
    pub matrices: usize,
    /// Serpens (PE-aware) distribution.
    pub serpens: Distribution,
    /// Chasoň (CrHCS) distribution.
    pub chason: Distribution,
}

/// Runs both schedulers over `count` corpus matrices.
pub fn run(count: usize, seed: u64) -> Fig11Result {
    run_specs(&corpus(count, seed))
}

/// Runs both schedulers over an explicit spec list (tests use a filtered,
/// smaller population).
pub fn run_specs(specs: &[chason_sparse::datasets::CorpusSpec]) -> Fig11Result {
    let config = SchedulerConfig::paper();
    let window = chason_core::element::WINDOW;
    let mut serpens = Vec::with_capacity(specs.len());
    let mut chason = Vec::with_capacity(specs.len());
    for spec in specs {
        let matrix = spec.generate();
        serpens.push(
            windowed_metrics(&PeAware::new(), &matrix, &config, window).underutilization_pct(),
        );
        chason
            .push(windowed_metrics(&Crhcs::new(), &matrix, &config, window).underutilization_pct());
    }
    Fig11Result {
        matrices: specs.len(),
        serpens: Distribution::from_values("serpens (pe-aware)", serpens),
        chason: Distribution::from_values("chason (crhcs)", chason),
    }
}

/// Renders both PDFs and the range summary.
pub fn report(r: &Fig11Result) -> String {
    let mut out = format!(
        "Fig. 11 — PE underutilization over {} matrices (lower is better)\n\
         (paper: serpens mode ~69%, range 19-96%; chason ~30%, range 5-66%)\n",
        r.matrices
    );
    for d in [&r.serpens, &r.chason] {
        out.push_str(&format!(
            "\n{}: mode {:.0}%  median {:.1}%  range {:.1}%..{:.1}%\n",
            d.name, d.mode_pct, d.median_pct, d.min_pct, d.max_pct
        ));
        out.push_str(&crate::util::render_pdf(0.0, 100.0, &d.pdf));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_specs(count: usize, seed: u64) -> Vec<chason_sparse::datasets::CorpusSpec> {
        corpus(count, seed)
            .into_iter()
            .filter(|s| s.nnz <= 60_000)
            .collect()
    }

    #[test]
    fn chason_distribution_sits_left_of_serpens() {
        let r = run_specs(&small_specs(12, 3));
        assert!(
            r.chason.median_pct < r.serpens.median_pct,
            "chason median {} vs serpens {}",
            r.chason.median_pct,
            r.serpens.median_pct
        );
        assert!(r.chason.max_pct <= r.serpens.max_pct + 1e-9);
    }

    #[test]
    fn per_matrix_improvement_never_regresses() {
        let config = SchedulerConfig::paper();
        let window = chason_core::element::WINDOW;
        for spec in small_specs(6, 5) {
            let m = spec.generate();
            let s = windowed_metrics(&PeAware::new(), &m, &config, window).underutilization_pct();
            let c = windowed_metrics(&Crhcs::new(), &m, &config, window).underutilization_pct();
            assert!(
                c <= s + 1e-9,
                "matrix {}: chason {c} vs serpens {s}",
                spec.index
            );
        }
    }

    #[test]
    fn distribution_summary_statistics() {
        let d = Distribution::from_values("x", vec![10.0, 20.0, 30.0, 90.0]);
        assert_eq!(d.min_pct, 10.0);
        assert_eq!(d.max_pct, 90.0);
        assert_eq!(d.median_pct, 30.0);
    }
}
