//! Fig. 14 — Chasoň vs GPU/CPU baselines over the corpus: latency speedup
//! (top) and energy-efficiency gain (bottom).
//!
//! Paper targets: geomean speedups ≈4× (RTX 4090), ≈1.28× (RTX A6000),
//! <1 (i9); peak speedups 20.33× / 11.65× / 2.67×; peak energy-efficiency
//! gains 34.72× / 19.48× / 14.61×; peak throughputs 30.23 / 19.83 / 44.20
//! / 23.88 GFLOPS for Chasoň / 4090 / A6000 / i9.

use chason_baselines::cpu::core_i9_11980hk;
use chason_baselines::gpu::{rtx4090, rtx_a6000};
use chason_baselines::DeviceModel;
use chason_core::metrics::geometric_mean;
use chason_sim::power::MeasuredPower;
use chason_sim::{AcceleratorConfig, ChasonEngine};
use chason_sparse::datasets::corpus;
use serde::{Deserialize, Serialize};

/// Aggregate comparison against one baseline device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceComparison {
    /// Baseline device name.
    pub device: String,
    /// Geometric-mean latency speedup of Chasoň over the device.
    pub geomean_speedup: f64,
    /// Peak latency speedup.
    pub peak_speedup: f64,
    /// Geometric-mean energy-efficiency gain.
    pub geomean_energy_gain: f64,
    /// Peak energy-efficiency gain.
    pub peak_energy_gain: f64,
    /// Peak baseline throughput observed, in GFLOPS.
    pub peak_device_gflops: f64,
}

/// Result of the Fig. 14 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14Result {
    /// Matrices evaluated.
    pub matrices: usize,
    /// Peak Chasoň throughput observed, in GFLOPS.
    pub peak_chason_gflops: f64,
    /// One comparison per baseline device.
    pub devices: Vec<DeviceComparison>,
}

/// Runs Chasoň and the three device models over `count` corpus matrices.
pub fn run(count: usize, seed: u64) -> Fig14Result {
    run_specs(&corpus(count, seed))
}

/// Runs the comparison over an explicit spec list.
pub fn run_specs(specs: &[chason_sparse::datasets::CorpusSpec]) -> Fig14Result {
    let engine = ChasonEngine::new(AcceleratorConfig::chason());
    let chason_power = MeasuredPower::chason();
    let devices: Vec<DeviceModel> = vec![rtx4090(), rtx_a6000(), core_i9_11980hk()];
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); devices.len()];
    let mut energy_gains: Vec<Vec<f64>> = vec![Vec::new(); devices.len()];
    let mut peak_device = vec![0.0f64; devices.len()];
    let mut peak_chason = 0.0f64;
    let mut evaluated = 0usize;

    for spec in specs {
        let matrix = spec.generate();
        let x = vec![1.0f32; matrix.cols()];
        let exec = match engine.run(&matrix, &x) {
            Ok(e) => e,
            Err(_) => continue, // capacity-exceeded shapes are skipped
        };
        evaluated += 1;
        let chason_latency = exec.latency_seconds();
        let chason_gflops = exec.throughput_gflops();
        let chason_eff = chason_power.energy_efficiency(chason_gflops);
        peak_chason = peak_chason.max(chason_gflops);
        for (i, dev) in devices.iter().enumerate() {
            let p = dev.predict(matrix.rows(), matrix.cols(), matrix.nnz());
            speedups[i].push(p.latency_s / chason_latency);
            if p.energy_efficiency > 0.0 {
                energy_gains[i].push(chason_eff / p.energy_efficiency);
            }
            peak_device[i] = peak_device[i].max(p.throughput_gflops);
        }
    }

    let devices = devices
        .into_iter()
        .enumerate()
        .map(|(i, dev)| DeviceComparison {
            device: dev.name.to_string(),
            geomean_speedup: geometric_mean(&speedups[i]),
            peak_speedup: speedups[i].iter().cloned().fold(0.0, f64::max),
            geomean_energy_gain: geometric_mean(&energy_gains[i]),
            peak_energy_gain: energy_gains[i].iter().cloned().fold(0.0, f64::max),
            peak_device_gflops: peak_device[i],
        })
        .collect();

    Fig14Result {
        matrices: evaluated,
        peak_chason_gflops: peak_chason,
        devices,
    }
}

/// Renders the comparison table.
pub fn report(r: &Fig14Result) -> String {
    let rows: Vec<Vec<String>> = r
        .devices
        .iter()
        .map(|d| {
            vec![
                d.device.clone(),
                format!("{:.2}x", d.geomean_speedup),
                format!("{:.2}x", d.peak_speedup),
                format!("{:.2}x", d.geomean_energy_gain),
                format!("{:.2}x", d.peak_energy_gain),
                format!("{:.2}", d.peak_device_gflops),
            ]
        })
        .collect();
    let mut out = format!(
        "Fig. 14 — Chason vs GPU/CPU baselines over {} matrices\n\
         (paper: geomean speedup ~4x / ~1.28x / <1x; peaks 20.33x / 11.65x / 2.67x;\n\
          peak energy gains 34.72x / 19.48x / 14.61x)\n\n",
        r.matrices
    );
    out.push_str(&crate::util::format_table(
        &[
            "baseline",
            "gm speedup",
            "peak",
            "gm energy",
            "peak",
            "peak GFLOPS",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\npeak Chason throughput: {:.2} GFLOPS (paper: 30.23)\n",
        r.peak_chason_gflops
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_specs(count: usize, seed: u64) -> Vec<chason_sparse::datasets::CorpusSpec> {
        corpus(count, seed)
            .into_iter()
            .filter(|s| s.nnz <= 60_000)
            .collect()
    }

    #[test]
    fn shape_holds_on_a_small_corpus() {
        let r = run_specs(&small_specs(14, 11));
        assert!(r.matrices > 0);
        let g4090 = &r.devices[0];
        let a6000 = &r.devices[1];
        let i9 = &r.devices[2];
        // The 4090 is the weakest baseline, the i9 the strongest.
        assert!(
            g4090.geomean_speedup > a6000.geomean_speedup,
            "4090 {} vs A6000 {}",
            g4090.geomean_speedup,
            a6000.geomean_speedup
        );
        assert!(a6000.geomean_speedup > i9.geomean_speedup);
        // Chasoň beats the 4090 on average.
        assert!(g4090.geomean_speedup > 1.0);
        // Energy efficiency gains are large everywhere (39 W vs 65-132 W).
        for d in &r.devices {
            assert!(
                d.geomean_energy_gain > 1.0,
                "{}: {}",
                d.device,
                d.geomean_energy_gain
            );
        }
    }

    #[test]
    fn peak_speedup_exceeds_geomean() {
        let r = run_specs(&small_specs(10, 2));
        for d in &r.devices {
            assert!(d.peak_speedup >= d.geomean_speedup);
        }
    }

    #[test]
    fn report_mentions_all_devices() {
        let s = report(&run_specs(&small_specs(6, 1)));
        assert!(s.contains("RTX 4090"));
        assert!(s.contains("RTX A6000"));
        assert!(s.contains("i9-11980HK"));
    }
}
