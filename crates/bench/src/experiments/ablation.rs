//! Ablations over the design choices the paper calls out.
//!
//! * [`hops`] — §6.1: extending CrHCS's migration scope beyond the
//!   immediate next channel reduces residual underutilization at the cost
//!   of more `URAM_sh` banks per PE;
//! * [`dependency_distance`] — §2.2: the accumulator depth `D` is what
//!   creates RAW stalls in the first place (an RTL design with a shorter
//!   adder would stall less);
//! * [`scan_limit`] — §3.3: how far CrHCS searches past RAW-blocked
//!   candidates before leaving a stall in place;
//! * [`precision`] — §5.5: 64-bit values with 32-bit metadata fit only 5
//!   elements in a 512-bit beat, shrinking each PEG to 5 PEs.

use chason_core::metrics::windowed_metrics;
use chason_core::schedule::{Crhcs, PeAware, SchedulerConfig};
use chason_sim::resources::uram_count;
use chason_sparse::generators::{arrow_with_nnz, power_law};
use chason_sparse::permute::{degree_interleave, permute_rows, Permutation};
use chason_sparse::CooMatrix;
use serde::{Deserialize, Serialize};

/// One row of an ablation sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// The swept parameter's value.
    pub parameter: usize,
    /// Serpens (PE-aware) underutilization percent.
    pub serpens_pct: f64,
    /// Chasoň (CrHCS) underutilization percent.
    pub chason_pct: f64,
    /// Chasoň stream cycles.
    pub chason_cycles: usize,
    /// Secondary cost metric (URAMs for `hops`, migrated values for
    /// `scan_limit`, 0 otherwise).
    pub cost: u64,
}

/// A full ablation sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationResult {
    /// Name of the swept parameter.
    pub parameter_name: &'static str,
    /// Sweep rows in parameter order.
    pub rows: Vec<AblationRow>,
}

/// The skewed workload all ablations run on: an optimal-control-style
/// arrow matrix where migration matters.
pub fn workload(seed: u64) -> CooMatrix {
    arrow_with_nnz(4096, 4, 16, 80_000, seed)
}

fn measure(matrix: &CooMatrix, config: &SchedulerConfig) -> (f64, f64, usize, u64) {
    let window = chason_core::element::WINDOW;
    let s = windowed_metrics(&PeAware::new(), matrix, config, window);
    let c = windowed_metrics(&Crhcs::new(), matrix, config, window);
    let (schedule, report) = Crhcs::new().schedule_with_report(matrix, config);
    let _ = schedule;
    (
        s.underutilization_pct(),
        c.underutilization_pct(),
        c.stream_cycles,
        report.migrated as u64,
    )
}

/// §6.1: sweep the migration scope (ring hops).
pub fn hops(max_hops: usize, seed: u64) -> AblationResult {
    let matrix = workload(seed);
    let rows = (1..=max_hops)
        .map(|h| {
            let config = SchedulerConfig {
                migration_hops: h,
                ..SchedulerConfig::paper()
            };
            let (serpens_pct, chason_pct, chason_cycles, _) = measure(&matrix, &config);
            AblationRow {
                parameter: h,
                serpens_pct,
                chason_pct,
                chason_cycles,
                // One URAM_sh bank group per hop plus the private bank.
                cost: uram_count(16, 8, (3 * h) as u64),
            }
        })
        .collect();
    AblationResult {
        parameter_name: "migration hops",
        rows,
    }
}

/// §2.2: sweep the accumulator dependency distance `D`.
pub fn dependency_distance(values: &[usize], seed: u64) -> AblationResult {
    let matrix = workload(seed);
    let rows = values
        .iter()
        .map(|&d| {
            let config = SchedulerConfig {
                dependency_distance: d,
                ..SchedulerConfig::paper()
            };
            let (serpens_pct, chason_pct, chason_cycles, _) = measure(&matrix, &config);
            AblationRow {
                parameter: d,
                serpens_pct,
                chason_pct,
                chason_cycles,
                cost: 0,
            }
        })
        .collect();
    AblationResult {
        parameter_name: "dependency distance D",
        rows,
    }
}

/// §3.3: sweep CrHCS's candidate scan limit.
pub fn scan_limit(values: &[usize], seed: u64) -> AblationResult {
    let matrix = workload(seed);
    let rows = values
        .iter()
        .map(|&limit| {
            let config = SchedulerConfig {
                migration_scan_limit: limit,
                ..SchedulerConfig::paper()
            };
            let (serpens_pct, chason_pct, chason_cycles, migrated) = measure(&matrix, &config);
            AblationRow {
                parameter: limit,
                serpens_pct,
                chason_pct,
                chason_cycles,
                cost: migrated,
            }
        })
        .collect();
    AblationResult {
        parameter_name: "migration scan limit",
        rows,
    }
}

/// §5.5: data precision — FP32 (8 elements/beat, 8 PEs) vs FP64 + 32-bit
/// metadata (5 elements/beat, 5 PEs).
pub fn precision(seed: u64) -> AblationResult {
    let matrix = power_law(4096, 4096, 80_000, 1.6, seed);
    let rows = [(8usize, "fp32"), (5, "fp64")]
        .iter()
        .map(|&(pes, _)| {
            let config = SchedulerConfig {
                pes_per_channel: pes,
                ..SchedulerConfig::paper()
            };
            let (serpens_pct, chason_pct, chason_cycles, _) = measure(&matrix, &config);
            AblationRow {
                parameter: pes,
                serpens_pct,
                chason_pct,
                chason_cycles,
                cost: 0,
            }
        })
        .collect();
    AblationResult {
        parameter_name: "PEs per PEG (precision)",
        rows,
    }
}

/// Software-only alternative: static row reordering vs CrHCS.
///
/// Prior work (§7.1) reorders non-zeros in software instead of migrating
/// them in hardware. This sweep compares PE-aware scheduling on (0) the
/// natural row order, (1) a random shuffle, and (2) a degree-interleaved
/// balance, against CrHCS on the natural order. Static reordering narrows
/// the gap on load imbalance but cannot break a hub row's RAW chain —
/// which only cross-channel migration does.
pub fn row_order(seed: u64) -> AblationResult {
    let matrix = workload(seed);
    let config = SchedulerConfig::paper();
    let window = chason_core::element::WINDOW;
    let orders: [(&str, CooMatrix); 3] = [
        ("natural", matrix.clone()),
        (
            "shuffled",
            permute_rows(&matrix, &Permutation::random(matrix.rows(), seed ^ 0xA5)),
        ),
        (
            "interleaved",
            permute_rows(&matrix, &degree_interleave(&matrix, config.total_pes())),
        ),
    ];
    let rows = orders
        .iter()
        .enumerate()
        .map(|(i, (_, m))| {
            let s = windowed_metrics(&PeAware::new(), m, &config, window);
            let c = windowed_metrics(&Crhcs::new(), m, &config, window);
            AblationRow {
                parameter: i,
                serpens_pct: s.underutilization_pct(),
                chason_pct: c.underutilization_pct(),
                chason_cycles: c.stream_cycles,
                cost: s.stream_cycles as u64,
            }
        })
        .collect();
    AblationResult {
        parameter_name: "row order (0 natural, 1 shuffled, 2 interleaved)",
        rows,
    }
}

/// Renders a sweep table.
pub fn report(r: &AblationResult) -> String {
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                row.parameter.to_string(),
                format!("{:.1}%", row.serpens_pct),
                format!("{:.1}%", row.chason_pct),
                row.chason_cycles.to_string(),
                row.cost.to_string(),
            ]
        })
        .collect();
    let mut out = format!("Ablation — {}\n\n", r.parameter_name);
    out.push_str(&crate::util::format_table(
        &[r.parameter_name, "serpens", "chason", "cycles", "cost"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_hops_never_hurt() {
        let r = hops(3, 5);
        assert_eq!(r.rows.len(), 3);
        for pair in r.rows.windows(2) {
            // The per-pass quota split is a heuristic: improvement is
            // near-monotone, within a small tolerance.
            assert!(
                pair[1].chason_pct <= pair[0].chason_pct + 1.0,
                "hops {} -> {} raised underutilization {} -> {}",
                pair[0].parameter,
                pair[1].parameter,
                pair[0].chason_pct,
                pair[1].chason_pct
            );
            assert!(pair[1].cost > pair[0].cost, "more hops must cost more URAM");
        }
        // The extended scope must show a real gain somewhere (§6.1).
        assert!(
            r.rows.last().unwrap().chason_pct < r.rows[0].chason_pct - 1.0,
            "hops 3 ({}) should beat hops 1 ({})",
            r.rows.last().unwrap().chason_pct,
            r.rows[0].chason_pct
        );
        // Serpens is hop-independent.
        let s0 = r.rows[0].serpens_pct;
        assert!(r.rows.iter().all(|row| (row.serpens_pct - s0).abs() < 1e-9));
    }

    #[test]
    fn shorter_distance_reduces_stalls() {
        let r = dependency_distance(&[1, 10], 7);
        assert!(r.rows[0].serpens_pct <= r.rows[1].serpens_pct);
        assert!(r.rows[0].chason_pct <= r.rows[1].chason_pct + 1e-9);
    }

    #[test]
    fn tiny_scan_limit_migrates_less() {
        let r = scan_limit(&[1, 256], 3);
        assert!(
            r.rows[0].cost <= r.rows[1].cost,
            "limit 1 migrated {} vs limit 256 {}",
            r.rows[0].cost,
            r.rows[1].cost
        );
        assert!(r.rows[1].chason_pct <= r.rows[0].chason_pct + 1e-9);
    }

    #[test]
    fn static_reordering_cannot_replace_migration() {
        let r = row_order(5);
        assert_eq!(r.rows.len(), 3);
        // CrHCS on the natural order beats PE-aware under *every* static
        // reorder: the hub rows' RAW chains survive any permutation.
        let crhcs_natural = r.rows[0].chason_pct;
        for row in &r.rows {
            assert!(
                crhcs_natural < row.serpens_pct,
                "crhcs ({crhcs_natural}) should beat pe-aware on order {} ({})",
                row.parameter,
                row.serpens_pct
            );
        }
    }

    #[test]
    fn fp64_config_is_valid_and_reported() {
        let r = precision(9);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].parameter, 8);
        assert_eq!(r.rows[1].parameter, 5);
    }

    #[test]
    fn report_renders_all_rows() {
        let s = report(&dependency_distance(&[1, 5, 10], 2));
        assert!(s.lines().count() >= 6, "{s}");
    }
}
