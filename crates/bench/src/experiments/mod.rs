//! One module per reproduced table/figure. Every experiment exposes a pure
//! `run(...)` returning a structured result plus a `report(...)` renderer
//! used by the corresponding binary; see `DESIGN.md` §4 for the index.

pub mod ablation;
pub mod fig02;
pub mod fig03;
pub mod fig05;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod table1;
pub mod table2;
pub mod table3;
