//! Table 1 — Alveo U55c resource consumption for Chasoň and Serpens.

use chason_sim::resources::{DeviceCapacity, ResourceConfig, ResourceUsage};
use serde::{Deserialize, Serialize};

/// Result of the Table 1 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// `(resource, serpens_used, serpens_pct, chason_used, chason_pct)`.
    pub rows: Vec<(String, u64, f64, u64, f64)>,
}

/// Computes both designs' resource estimates.
pub fn run() -> Table1Result {
    let device = DeviceCapacity::alveo_u55c();
    let serpens = ResourceUsage::estimate(&ResourceConfig::serpens());
    let chason = ResourceUsage::estimate(&ResourceConfig::chason());
    let s_pct = serpens.utilization_pct(&device);
    let c_pct = chason.utilization_pct(&device);
    let used = |u: &ResourceUsage| [u.lut, u.ff, u.dsp, u.bram18k, u.uram];
    let s_used = used(&serpens);
    let c_used = used(&chason);
    let rows = s_pct
        .iter()
        .zip(&c_pct)
        .enumerate()
        .map(|(i, (&(name, sp), &(_, cp)))| (name.to_string(), s_used[i], sp, c_used[i], cp))
        .collect();
    Table1Result { rows }
}

/// Renders the paper-style table.
pub fn report(r: &Table1Result) -> String {
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|(name, su, sp, cu, cp)| {
            vec![
                name.clone(),
                format!("{su} ({sp:.1}%)"),
                format!("{cu} ({cp:.1}%)"),
            ]
        })
        .collect();
    let mut out = String::from(
        "Table 1 — Alveo U55c resource consumption\n\
         (paper: Serpens 219K LUT/384 URAM; Chason 346K LUT/512 URAM)\n\n",
    );
    out.push_str(&crate::util::format_table(
        &["resource", "Serpens", "Chason"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_columns_match_table1() {
        let r = run();
        let uram = r.rows.iter().find(|(n, ..)| n == "URAM").unwrap();
        assert_eq!(uram.1, 384);
        assert_eq!(uram.3, 512);
        let bram = r.rows.iter().find(|(n, ..)| n == "BRAM18K").unwrap();
        assert_eq!(bram.1, bram.3, "BRAM identical between designs");
    }

    #[test]
    fn chason_uses_more_of_everything_but_bram() {
        let r = run();
        for (name, su, _, cu, _) in &r.rows {
            if name == "BRAM18K" {
                assert_eq!(su, cu);
            } else {
                assert!(cu > su, "{name}: chason {cu} should exceed serpens {su}");
            }
        }
    }

    #[test]
    fn report_renders_five_rows() {
        let s = report(&run());
        assert_eq!(s.lines().filter(|l| l.contains('%')).count(), 5);
    }
}
