//! Fig. 12 — per-PEG underutilization distributions for the 20 Table 2
//! matrices, Chasoň vs Serpens.
//!
//! Paper reading: Serpens' per-PEG underutilization concentrates high
//! (80–100% for most of these matrices); Chasoň's curves shift left and
//! widen, showing the stalls being rebalanced across PEGs.

use chason_core::metrics::windowed_metrics;
use chason_core::schedule::{Crhcs, PeAware, SchedulerConfig};
use chason_sparse::datasets::table2;
use serde::{Deserialize, Serialize};

/// Per-matrix, per-scheduler PEG underutilization vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixPegs {
    /// Dataset ID (Table 2).
    pub id: String,
    /// Dataset name.
    pub name: String,
    /// Serpens per-PEG underutilization % (16 entries).
    pub serpens_pct: Vec<f64>,
    /// Chasoň per-PEG underutilization % (16 entries).
    pub chason_pct: Vec<f64>,
}

impl MatrixPegs {
    /// `(min, mean, max)` of a PEG vector.
    pub fn summary(values: &[f64]) -> (f64, f64, f64) {
        if values.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        (min, mean, max)
    }
}

/// Result of the Fig. 12 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Result {
    /// One entry per Table 2 matrix, in paper order.
    pub matrices: Vec<MatrixPegs>,
}

/// Computes per-PEG underutilization for `limit` Table 2 matrices (pass 20
/// for the full figure; tests use fewer).
pub fn run(limit: usize) -> Fig12Result {
    let config = SchedulerConfig::paper();
    let window = chason_core::element::WINDOW;
    let matrices = table2()
        .into_iter()
        .take(limit)
        .map(|spec| {
            let m = spec.generate();
            let s = windowed_metrics(&PeAware::new(), &m, &config, window);
            let c = windowed_metrics(&Crhcs::new(), &m, &config, window);
            MatrixPegs {
                id: spec.id.to_string(),
                name: spec.name.to_string(),
                serpens_pct: s.per_peg_underutilization_pct(),
                chason_pct: c.per_peg_underutilization_pct(),
            }
        })
        .collect();
    Fig12Result { matrices }
}

/// Renders min/mean/max per matrix.
pub fn report(r: &Fig12Result) -> String {
    let rows: Vec<Vec<String>> = r
        .matrices
        .iter()
        .map(|m| {
            let (smin, smean, smax) = MatrixPegs::summary(&m.serpens_pct);
            let (cmin, cmean, cmax) = MatrixPegs::summary(&m.chason_pct);
            vec![
                format!("{} {}", m.id, m.name),
                format!("{smin:.0}/{smean:.0}/{smax:.0}"),
                format!("{cmin:.0}/{cmean:.0}/{cmax:.0}"),
            ]
        })
        .collect();
    let mut out = String::from(
        "Fig. 12 — per-PEG underutilization %% (min/mean/max over 16 PEGs)\n\
         (paper: serpens concentrates at 80-100%; chason shifts left)\n\n",
    );
    out.push_str(&crate::util::format_table(
        &["dataset", "serpens", "chason"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chason_means_are_lower() {
        let r = run(3);
        for m in &r.matrices {
            let (_, smean, _) = MatrixPegs::summary(&m.serpens_pct);
            let (_, cmean, _) = MatrixPegs::summary(&m.chason_pct);
            assert!(
                cmean <= smean + 1e-9,
                "{}: chason mean {cmean} vs serpens {smean}",
                m.name
            );
        }
    }

    #[test]
    fn sixteen_pegs_per_matrix() {
        let r = run(2);
        for m in &r.matrices {
            assert_eq!(m.serpens_pct.len(), 16);
            assert_eq!(m.chason_pct.len(), 16);
        }
    }

    #[test]
    fn summary_math() {
        let (min, mean, max) = MatrixPegs::summary(&[10.0, 20.0, 30.0]);
        assert_eq!((min, mean, max), (10.0, 20.0, 30.0));
        assert_eq!(MatrixPegs::summary(&[]), (0.0, 0.0, 0.0));
    }
}
