//! Fig. 5 — the CrHCS worked example: 3 channels × 4 PEs, no RAW pressure.
//!
//! The paper's walkthrough starts from a PE-aware schedule with 19 stalls
//! in 36 slots (52% underutilization, 3 cycles) and ends, after ring
//! migration, at 7 stalls in 24 slots (29%, 2 cycles).

use chason_core::schedule::{Crhcs, PeAware, Scheduler, SchedulerConfig};
use chason_sparse::CooMatrix;
use serde::{Deserialize, Serialize};

/// Result of the Fig. 5 walkthrough.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig05Result {
    /// PE-aware stream length in cycles (paper: 3).
    pub cycles_before: usize,
    /// PE-aware stall count including synchronization padding (paper: 19).
    pub stalls_before: usize,
    /// PE-aware underutilization percent (paper: 52%).
    pub underutilization_before_pct: f64,
    /// CrHCS stream length in cycles (paper: 2).
    pub cycles_after: usize,
    /// CrHCS stall count (paper: 7).
    pub stalls_after: usize,
    /// CrHCS underutilization percent (paper: 29%).
    pub underutilization_after_pct: f64,
    /// Values migrated across channels.
    pub migrated: usize,
}

/// The Fig. 5 configuration: 3 channels × 4 PEs, dependency distance 1
/// (the example assumes no RAW constraints among migrated data).
pub fn config() -> SchedulerConfig {
    SchedulerConfig::toy(3, 4, 1)
}

/// The Fig. 5 matrix: 17 non-zeros distributed so PE-aware scheduling
/// produces per-lane populations of `[3,1,2,1] / [2,1,1,1] / [2,1,1,1]`
/// across the three channels — 19 stalls in 36 slots.
pub fn example_matrix() -> CooMatrix {
    // Lane populations per channel (total PEs = 12; row `k*12 + ch*4 + lane`
    // is the k-th row owned by (channel ch, lane)).
    let populations: [[usize; 4]; 3] = [[3, 1, 2, 1], [2, 1, 1, 1], [2, 1, 1, 1]];
    let mut t = Vec::new();
    let mut value = 1.0f32;
    for (ch, lanes) in populations.iter().enumerate() {
        for (lane, &count) in lanes.iter().enumerate() {
            for k in 0..count {
                // One value per row: singleton rows, so D = 1 never binds.
                let row = k * 12 + ch * 4 + lane;
                t.push((row, k, value));
                value += 1.0;
            }
        }
    }
    #[allow(clippy::expect_used)] // literal in-range triplets
    CooMatrix::from_triplets(36, 3, t).expect("example triplets are valid")
}

/// Runs the walkthrough.
pub fn run() -> Fig05Result {
    let config = config();
    let matrix = example_matrix();
    let before = PeAware::new().schedule(&matrix, &config);
    #[allow(clippy::expect_used)] // experiment asserts the schedulers' own invariants
    before.validate(&matrix).expect("pe-aware invariants");
    let (after, report) = Crhcs::new().schedule_with_report(&matrix, &config);
    #[allow(clippy::expect_used)] // experiment asserts the schedulers' own invariants
    after.validate(&matrix).expect("crhcs invariants");
    Fig05Result {
        cycles_before: before.stream_cycles(),
        stalls_before: before.stalls(),
        underutilization_before_pct: before.underutilization() * 100.0,
        cycles_after: after.stream_cycles(),
        stalls_after: after.stalls(),
        underutilization_after_pct: after.underutilization() * 100.0,
        migrated: report.migrated,
    }
}

/// Renders the walkthrough summary plus the actual schedule grids
/// (the reproduction's version of Fig. 5's panels).
pub fn report_with_grids() -> String {
    let config = config();
    let matrix = example_matrix();
    let before = PeAware::new().schedule(&matrix, &config);
    let after = Crhcs::new().schedule(&matrix, &config);
    let mut out = report(&run());
    out.push_str("\npe-aware schedule:\n");
    out.push_str(&chason_core::viz::render_schedule(&before));
    out.push_str("\ncrhcs schedule:\n");
    out.push_str(&chason_core::viz::render_schedule(&after));
    out
}

/// Renders the walkthrough summary.
pub fn report(r: &Fig05Result) -> String {
    format!(
        "Fig. 5 — CrHCS walkthrough (3 channels x 4 PEs, 17 non-zeros)\n\
         (paper: 19/36 = 52% -> 7/24 = 29%, 3 cycles -> 2 cycles)\n\n\
         pe-aware : {} cycles, {} stalls, {:.0}% underutilization\n\
         crhcs    : {} cycles, {} stalls, {:.0}% underutilization ({} values migrated)\n",
        r.cycles_before,
        r.stalls_before,
        r.underutilization_before_pct,
        r.cycles_after,
        r.stalls_after,
        r.underutilization_after_pct,
        r.migrated,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn before_matches_the_paper_exactly() {
        let r = run();
        assert_eq!(r.cycles_before, 3);
        assert_eq!(r.stalls_before, 19);
        assert!((r.underutilization_before_pct - 52.0).abs() < 1.0);
    }

    #[test]
    fn after_matches_the_paper_exactly() {
        let r = run();
        assert_eq!(r.cycles_after, 2, "paper compacts the example to 2 cycles");
        assert_eq!(r.stalls_after, 7);
        assert!((r.underutilization_after_pct - 29.17).abs() < 0.5);
        assert!(r.migrated >= 1);
    }

    #[test]
    fn report_quotes_both_states() {
        let s = report(&run());
        assert!(s.contains("52%"));
        assert!(s.contains("29%"));
    }
}
