//! Fig. 10 — power distribution of Chasoň on the Alveo U55c.

use chason_sim::power::{MeasuredPower, PowerBreakdown};
use serde::{Deserialize, Serialize};

/// Result of the Fig. 10 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Result {
    /// `(component, watts, share%)` rows in legend order.
    pub components: Vec<(String, f64, f64)>,
    /// Estimated total power (paper: 48.715 W).
    pub total_w: f64,
    /// Measured wall power while running experiments (paper: ≈39 W).
    pub measured_chason_w: f64,
    /// Serpens' measured wall power (paper: ≈36 W).
    pub measured_serpens_w: f64,
}

/// Builds the power distribution.
pub fn run() -> Fig10Result {
    let p = PowerBreakdown::chason_estimated();
    let total = p.total();
    Fig10Result {
        components: p
            .components()
            .into_iter()
            .map(|(name, w)| (name.to_string(), w, 100.0 * p.share(w)))
            .collect(),
        total_w: total,
        measured_chason_w: MeasuredPower::chason().watts,
        measured_serpens_w: MeasuredPower::serpens().watts,
    }
}

/// Renders the distribution table.
pub fn report(r: &Fig10Result) -> String {
    let rows: Vec<Vec<String>> = r
        .components
        .iter()
        .map(|(name, w, pct)| vec![name.clone(), format!("{w:.3}"), format!("{pct:.1}%")])
        .collect();
    let mut out = String::from(
        "Fig. 10 — power distribution of Chason on the Alveo U55c\n\
         (paper: ~48.7 W estimated total; HBM dominant; logic ~8%)\n\n",
    );
    out.push_str(&crate::util::format_table(
        &["component", "watts", "share"],
        &rows,
    ));
    out.push_str(&format!(
        "\nestimated total: {:.3} W | measured while running: chason {:.0} W, serpens {:.0} W\n",
        r.total_w, r.measured_chason_w, r.measured_serpens_w
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_dominance() {
        let r = run();
        assert!((r.total_w - 48.625).abs() < 0.01);
        let hbm = r.components.iter().find(|(n, _, _)| n == "HBM").unwrap();
        let max = r
            .components
            .iter()
            .map(|(_, w, _)| *w)
            .fold(0.0f64, f64::max);
        assert_eq!(hbm.1, max, "HBM draws the most power");
    }

    #[test]
    fn shares_sum_to_100() {
        let r = run();
        let sum: f64 = r.components.iter().map(|(_, _, pct)| pct).sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn report_lists_all_nine_components() {
        let s = report(&run());
        for name in [
            "Static", "Clocks", "Signals", "Logic", "BRAM", "URAM", "DSP", "GTY", "HBM",
        ] {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
