//! Fig. 15 — speedup and data-transfer reduction over Serpens for the
//! Table 2 matrices.
//!
//! Paper targets: geometric-mean latency speedup ≈6.1× (SuiteSparse) and
//! ≈4.1× (SNAP), peak 8.4×; data-transfer reduction ≈7× on average for
//! both collections.

use chason_core::metrics::geometric_mean;
use chason_sim::{AcceleratorConfig, ChasonEngine, SerpensEngine};
use chason_sparse::datasets::{table2, Collection};
use serde::{Deserialize, Serialize};

/// Per-matrix comparison row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig15Row {
    /// Dataset ID.
    pub id: String,
    /// Dataset name.
    pub name: String,
    /// Source collection.
    pub collection: String,
    /// Latency speedup of Chasoň over Serpens.
    pub speedup: f64,
    /// Data-transfer reduction (Serpens bytes / Chasoň bytes).
    pub transfer_reduction: f64,
}

/// Result of the Fig. 15 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig15Result {
    /// Per-matrix rows in paper order.
    pub rows: Vec<Fig15Row>,
    /// Geomean speedup over the SuiteSparse half.
    pub geomean_speedup_suitesparse: f64,
    /// Geomean speedup over the SNAP half.
    pub geomean_speedup_snap: f64,
    /// Geomean transfer reduction over the SuiteSparse half.
    pub geomean_transfer_suitesparse: f64,
    /// Geomean transfer reduction over the SNAP half.
    pub geomean_transfer_snap: f64,
    /// Peak speedup across all matrices.
    pub peak_speedup: f64,
}

/// Runs both engines over `limit` Table 2 matrices (20 = the full figure).
pub fn run(limit: usize) -> Fig15Result {
    let chason = ChasonEngine::new(AcceleratorConfig::chason());
    let serpens = SerpensEngine::new(AcceleratorConfig::serpens());
    let mut rows = Vec::new();
    for spec in table2().into_iter().take(limit) {
        let matrix = spec.generate();
        let x = vec![1.0f32; matrix.cols()];
        let ce = chason.run(&matrix, &x);
        #[allow(clippy::expect_used)] // catalog matrices fit the accelerator
        let ce = ce.expect("catalog matrices fit the accelerator");
        let se = serpens.run(&matrix, &x);
        #[allow(clippy::expect_used)] // catalog matrices fit the accelerator
        let se = se.expect("catalog matrices fit the accelerator");
        rows.push(Fig15Row {
            id: spec.id.to_string(),
            name: spec.name.to_string(),
            collection: spec.collection.to_string(),
            speedup: se.latency_seconds() / ce.latency_seconds(),
            transfer_reduction: se.bytes_streamed as f64 / ce.bytes_streamed.max(1) as f64,
        });
    }
    summarize(rows)
}

/// Aggregates per-matrix rows into the figure's summary statistics.
pub fn summarize(rows: Vec<Fig15Row>) -> Fig15Result {
    let of = |collection: &str, f: fn(&Fig15Row) -> f64| -> Vec<f64> {
        rows.iter()
            .filter(|r| r.collection == collection)
            .map(f)
            .collect()
    };
    let ss = Collection::SuiteSparse.to_string();
    let snap = Collection::Snap.to_string();
    Fig15Result {
        geomean_speedup_suitesparse: geometric_mean(&of(&ss, |r| r.speedup)),
        geomean_speedup_snap: geometric_mean(&of(&snap, |r| r.speedup)),
        geomean_transfer_suitesparse: geometric_mean(&of(&ss, |r| r.transfer_reduction)),
        geomean_transfer_snap: geometric_mean(&of(&snap, |r| r.transfer_reduction)),
        peak_speedup: rows.iter().map(|r| r.speedup).fold(0.0, f64::max),
        rows,
    }
}

/// Renders the per-matrix table and the geomeans.
pub fn report(r: &Fig15Result) -> String {
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                format!("{} {}", row.id, row.name),
                row.collection.clone(),
                format!("{:.2}x", row.speedup),
                format!("{:.2}x", row.transfer_reduction),
            ]
        })
        .collect();
    let mut out = String::from(
        "Fig. 15 — Chason vs Serpens on the Table 2 matrices\n\
         (paper: geomean speedup 6.1x SuiteSparse / 4.1x SNAP, peak 8.4x;\n\
          transfer reduction ~7x average)\n\n",
    );
    out.push_str(&crate::util::format_table(
        &["dataset", "collection", "speedup", "transfers"],
        &rows,
    ));
    out.push_str(&format!(
        "\ngeomean speedup: SuiteSparse {:.2}x, SNAP {:.2}x (peak {:.2}x)\n\
         geomean transfer reduction: SuiteSparse {:.2}x, SNAP {:.2}x\n",
        r.geomean_speedup_suitesparse,
        r.geomean_speedup_snap,
        r.peak_speedup,
        r.geomean_transfer_suitesparse,
        r.geomean_transfer_snap,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chason_wins_on_the_catalog_prefix() {
        let r = run(3);
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert!(row.speedup > 1.0, "{}: speedup {}", row.name, row.speedup);
            assert!(row.transfer_reduction >= 1.0);
        }
    }

    #[test]
    fn summarize_splits_by_collection() {
        let rows = vec![
            Fig15Row {
                id: "A".into(),
                name: "a".into(),
                collection: "SuiteSparse".into(),
                speedup: 4.0,
                transfer_reduction: 8.0,
            },
            Fig15Row {
                id: "B".into(),
                name: "b".into(),
                collection: "SNAP".into(),
                speedup: 2.0,
                transfer_reduction: 3.0,
            },
        ];
        let r = summarize(rows);
        assert!((r.geomean_speedup_suitesparse - 4.0).abs() < 1e-12);
        assert!((r.geomean_speedup_snap - 2.0).abs() < 1e-12);
        assert!((r.peak_speedup - 4.0).abs() < 1e-12);
    }
}
