//! Table 2 — the 20 evaluated SuiteSparse and SNAP matrices.
//!
//! Verifies that every synthetic stand-in hits its published NNZ and
//! density targets.

use chason_sparse::datasets::{table2, Collection};
use serde::{Deserialize, Serialize};

/// One verified catalog row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Two-letter dataset ID.
    pub id: String,
    /// Dataset name.
    pub name: String,
    /// Source collection.
    pub collection: String,
    /// Paper-reported non-zeros.
    pub target_nnz: usize,
    /// Generated non-zeros.
    pub generated_nnz: usize,
    /// Paper-reported density in percent.
    pub target_density_pct: f64,
    /// Generated density in percent.
    pub generated_density_pct: f64,
    /// Matrix dimension used.
    pub dimension: usize,
}

/// Result of the Table 2 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Result {
    /// All 20 rows in paper order.
    pub rows: Vec<Table2Row>,
}

/// Generates and measures every catalog matrix.
pub fn run() -> Table2Result {
    let rows = table2()
        .into_iter()
        .map(|spec| {
            let m = spec.generate();
            Table2Row {
                id: spec.id.to_string(),
                name: spec.name.to_string(),
                collection: spec.collection.to_string(),
                target_nnz: spec.nnz,
                generated_nnz: m.nnz(),
                target_density_pct: spec.density_pct,
                generated_density_pct: m.density() * 100.0,
                dimension: spec.dimension(),
            }
        })
        .collect();
    Table2Result { rows }
}

/// Renders the paper-style table with target-vs-generated columns.
pub fn report(r: &Table2Result) -> String {
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                format!("{} {}", row.id, row.name),
                row.collection.clone(),
                row.dimension.to_string(),
                row.target_nnz.to_string(),
                row.generated_nnz.to_string(),
                format!("{:.4}", row.target_density_pct),
                format!("{:.4}", row.generated_density_pct),
            ]
        })
        .collect();
    let mut out =
        String::from("Table 2 — evaluated matrices (synthetic stand-ins vs paper targets)\n\n");
    out.push_str(&crate::util::format_table(
        &[
            "dataset",
            "collection",
            "n",
            "NNZ*",
            "NNZ",
            "dens%*",
            "dens%",
        ],
        &rows,
    ));
    out.push_str("\n(* = paper-reported target)\n");
    out
}

/// Returns the catalog entries of one collection (used by Fig. 15).
pub fn by_collection(collection: Collection) -> Vec<chason_sparse::datasets::DatasetSpec> {
    table2()
        .into_iter()
        .filter(|s| s.collection == collection)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_twenty_rows_generate_near_target() {
        let r = run();
        assert_eq!(r.rows.len(), 20);
        for row in &r.rows {
            let err =
                (row.generated_nnz as f64 - row.target_nnz as f64).abs() / row.target_nnz as f64;
            assert!(err < 0.15, "{}: nnz error {err:.3}", row.name);
        }
    }

    #[test]
    fn collections_split_ten_ten() {
        assert_eq!(by_collection(Collection::SuiteSparse).len(), 10);
        assert_eq!(by_collection(Collection::Snap).len(), 10);
    }

    #[test]
    fn report_includes_every_catalog_name() {
        // Rendering is independent of generation; use target values as
        // stand-ins to keep this test cheap.
        let rows = table2()
            .into_iter()
            .map(|spec| Table2Row {
                id: spec.id.to_string(),
                name: spec.name.to_string(),
                collection: spec.collection.to_string(),
                target_nnz: spec.nnz,
                generated_nnz: spec.nnz,
                target_density_pct: spec.density_pct,
                generated_density_pct: spec.density_pct,
                dimension: spec.dimension(),
            })
            .collect();
        let s = report(&Table2Result { rows });
        assert!(s.contains("mycielskian12"));
        assert!(s.contains("wiki-Vote"));
        assert!(s.contains("Reuters911"));
    }
}
