//! CPU baseline model: Intel Core i9-11980HK running oneAPI MKL SpMV
//! (§5.2 / §6.2.1).
//!
//! The paper finds MKL on this 8-core mobile part to be the *strongest*
//! baseline (Chasoň's geometric-mean speedup over it is below 1): the
//! 24 MB smart cache keeps the evaluation matrices resident, threading ramps
//! well, and there is essentially no launch overhead — at the price of
//! 132 W package power, which is where Chasoň's 14.61× peak
//! energy-efficiency gain comes from. Parameters are fits to the published
//! peak of 23.88 GFLOPS.

use crate::device::DeviceModel;

/// The Intel Core i9-11980HK (8 cores @ 3.3 GHz base, 24 MB L3) running
/// Intel MKL CSR SpMV.
pub fn core_i9_11980hk() -> DeviceModel {
    DeviceModel {
        name: "Intel Core i9-11980HK (MKL)",
        overhead_s: 5e-6,
        mem_bandwidth_gbps: 45.0,
        cache_bytes: 24 * (1 << 20),
        cache_bandwidth_gbps: 110.0,
        half_efficiency_row_nnz: 1.0,
        power_w: 132.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{rtx4090, rtx_a6000};

    #[test]
    fn peak_lands_near_paper_measurement() {
        let p = core_i9_11980hk().predict(30_000, 30_000, 1_000_000);
        assert!(
            (18.0..32.0).contains(&p.throughput_gflops),
            "i9 peak {} should be near 23.88",
            p.throughput_gflops
        );
    }

    #[test]
    fn cpu_beats_gpus_on_small_matrices() {
        // §6.2.1: "Interestingly, the Intel Core i9 outperforms Nvidia GPUs
        // for SpMV" — driven by tiny launch overhead on cache-resident data.
        let shape = (5_000, 5_000, 60_000);
        let cpu = core_i9_11980hk().predict(shape.0, shape.1, shape.2);
        let g1 = rtx4090().predict(shape.0, shape.1, shape.2);
        let g2 = rtx_a6000().predict(shape.0, shape.1, shape.2);
        assert!(cpu.throughput_gflops > g1.throughput_gflops);
        assert!(cpu.throughput_gflops > g2.throughput_gflops);
    }

    #[test]
    fn cpu_power_exceeds_gpu_power_as_measured() {
        // §6.2.1: i9 draws 132 W vs 70/65 W for the GPUs.
        assert!(core_i9_11980hk().power_w > rtx4090().power_w);
        assert!(core_i9_11980hk().power_w > rtx_a6000().power_w);
    }

    #[test]
    fn out_of_cache_matrices_fall_off_the_roofline() {
        let m = core_i9_11980hk();
        let resident = m.predict(30_000, 30_000, 1_000_000);
        let spilled = m.predict(300_000, 300_000, 10_000_000);
        assert!(!spilled.cache_resident);
        assert!(resident.throughput_gflops > spilled.throughput_gflops);
    }
}
