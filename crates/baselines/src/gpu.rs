//! GPU baseline models: Nvidia RTX 4090 and RTX A6000 running cuSparse
//! (§5.2 / §6.2.1).
//!
//! The parameters are curve fits to the paper's published measurements —
//! peak SpMV throughput of 19.83 GFLOPS (RTX 4090) and 44.20 GFLOPS
//! (RTX A6000), average powers of 70 W and 65 W — not datasheet numbers.
//! Two effects dominate, both named by the paper:
//!
//! * a fixed kernel-launch + driver overhead that floors latency for the
//!   small (L2-resident) matrices of the evaluation, and
//! * SM pipeline underutilization on irregular accesses, modelled by the
//!   short-row derating.
//!
//! The paper's counter-intuitive measurement — the server-class A6000
//! beating the 4090 on cuSparse SpMV despite lower raw bandwidth — is
//! attributed to its larger L2 (96 MB vs 72 MB) and better sustained
//! cache throughput on this access pattern; the fits encode that.

use crate::device::DeviceModel;

/// The Nvidia RTX 4090 (24 GB GDDR6X, 1008 GB/s, 72 MB L2, 144 SMs)
/// running cuSparse CSR SpMV.
pub fn rtx4090() -> DeviceModel {
    DeviceModel {
        name: "Nvidia RTX 4090 (cuSparse)",
        overhead_s: 70e-6,
        mem_bandwidth_gbps: 450.0,
        cache_bytes: 72 * (1 << 20),
        cache_bandwidth_gbps: 230.0,
        half_efficiency_row_nnz: 10.0,
        power_w: 70.0,
    }
}

/// The Nvidia RTX A6000 (48 GB GDDR6, 768 GB/s, 96 MB L2, 84 SMs)
/// running cuSparse CSR SpMV.
pub fn rtx_a6000() -> DeviceModel {
    DeviceModel {
        name: "Nvidia RTX A6000 (cuSparse)",
        overhead_s: 35e-6,
        mem_bandwidth_gbps: 350.0,
        cache_bytes: 96 * (1 << 20),
        cache_bandwidth_gbps: 500.0,
        half_efficiency_row_nnz: 5.0,
        power_w: 65.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Peak throughput over a dense-row, cache-resident matrix should land
    /// near the paper's measured peaks (within a factor-ish band — these
    /// are curve fits, not cycle models).
    #[test]
    fn peak_throughputs_land_near_paper_measurements() {
        // A favourable matrix: 1M nnz, ~33 nnz/row, fully L2-resident.
        let (rows, cols, nnz) = (30_000, 30_000, 1_000_000);
        let p4090 = rtx4090().predict(rows, cols, nnz);
        let pa6000 = rtx_a6000().predict(rows, cols, nnz);
        assert!(
            (15.0..30.0).contains(&p4090.throughput_gflops),
            "4090 peak {} should be near 19.83",
            p4090.throughput_gflops
        );
        assert!(
            (35.0..55.0).contains(&pa6000.throughput_gflops),
            "A6000 peak {} should be near 44.20",
            pa6000.throughput_gflops
        );
    }

    #[test]
    fn a6000_beats_4090_as_in_the_paper() {
        let p1 = rtx4090().predict(20_000, 20_000, 500_000);
        let p2 = rtx_a6000().predict(20_000, 20_000, 500_000);
        assert!(p2.throughput_gflops > p1.throughput_gflops);
    }

    #[test]
    fn launch_overhead_floors_small_matrices() {
        let p = rtx4090().predict(1_000, 1_000, 10_000);
        assert!(p.latency_s >= 18e-6);
        // Throughput collapses for tiny problems.
        assert!(p.throughput_gflops < 2.0, "got {}", p.throughput_gflops);
    }

    #[test]
    fn evaluation_matrices_are_l2_resident() {
        // §5.4: matrices are chosen small enough to fit GPU L2.
        let bytes = DeviceModel::working_set_bytes(77_437, 77_437, 905_468);
        assert!(bytes <= rtx4090().cache_bytes);
        assert!(bytes <= rtx_a6000().cache_bytes);
    }
}
