//! The analytic device model shared by the GPU and CPU baselines.

use serde::{Deserialize, Serialize};

/// A roofline-with-overheads SpMV performance model of a commercial device.
///
/// Execution time is modelled as
///
/// ```text
/// t = overhead + bytes / (BW_effective × efficiency(nnz/row))
/// ```
///
/// where `bytes` is the CSR working set (8 B per non-zero for value +
/// column index, 4 B per row pointer, plus the dense vectors), the
/// effective bandwidth depends on whether the working set is resident in
/// the device's last-level cache, and `efficiency` derates short-row
/// matrices — the "underutilized ALU pipeline" effect §6.2.1 blames for
/// the GPUs' SpMV losses. The fixed `overhead` term (kernel launch +
/// driver) is what lets a small-matrix streaming FPGA beat a 1 TB/s GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Device name as quoted in the paper.
    pub name: &'static str,
    /// Fixed per-SpMV overhead in seconds (kernel launch, driver).
    pub overhead_s: f64,
    /// Effective bandwidth when the working set misses the LLC, in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Last-level-cache capacity in bytes.
    pub cache_bytes: u64,
    /// Effective bandwidth when the working set is LLC-resident, in GB/s.
    pub cache_bandwidth_gbps: f64,
    /// Short-row derating: efficiency = `nnz_per_row / (nnz_per_row +
    /// half_efficiency_row_nnz)`. Larger values punish sparse rows harder.
    pub half_efficiency_row_nnz: f64,
    /// Average power draw while running SpMV, in watts (§6.2.1).
    pub power_w: f64,
}

/// The model's prediction for one SpMV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DevicePrediction {
    /// Predicted kernel latency in seconds.
    pub latency_s: f64,
    /// Throughput per Eq. 5, in GFLOPS.
    pub throughput_gflops: f64,
    /// Energy efficiency per Eq. 6, in GFLOPS/W.
    pub energy_efficiency: f64,
    /// Whether the CSR working set was LLC-resident.
    pub cache_resident: bool,
}

impl DeviceModel {
    /// CSR working-set bytes for an SpMV of the given shape.
    pub fn working_set_bytes(rows: usize, cols: usize, nnz: usize) -> u64 {
        // values (4 B) + column indices (4 B) per non-zero, row pointers
        // (4 B), x and y vectors.
        (8 * nnz + 4 * (rows + 1) + 4 * cols + 4 * rows) as u64
    }

    /// Predicts latency/throughput/energy for one SpMV.
    pub fn predict(&self, rows: usize, cols: usize, nnz: usize) -> DevicePrediction {
        let bytes = Self::working_set_bytes(rows, cols, nnz);
        let cache_resident = bytes <= self.cache_bytes;
        let bw = if cache_resident {
            self.cache_bandwidth_gbps
        } else {
            self.mem_bandwidth_gbps
        };
        let nnz_per_row = nnz as f64 / rows.max(1) as f64;
        let efficiency = nnz_per_row / (nnz_per_row + self.half_efficiency_row_nnz);
        let efficiency = efficiency.max(1e-3);
        let latency_s = self.overhead_s + bytes as f64 / (bw * 1e9 * efficiency);
        let gflops = if latency_s > 0.0 {
            2.0 * (nnz + cols) as f64 / (latency_s * 1e9)
        } else {
            0.0
        };
        DevicePrediction {
            latency_s,
            throughput_gflops: gflops,
            energy_efficiency: if self.power_w > 0.0 {
                gflops / self.power_w
            } else {
                0.0
            },
            cache_resident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DeviceModel {
        DeviceModel {
            name: "test",
            overhead_s: 10e-6,
            mem_bandwidth_gbps: 100.0,
            cache_bytes: 1 << 20,
            cache_bandwidth_gbps: 400.0,
            half_efficiency_row_nnz: 4.0,
            power_w: 50.0,
        }
    }

    #[test]
    fn working_set_accounts_for_all_arrays() {
        // 10 nz, 4 rows, 5 cols: 80 + 20 + 20 + 16 = 136.
        assert_eq!(DeviceModel::working_set_bytes(4, 5, 10), 136);
    }

    #[test]
    fn overhead_dominates_small_problems() {
        let m = model();
        let p = m.predict(64, 64, 256);
        // Transfer time is tiny; latency ~ overhead.
        assert!(
            (p.latency_s - 10e-6).abs() / 10e-6 < 0.05,
            "latency {}",
            p.latency_s
        );
    }

    #[test]
    fn cache_residency_switches_bandwidth() {
        let m = model();
        let small = m.predict(1000, 1000, 10_000); // ~88 KB, resident
        let big = m.predict(100_000, 100_000, 2_000_000); // ~17 MB, not resident
        assert!(small.cache_resident);
        assert!(!big.cache_resident);
    }

    #[test]
    fn short_rows_are_derated() {
        let m = model();
        // Same nnz and columns, but spread over 100x more rows.
        let dense_rows = m.predict(1_000, 10_000, 100_000);
        let sparse_rows = m.predict(100_000, 10_000, 100_000);
        assert!(dense_rows.throughput_gflops > sparse_rows.throughput_gflops);
    }

    #[test]
    fn energy_efficiency_uses_device_power() {
        let m = model();
        let p = m.predict(1000, 1000, 50_000);
        assert!((p.energy_efficiency - p.throughput_gflops / 50.0).abs() < 1e-12);
    }
}
