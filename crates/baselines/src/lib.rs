//! Baseline SpMV implementations and device models for the Chasoň
//! evaluation (§5.2).
//!
//! Two kinds of baselines live here:
//!
//! * **Executable** CPU kernels — [`reference`](mod@crate::reference) (serial CSR, the functional
//!   ground truth for every engine test) and [`parallel`] (multithreaded
//!   CSR with static and MKL-style dynamic row scheduling);
//! * **Analytic device models** ([`gpu`], [`cpu`]) reproducing the
//!   *published measurements* of the paper's Nvidia RTX 4090 / RTX A6000
//!   (cuSparse) and Intel Core i9-11980HK (MKL) baselines. We have none of
//!   that hardware, so each model is a roofline-with-overheads curve fit:
//!   kernel-launch latency + cache-aware memory traffic + a short-row
//!   efficiency derating (see `DESIGN.md` §2 for the substitution
//!   rationale). The fit targets are the paper's quoted peaks and geomean
//!   speedups, and the *shape* — GPUs lose on small/irregular matrices
//!   because launch overhead and idle SM pipelines dominate; the
//!   cache-rich CPU is the strongest baseline — follows §6.2.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod gpu;
pub mod parallel;
pub mod reference;

mod device;

pub use device::{DeviceModel, DevicePrediction};
