//! Multithreaded CSR SpMV kernels.
//!
//! Two scheduling policies are provided, mirroring the threading strategies
//! §6.2.1 credits for MKL's strong SpMV showing:
//!
//! * [`spmv_static`] — rows split into one contiguous chunk per thread
//!   (cheap, suffers on skewed matrices where one chunk holds the heavy
//!   rows);
//! * [`spmv_dynamic`] — threads pull fixed-size row chunks from a shared
//!   cursor (MKL-style dynamic scheduling, balancing skewed workloads).
//!
//! Both write disjoint row ranges of `y`, so no accumulation races exist;
//! the shared state in the dynamic kernel is just the chunk cursor.

use chason_sparse::CsrMatrix;
use chason_telemetry::metrics::HistogramShard;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Records one processed chunk into a thread-private shard: the sample is
/// the chunk's non-zero count, read from the CSR row extents *after* the
/// hot loop, so the multiply-accumulate path itself is untouched. Under
/// `telemetry-off` the `enabled()` branch is constant-false and the whole
/// body folds away.
#[inline]
fn record_chunk(shard: &mut HistogramShard, matrix: &CsrMatrix, start: usize, len: usize) {
    if chason_telemetry::enabled() {
        let nnz: usize = (start..start + len).map(|r| matrix.row(r).0.len()).sum();
        shard.record(nnz as u64);
    }
}

/// Publishes a worker's shard into the global registry once per kernel
/// call (`baseline_chunk_nnz` histogram, `baseline_spmv_chunks_total`
/// counter).
fn publish_shard(shard: &HistogramShard) {
    if chason_telemetry::enabled() && shard.count() > 0 {
        let registry = chason_telemetry::global().registry();
        shard.merge_into(&registry.histogram("baseline_chunk_nnz"));
        registry
            .counter("baseline_spmv_chunks_total")
            .add(shard.count());
    }
}

/// Computes `y = A·x` with one contiguous row chunk per thread.
///
/// `threads` is clamped to at least 1 and at most the row count.
///
/// # Panics
///
/// Panics if `x.len() != matrix.cols()`.
pub fn spmv_static(matrix: &CsrMatrix, x: &[f32], threads: usize) -> Vec<f32> {
    assert_eq!(
        x.len(),
        matrix.cols(),
        "dense vector length must equal matrix columns"
    );
    let rows = matrix.rows();
    let threads = threads.clamp(1, rows.max(1));
    let mut y = vec![0.0f32; rows];
    if rows == 0 {
        return y;
    }
    let chunk = rows.div_ceil(threads);
    let joined = crossbeam::scope(|scope| {
        for (t, y_chunk) in y.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            scope.spawn(move |_| {
                let len = y_chunk.len();
                for (i, out) in y_chunk.iter_mut().enumerate() {
                    let r = start + i;
                    let (cols, vals) = matrix.row(r);
                    let mut acc = 0.0f32;
                    for (&c, &v) in cols.iter().zip(vals) {
                        acc += v * x[c];
                    }
                    *out = acc;
                }
                let mut shard = HistogramShard::new();
                record_chunk(&mut shard, matrix, start, len);
                publish_shard(&shard);
            });
        }
    });
    #[allow(clippy::expect_used)] // a worker panic is an index bug; propagate it
    joined.expect("spmv worker threads do not panic");
    y
}

/// Computes `y = A·x` with dynamic chunk scheduling: threads repeatedly
/// claim the next `chunk_rows` rows from a shared cursor until the matrix
/// is exhausted.
///
/// # Panics
///
/// Panics if `x.len() != matrix.cols()` or `chunk_rows == 0`.
pub fn spmv_dynamic(matrix: &CsrMatrix, x: &[f32], threads: usize, chunk_rows: usize) -> Vec<f32> {
    assert_eq!(
        x.len(),
        matrix.cols(),
        "dense vector length must equal matrix columns"
    );
    assert!(chunk_rows > 0, "chunk size must be positive");
    let rows = matrix.rows();
    let threads = threads.clamp(1, rows.max(1));
    let mut y = vec![0.0f32; rows];
    if rows == 0 {
        return y;
    }
    // Pre-split `y` into the same fixed-size chunks the cursor hands out,
    // so each claimed chunk index maps to exactly one disjoint output slice
    // and workers write results in place — no funnel lock on a shared
    // result vector and no post-scope copy. Each chunk's Mutex is locked
    // exactly once (claims are unique), so it is never contended; it exists
    // only to make the shared `&Vec` write access safe.
    let chunks: Vec<Mutex<&mut [f32]>> = y.chunks_mut(chunk_rows).map(Mutex::new).collect();
    let n_chunks = chunks.len();
    let cursor = AtomicUsize::new(0);
    let joined = crossbeam::scope(|scope| {
        for _ in 0..threads {
            let chunks = &chunks;
            let cursor = &cursor;
            scope.spawn(move |_| {
                let mut shard = HistogramShard::new();
                loop {
                    // relaxed: chunk claims only need atomicity; every
                    // result is read after the scope joins the workers
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n_chunks {
                        break;
                    }
                    let start = idx * chunk_rows;
                    #[allow(clippy::expect_used)] // uncontended by construction (unique claims)
                    let mut out_chunk = chunks[idx].lock().expect("chunk lock is never poisoned");
                    for (i, out) in out_chunk.iter_mut().enumerate() {
                        let (cols, vals) = matrix.row(start + i);
                        let mut acc = 0.0f32;
                        for (&c, &v) in cols.iter().zip(vals) {
                            acc += v * x[c];
                        }
                        *out = acc;
                    }
                    record_chunk(&mut shard, matrix, start, out_chunk.len());
                }
                publish_shard(&shard);
            });
        }
    });
    #[allow(clippy::expect_used)] // a worker panic is an index bug; propagate it
    joined.expect("spmv worker threads do not panic");
    drop(chunks);
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use chason_sparse::generators::{power_law, uniform_random};
    use chason_sparse::CooMatrix;

    fn csr(rows: usize, cols: usize, nnz: usize, seed: u64) -> CsrMatrix {
        CsrMatrix::from(&uniform_random(rows, cols, nnz, seed))
    }

    #[test]
    fn static_matches_serial() {
        let m = csr(200, 150, 1500, 3);
        let x: Vec<f32> = (0..150).map(|i| (i as f32).sqrt()).collect();
        for threads in [1, 2, 4, 7] {
            assert_eq!(spmv_static(&m, &x, threads), m.spmv(&x));
        }
    }

    #[test]
    fn dynamic_matches_serial() {
        let m = CsrMatrix::from(&power_law(300, 300, 3000, 1.8, 5));
        let x: Vec<f32> = (0..300).map(|i| 1.0 / (1.0 + i as f32)).collect();
        for (threads, chunk) in [(1, 16), (4, 8), (8, 1), (3, 100)] {
            assert_eq!(spmv_dynamic(&m, &x, threads, chunk), m.spmv(&x));
        }
    }

    #[test]
    fn skewed_power_law_agrees_across_all_kernels() {
        // Heavy-tailed row weights are the case dynamic scheduling exists
        // for; all three kernels must agree bit-for-bit there.
        let m = CsrMatrix::from(&power_law(512, 512, 8000, 2.2, 11));
        let x: Vec<f32> = (0..512).map(|i| ((i * 7 + 3) % 13) as f32 * 0.25).collect();
        let serial = m.spmv(&x);
        for threads in [2, 4, 8] {
            assert_eq!(spmv_static(&m, &x, threads), serial);
            for chunk in [1, 32, 600] {
                assert_eq!(spmv_dynamic(&m, &x, threads, chunk), serial);
            }
        }
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn chunk_telemetry_lands_in_the_global_registry() {
        let registry = chason_telemetry::global().registry();
        let histogram = registry.histogram("baseline_chunk_nnz");
        let counter = registry.counter("baseline_spmv_chunks_total");
        let (count_before, sum_before, chunks_before) =
            (histogram.count(), histogram.sum(), counter.get());
        let m = csr(200, 150, 1500, 3);
        let x = vec![1.0f32; 150];
        let _ = spmv_static(&m, &x, 4); // 4 chunks of 50 rows
        let _ = spmv_dynamic(&m, &x, 4, 16); // 13 chunks

        // Other tests share the global registry, so deltas are lower
        // bounds, not equalities.
        assert!(histogram.count() >= count_before + 17);
        assert!(counter.get() >= chunks_before + 17);
        // Every non-zero of both runs was attributed to some chunk.
        assert!(histogram.sum() >= sum_before + 2 * 1500);
    }

    #[test]
    fn zero_row_matrix_is_fine() {
        let m = CsrMatrix::from(&CooMatrix::new(0, 5));
        assert!(spmv_static(&m, &[0.0; 5], 4).is_empty());
        assert!(spmv_dynamic(&m, &[0.0; 5], 4, 8).is_empty());
    }

    #[test]
    fn more_threads_than_rows_is_clamped() {
        let m = csr(3, 3, 5, 1);
        let x = [1.0, 2.0, 3.0];
        assert_eq!(spmv_static(&m, &x, 64), m.spmv(&x));
        assert_eq!(spmv_dynamic(&m, &x, 64, 2), m.spmv(&x));
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn dynamic_rejects_zero_chunk() {
        let m = csr(4, 4, 4, 1);
        let _ = spmv_dynamic(&m, &[0.0; 4], 2, 0);
    }
}
