//! Serial CSR SpMV — the functional ground truth.

use chason_sparse::{CooMatrix, CsrMatrix};

/// Computes `y = A·x` with a serial CSR kernel.
///
/// This is the oracle every accelerator engine and parallel kernel is
/// checked against.
///
/// # Panics
///
/// Panics if `x.len() != matrix.cols()`.
///
/// # Example
///
/// ```
/// use chason_baselines::reference::spmv;
/// use chason_sparse::CooMatrix;
///
/// # fn main() -> Result<(), chason_sparse::SparseError> {
/// let m = CooMatrix::from_triplets(2, 2, vec![(0, 0, 2.0), (1, 1, 3.0)])?;
/// assert_eq!(spmv(&m, &[1.0, 10.0]), vec![2.0, 30.0]);
/// # Ok(())
/// # }
/// ```
pub fn spmv(matrix: &CooMatrix, x: &[f32]) -> Vec<f32> {
    CsrMatrix::from(matrix).spmv(x)
}

/// Computes `y = A·x` directly from a CSR matrix.
///
/// # Panics
///
/// Panics if `x.len() != matrix.cols()`.
pub fn spmv_csr(matrix: &CsrMatrix, x: &[f32]) -> Vec<f32> {
    matrix.spmv(x)
}

/// Maximum relative row-wise difference between two result vectors, used to
/// compare FP32 results under reassociation.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn max_relative_error(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "result vectors must be the same length");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let scale = x.abs().max(y.abs()).max(1.0) as f64;
            (x as f64 - y as f64).abs() / scale
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chason_sparse::generators::uniform_random;

    #[test]
    fn matches_coo_spmv() {
        let m = uniform_random(100, 80, 500, 9);
        let x: Vec<f32> = (0..80).map(|i| i as f32 * 0.1).collect();
        assert_eq!(spmv(&m, &x), m.spmv(&x));
    }

    #[test]
    fn csr_entry_point_agrees() {
        let m = uniform_random(50, 50, 200, 1);
        let csr = CsrMatrix::from(&m);
        let x = vec![1.5f32; 50];
        assert_eq!(spmv(&m, &x), spmv_csr(&csr, &x));
    }

    #[test]
    fn relative_error_of_identical_vectors_is_zero() {
        assert_eq!(max_relative_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn relative_error_scales_by_magnitude() {
        // 1001 vs 1000: relative error 1e-3.
        let e = max_relative_error(&[1001.0], &[1000.0]);
        assert!((e - 1e-3).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn relative_error_rejects_length_mismatch() {
        let _ = max_relative_error(&[1.0], &[1.0, 2.0]);
    }
}
