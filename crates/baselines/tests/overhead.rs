//! Zero-cost guard: with the `telemetry-off` feature, the instrumented
//! SpMV kernels must run within 2% of a hand-stripped copy with no
//! instrumentation at all.
//!
//! The guard only means something in an optimized build with the
//! instrumentation compiled out, so it is gated to
//! `--release --features telemetry-off` (CI's profile-smoke job runs it
//! that way); in any other configuration the file compiles to nothing.

#![cfg(all(feature = "telemetry-off", not(debug_assertions)))]

use chason_baselines::parallel::spmv_dynamic;
use chason_sparse::generators::power_law;
use chason_sparse::CsrMatrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// `spmv_dynamic` exactly as it was before instrumentation: the reference
/// the guard compares against.
fn spmv_dynamic_uninstrumented(
    matrix: &CsrMatrix,
    x: &[f32],
    threads: usize,
    chunk_rows: usize,
) -> Vec<f32> {
    let rows = matrix.rows();
    let threads = threads.clamp(1, rows.max(1));
    let mut y = vec![0.0f32; rows];
    if rows == 0 {
        return y;
    }
    let chunks: Vec<Mutex<&mut [f32]>> = y.chunks_mut(chunk_rows).map(Mutex::new).collect();
    let n_chunks = chunks.len();
    let cursor = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            let chunks = &chunks;
            let cursor = &cursor;
            scope.spawn(move |_| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n_chunks {
                    break;
                }
                let start = idx * chunk_rows;
                let mut out_chunk = chunks[idx].lock().expect("chunk lock is never poisoned");
                for (i, out) in out_chunk.iter_mut().enumerate() {
                    let (cols, vals) = matrix.row(start + i);
                    let mut acc = 0.0f32;
                    for (&c, &v) in cols.iter().zip(vals) {
                        acc += v * x[c];
                    }
                    *out = acc;
                }
            });
        }
    })
    .expect("spmv worker threads do not panic");
    drop(chunks);
    y
}

/// Best-of-N wall time of one kernel invocation. The minimum over many
/// trials discards scheduler noise, which is what makes a ratio assertion
/// usable in CI.
fn best_of<F: FnMut() -> Vec<f32>>(trials: usize, mut run: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let started = Instant::now();
        let y = run();
        best = best.min(started.elapsed().as_secs_f64());
        assert!(!y.is_empty());
    }
    best
}

#[test]
fn disabled_instrumentation_costs_at_most_two_percent() {
    let matrix = CsrMatrix::from(&power_law(20_000, 20_000, 400_000, 1.8, 42));
    let x: Vec<f32> = (0..20_000).map(|i| 1.0 + (i % 7) as f32 * 0.125).collect();
    let (threads, chunk_rows) = (4, 256);

    // Warm both paths (page-in, branch predictors) before timing.
    let a = spmv_dynamic(&matrix, &x, threads, chunk_rows);
    let b = spmv_dynamic_uninstrumented(&matrix, &x, threads, chunk_rows);
    assert_eq!(a, b, "telemetry must never change results");

    let trials = 15;
    let instrumented = best_of(trials, || spmv_dynamic(&matrix, &x, threads, chunk_rows));
    let reference = best_of(trials, || {
        spmv_dynamic_uninstrumented(&matrix, &x, threads, chunk_rows)
    });
    let ratio = instrumented / reference;
    assert!(
        ratio <= 1.02,
        "telemetry-off overhead {:.2}% exceeds the 2% budget \
         (instrumented {instrumented:.6}s vs reference {reference:.6}s)",
        (ratio - 1.0) * 100.0
    );
}
