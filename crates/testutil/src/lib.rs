//! `chason-testutil`: shared fixtures for the workspace's test suites.
//!
//! Every integration suite needs the same raw material — seeded sparse
//! matrices spanning the paper's sparsity archetypes, proptest strategies
//! that respect the §3.2 wire format's reserved stall word, grids of
//! scheduler configurations, and small linear systems for the solver tests.
//! Before this crate each suite carried its own copy; they drifted in small
//! ways (value scales, nnz bounds) without meaning to. This crate is the
//! single source of those helpers, pulled in as a dev-dependency.
//!
//! Everything here is deterministic: matrices are derived from explicit
//! seeds and proptest strategies draw from the shim's per-case seeded RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use chason_core::schedule::{Crhcs, PeAware, Scheduler, SchedulerConfig};
use chason_sparse::generators::{arrow_with_nnz, banded_with_nnz, power_law, uniform_random};
use chason_sparse::CooMatrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The deterministic RNG used by helpers that need raw randomness — the
/// same generator family the `chason-sparse` generators use internally.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Strategy: a small random sparse matrix with strictly positive values,
/// possibly empty.
///
/// Positive (rather than merely non-zero) values keep duplicates from
/// summing to exactly `+0.0` under `from_triplets_summing`: the §3.2 wire
/// format reserves the all-zero word for stalls, so a `+0.0` entry is
/// unschedulable and would be (correctly) rejected by the static checker
/// the engines run in debug builds.
pub fn sparse_matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    sparse_matrix_with_min(max_dim, 0, max_nnz)
}

/// [`sparse_matrix`] guaranteed non-empty (at least one explicit entry
/// before duplicate summing).
pub fn sparse_matrix_nonempty(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    sparse_matrix_with_min(max_dim, 1, max_nnz)
}

fn sparse_matrix_with_min(
    max_dim: usize,
    min_nnz: usize,
    max_nnz: usize,
) -> impl Strategy<Value = CooMatrix> {
    (2usize..=max_dim, 2usize..=max_dim).prop_flat_map(move |(rows, cols)| {
        let coord = (0..rows, 0..cols, 1i32..=100i32);
        proptest::collection::vec(coord, min_nnz..=max_nnz).prop_map(move |entries| {
            let triplets: Vec<(usize, usize, f32)> = entries
                .into_iter()
                .map(|(r, c, v)| (r, c, v as f32 * 0.25))
                .collect();
            #[allow(clippy::expect_used)]
            CooMatrix::from_triplets_summing(rows, cols, triplets)
                .expect("coordinates are in range")
        })
    })
}

/// Strategy: a valid small (toy) scheduler configuration.
pub fn toy_config() -> impl Strategy<Value = SchedulerConfig> {
    (1usize..=4, 1usize..=8, 1usize..=12).prop_map(|(ch, pes, d)| SchedulerConfig::toy(ch, pes, d))
}

/// The generator corpus: one matrix per sparsity archetype the paper
/// evaluates (power-law skew, banded locality, uniform, arrow boundary).
pub fn archetype_corpus() -> Vec<(&'static str, CooMatrix)> {
    vec![
        ("power-law", power_law(120, 120, 900, 1.8, 11)),
        ("banded", banded_with_nnz(150, 6, 800, 12)),
        ("uniform", uniform_random(100, 100, 600, 13)),
        ("arrow", arrow_with_nnz(150, 4, 3, 900, 14)),
    ]
}

/// The scheduler-configuration grid the mutation and conformance suites
/// sweep: two toy geometries plus the paper's deployed 16 × 8 point.
pub fn config_grid() -> Vec<SchedulerConfig> {
    vec![
        SchedulerConfig::toy(2, 2, 4),
        SchedulerConfig::toy(4, 4, 6),
        SchedulerConfig::paper(),
    ]
}

/// Both production schedulers (the PE-aware Serpens baseline and CrHCS).
pub fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![Box::new(PeAware::new()), Box::new(Crhcs::new())]
}

/// A deterministic dense vector of length `n` with entries in `[-4, 4]` —
/// the right-hand-side shape the differential tests feed every engine.
pub fn dense_x(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i as f32) * 0.37).sin() * 4.0).collect()
}

/// A symmetric positive-definite system `(A, b)` for solver tests:
/// a banded symmetric matrix made diagonally dominant, with a small
/// structured right-hand side.
#[allow(clippy::expect_used)]
pub fn spd_system(n: usize, seed: u64) -> (CooMatrix, Vec<f32>) {
    let base = banded_with_nnz(n, 3, n * 4, seed);
    let mut sym = std::collections::HashMap::new();
    for &(r, c, v) in base.iter() {
        if r != c {
            let key = (r.min(c), r.max(c));
            sym.entry(key).or_insert(v.abs() * 0.1);
        }
    }
    let mut row_sum = vec![0.0f32; n];
    let mut t = Vec::new();
    for (&(r, c), &v) in &sym {
        t.push((r, c, v));
        t.push((c, r, v));
        row_sum[r] += v;
        row_sum[c] += v;
    }
    for (i, &sum) in row_sum.iter().enumerate() {
        t.push((i, i, sum + 1.0));
    }
    #[allow(clippy::expect_used)] // coordinates are in range by construction
    let a = CooMatrix::from_triplets(n, n, t).expect("coordinates are in range");
    let b: Vec<f32> = (0..n).map(|i| ((i % 7) as f32 - 3.0) * 0.5).collect();
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_and_grids_are_deterministic() {
        let a = archetype_corpus();
        let b = archetype_corpus();
        for ((na, ma), (nb, mb)) in a.iter().zip(b.iter()) {
            assert_eq!(na, nb);
            assert_eq!(ma, mb);
        }
        assert_eq!(config_grid().len(), 3);
        assert_eq!(schedulers().len(), 2);
        assert_eq!(dense_x(16), dense_x(16));
    }

    #[test]
    fn spd_system_is_symmetric_and_diagonally_dominant() {
        let (a, b) = spd_system(64, 9);
        assert_eq!(a.rows(), 64);
        assert_eq!(b.len(), 64);
        let mut dense = vec![vec![0.0f32; 64]; 64];
        for &(r, c, v) in a.iter() {
            dense[r][c] += v;
        }
        for (r, row) in dense.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                assert_eq!(*v, dense[c][r]);
            }
            let off: f32 = (0..64).filter(|&c| c != r).map(|c| row[c].abs()).sum();
            assert!(row[r] > off, "row {r} not dominant");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn strategies_respect_bounds(m in sparse_matrix(32, 64), n in sparse_matrix_nonempty(16, 20)) {
            prop_assert!(m.rows() <= 32 && m.cols() <= 32);
            prop_assert!(m.nnz() <= 64);
            prop_assert!(n.nnz() >= 1);
            for &(_, _, v) in m.iter() {
                prop_assert!(v > 0.0);
            }
        }
    }
}
